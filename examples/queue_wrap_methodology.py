#!/usr/bin/env python
"""Circuit 2: the staged property-strengthening methodology on the wrap bit.

The paper (Section 5): the circular queue's full/empty suites reached 100%
immediately, but the wrap bit sat at 60%.  "Inspecting the uncovered
states, three additional properties were written which still did not
achieve 100% coverage.  We traced the input/state sequences leading to
these uncovered states and found that the value of wrap bit was not
checked if the stall signal was asserted ... A property was added ... and
100% coverage was achieved."

This script walks the same loop: estimate -> inspect holes -> strengthen ->
re-estimate, through all three stages.

Run:  python examples/queue_wrap_methodology.py
"""

from repro import (
    CoverageEstimator,
    ModelChecker,
    build_circular_queue,
    circular_queue_empty_properties,
    circular_queue_full_properties,
    circular_queue_wrap_properties,
    circular_queue_wrap_stall_property,
    format_uncovered_traces,
)


def main() -> None:
    queue = build_circular_queue()
    checker = ModelChecker(queue)
    estimator = CoverageEstimator(queue, checker=checker)

    # Full and empty are done on the first attempt (Table 2).
    for name, props in (
        ("full", circular_queue_full_properties()),
        ("empty", circular_queue_empty_properties()),
    ):
        assert all(checker.holds(p) for p in props)
        report = estimator.estimate(props, observed=name)
        print(f"{name:5s}: {len(props)} properties -> "
              f"{report.percentage:6.2f}% coverage")

    # Stage 1: the initial wrap suite verifies but leaves a wide hole.
    initial = circular_queue_wrap_properties(stage="initial")
    assert all(checker.holds(p) for p in initial)
    report = estimator.estimate(initial, observed="wrap")
    print(f"wrap : {len(initial)} properties -> "
          f"{report.percentage:6.2f}% coverage")
    print(report.format_uncovered(limit=4))
    print()

    # Stage 2: three more properties after inspecting the holes.
    extended = circular_queue_wrap_properties(stage="extended")
    assert all(checker.holds(p) for p in extended)
    report = estimator.estimate(extended, observed="wrap")
    print(f"wrap : +3 properties -> {report.percentage:6.2f}% "
          "(still not 100%)")

    # The paper's decisive step: trace into the remaining holes.
    print(format_uncovered_traces(report, count=1))
    print("the remaining holes are wrapped full-queue states, only "
          "preserved by stalled cycles\nthat no property mentions.\n")

    # Stage 3: the stall property closes the hole.
    final = extended + [circular_queue_wrap_stall_property()]
    assert all(checker.holds(p) for p in final)
    report = estimator.estimate(final, observed="wrap")
    print(f"wrap : + stall property -> {report.percentage:6.2f}% coverage")
    assert report.is_fully_covered()


if __name__ == "__main__":
    main()
