#!/usr/bin/env python
"""Circuit 1 end to end: how a coverage hole caught an escaped bug.

The paper (Section 5): "The set of verified properties should provide a
complete analysis of all possible cases, but we uncovered a missing case:
when the buffer is empty and low priority entries are incoming, the entries
should be stored.  A simple additional property was written to cover this
case.  Verification of this property failed and actually revealed a bug in
the design of the buffer!"

This script replays that story against the priority buffer with the planted
bug (low-priority arrivals silently dropped when the buffer is empty):

1. the initial suite passes on the buggy design — the bug escapes;
2. coverage estimation exposes the empty-buffer hole;
3. the hole-closing property FAILS, with a counterexample trace;
4. on the fixed design the augmented suite passes at 100% coverage.

Run:  python examples/escaped_bug_hunt.py
"""

from repro import (
    CoverageEstimator,
    ModelChecker,
    build_priority_buffer,
    format_trace,
    priority_buffer_hi_properties,
    priority_buffer_lo_augmented_properties,
    priority_buffer_lo_hole_property,
    priority_buffer_lo_properties,
)


def main() -> None:
    # --- Step 1: the buggy design sails through the initial verification.
    buggy = build_priority_buffer(buggy=True)
    checker = ModelChecker(buggy)
    print(f"verifying {buggy.name!r} "
          f"({len(buggy.state_vars)} state variables) ...")
    for prop in priority_buffer_hi_properties() + priority_buffer_lo_properties():
        assert checker.holds(prop)
    print("initial hi + lo property suites: ALL PASS — the bug escapes.\n")

    # --- Step 2: coverage estimation flags the hole.
    estimator = CoverageEstimator(buggy, checker=checker)
    hi_report = estimator.estimate(priority_buffer_hi_properties(), observed="hi")
    lo_report = estimator.estimate(priority_buffer_lo_properties(), observed="lo")
    print(f"hi-pri coverage: {hi_report.percentage:6.2f}%")
    print(f"lo-pri coverage: {lo_report.percentage:6.2f}%")
    print(lo_report.format_uncovered(limit=4))
    print("every hole has lo = 0: nothing checks the empty low-priority "
          "buffer.\n")

    # --- Step 3: write the missing property; it fails and exposes the bug.
    hole_prop = priority_buffer_lo_hole_property()
    print(f"new property: {hole_prop}")
    result = checker.check(hole_prop)
    print(f"verification: {'PASS' if result.holds else 'FAIL'}")
    assert not result.holds
    print(format_trace(buggy, result.counterexample,
                       title="counterexample (the dropped entry)"))
    print()

    # --- Step 4: fix the design; the augmented suite passes at 100%.
    fixed = build_priority_buffer(buggy=False)
    fixed_checker = ModelChecker(fixed)
    augmented = priority_buffer_lo_augmented_properties()
    assert all(fixed_checker.holds(p) for p in augmented)
    report = CoverageEstimator(fixed, checker=fixed_checker).estimate(
        augmented, observed="lo"
    )
    print(f"fixed design, augmented suite: all pass, "
          f"coverage = {report.percentage:.2f}%")
    assert report.is_fully_covered()


if __name__ == "__main__":
    main()
