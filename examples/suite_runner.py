"""Suite-runner walkthrough: textual models + parallel coverage jobs.

Demonstrates the PR's two subsystems working together:

1. ``repro.lang`` — a model written as ``.rml`` text (no Python builders),
   parsed, elaborated, round-tripped, and estimated;
2. ``repro.suite`` — a small job list (builtin targets and the textual
   model side by side) executed through the runner, with the JSON report
   assembled in-process.

Run directly (``python examples/suite_runner.py``) or via the test suite.
"""

from repro import (
    CoverageEstimator,
    CoverageJob,
    ModelChecker,
    elaborate,
    module_to_str,
    parse_module,
    run_jobs,
    suite_report,
)

# A two-bit saturating event counter, described textually: it counts events
# up to 3 and holds there until cleared.
SOURCE = """
MODULE saturating_counter

VAR
  event : boolean;
  clearit : boolean;
  n : word[2];

ASSIGN
  init(n) := 0;
  next(n) := case
    clearit : 0;
    event & n = 3 : 3;     -- saturate
    event : n + 1;
    TRUE : n;
  esac;

SPEC AG (clearit -> AX n = 0);
SPEC AG (!clearit & event & n = 0 -> AX n = 1);
SPEC AG (!clearit & event & n = 1 -> AX n = 2);
SPEC AG (!clearit & event & n = 2 -> AX n = 3);
SPEC AG (!clearit & event & n = 3 -> AX n = 3);
SPEC AG (!clearit & !event & n = 0 -> AX n = 0);
SPEC AG (!clearit & !event & n = 1 -> AX n = 1);
SPEC AG (!clearit & !event & n = 2 -> AX n = 2);
SPEC AG (!clearit & !event & n = 3 -> AX n = 3);

OBSERVED n;
"""


def main() -> None:
    # -- 1. the textual model, end to end ------------------------------
    module = parse_module(SOURCE, filename="saturating_counter.rml")
    assert parse_module(module_to_str(module)) == module, "round-trip broke"
    model = elaborate(module)
    checker = ModelChecker(model.fsm)
    assert all(checker.holds(p) for p in model.specs)
    report = CoverageEstimator(model.fsm, checker=checker).estimate(
        model.specs, observed=model.observed
    )
    print(f"textual model {module.name!r}: {report.percentage:.2f}% coverage "
          f"({report.covered_count}/{report.space_count} states)")

    # -- 2. a mixed suite through the runner ---------------------------
    jobs = [
        CoverageJob(name="counter@full", kind="builtin", target="counter",
                    stage="full"),
        CoverageJob(name="counter@partial", kind="builtin", target="counter",
                    stage="partial"),
        CoverageJob(name="rml:saturating", kind="rml",
                    path="saturating_counter.rml", source=SOURCE),
    ]
    results = run_jobs(jobs, max_workers=1)
    for result in results:
        print(result.format_line())
    totals = suite_report(results)["totals"]
    print(f"totals: {totals['ok']}/{totals['jobs']} ok, "
          f"mean {totals['mean_percentage']:.2f}%")
    assert totals["ok"] == totals["jobs"] == 3


if __name__ == "__main__":
    main()
