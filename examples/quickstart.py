#!/usr/bin/env python
"""Quickstart: coverage estimation on the paper's modulo-5 counter.

The DAC'99 paper opens with this example: a modulo-5 counter with ``stall``
and ``reset`` inputs, verified with properties of the form

    AG (!stall & !reset & count = C -> AX count = C+1)

Model checking proves them exhaustively — yet the properties only *check*
the counter value in the successors of their antecedent states.  This
script measures exactly how much of the state space the increment suite
covers, inspects the hole, and closes it.

Run:  python examples/quickstart.py
"""

from repro import (
    CoverageEstimator,
    ModelChecker,
    build_counter,
    counter_partial_properties,
    counter_properties,
    format_uncovered_traces,
)


def main() -> None:
    # 1. Build the design.  Inputs become unconstrained state variables,
    #    exactly as SMV folds them into the Kripke structure.
    design = build_counter()
    print(f"design: {design.name}, state variables: {design.state_vars}")
    print(f"reachable states: {design.count_states(design.reachable())}")

    # 2. Verify the increment-only suite.  Every property passes.
    checker = ModelChecker(design)
    partial = counter_partial_properties()
    for prop in partial:
        result = checker.check(prop)
        status = "PASS" if result.holds else "FAIL"
        print(f"  [{status}] {prop}")

    # 3. Estimate coverage for the observed signal `count`.
    estimator = CoverageEstimator(design, checker=checker)
    report = estimator.estimate(partial, observed="count")
    print()
    print(report.summary())

    # 4. The paper's methodology: trace into a hole to understand it.
    print()
    print(format_uncovered_traces(report, count=1))
    print()
    print(
        "The holes are the states no property checks: nothing verifies the\n"
        "counter under stall, reset, or the wraparound back to zero."
    )

    # 5. Close the holes with the full suite.
    full_report = estimator.estimate(counter_properties(), observed="count")
    print()
    print(f"after adding stall/reset/wraparound properties: "
          f"{full_report.percentage:.2f}% coverage")
    assert full_report.is_fully_covered()


if __name__ == "__main__":
    main()
