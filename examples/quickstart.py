#!/usr/bin/env python
"""Quickstart: coverage estimation on the paper's modulo-5 counter.

The DAC'99 paper opens with this example: a modulo-5 counter with ``stall``
and ``reset`` inputs, verified with properties of the form

    AG (!stall & !reset & count = C -> AX count = C+1)

Model checking proves them exhaustively — yet the properties only *check*
the counter value in the successors of their antecedent states.  This
script measures exactly how much of the state space the increment suite
covers, inspects the hole, and closes it — all through the ``Analysis``
facade, the library's one front door.

Run:  python examples/quickstart.py
"""

from repro import Analysis


def main() -> None:
    # 1. One front door: a registered paper circuit at a property stage.
    #    "partial" is the increment-only suite from the paper's opening.
    analysis = Analysis.builtin("counter", stage="partial")
    design = analysis.fsm
    print(f"design: {design.name}, state variables: {design.state_vars}")
    print(f"reachable states: {design.count_states(design.reachable())}")

    # 2. Verify the increment-only suite.  Every property passes.
    for result in analysis.verify():
        status = "PASS" if result.holds else "FAIL"
        print(f"  [{status}] {result.formula}")

    # 3. Estimate coverage for the observed signal `count`.  The estimate
    #    reuses the checker's fixpoints from step 2 — the facade owns one
    #    shared checker/estimator pair.
    print()
    print(analysis.coverage().summary())

    # 4. The paper's methodology: trace into a hole to understand it.
    print()
    print(analysis.uncovered_traces(1))
    print()
    print(
        "The holes are the states no property checks: nothing verifies the\n"
        "counter under stall, reset, or the wraparound back to zero."
    )

    # 5. Close the holes with the full suite (the default stage).
    full = Analysis.builtin("counter")
    report = full.coverage()
    print()
    print(f"after adding stall/reset/wraparound properties: "
          f"{report.percentage:.2f}% coverage")
    assert report.is_fully_covered()

    # A JSON-safe record of the run — config included — for reports:
    result = full.result()
    assert result.ok and result.config.trans == "partitioned"


if __name__ == "__main__":
    main()
