#!/usr/bin/env python
"""Circuit 3: eventuality properties, fairness, and don't-cares.

The paper's pipeline (Section 5) is verified with eventuality properties —
"an input to the pipeline will eventually appear at the output given
certain fairness conditions on the stalls" — written with nested Until
operators.  The coverage run uses two Section-4 features:

* **fairness** (4.3): the coverage space is the set of states reachable
  along fair paths (here, paths with infinitely many un-stalled cycles);
* **don't-cares** (4.2): the output value is irrelevant while ``out_valid``
  is low, so those states are excluded from the space.

The initial suite leaves the hold-period states uncovered ("the biggest
hole ... the pipeline output retains its value for 3 cycles while data is
being processed by a state machine connected to the end of the pipeline"),
and the retention properties close it.

Run:  python examples/pipeline_fairness.py
"""

from repro import (
    CoverageEstimator,
    ModelChecker,
    build_pipeline,
    parse_ctl,
    pipeline_augmented_properties,
    pipeline_output_properties,
)


def main() -> None:
    pipe = build_pipeline()
    print(f"design: {pipe.name}, {len(pipe.state_vars)} state variables, "
          f"fairness constraints: {len(pipe.fairness)}")

    checker = ModelChecker(pipe)

    # The nested-Until staging property of the paper's style.
    staging = parse_ctl(
        "AG (v1 & d1 = 1 -> A [v1 & d1 = 1 U A [v2 & d2 = 1 U "
        "v3 & output = 1]])"
    )
    print(f"\nstaging property: {staging}")
    print(f"  with fairness   : "
          f"{'PASS' if checker.holds(staging) else 'FAIL'}")
    unfair = ModelChecker(pipe, use_fairness=False)
    print(f"  without fairness: "
          f"{'PASS' if unfair.holds(staging) else 'FAIL'} "
          "(an always-stalled path never delivers)")

    estimator = CoverageEstimator(pipe, checker=checker)
    initial = pipeline_output_properties()
    assert all(checker.holds(p) for p in initial)

    # Without the don't-care, invalid-output states drag coverage down and
    # can never be covered by any property about valid data.
    raw = estimator.estimate(initial, observed="output")
    print(f"\ninitial suite, no don't-care : {raw.percentage:6.2f}% "
          f"({raw.space_count} states in space)")

    dc = estimator.estimate(initial, observed="output", dont_care="!out_valid")
    print(f"initial suite, dc=!out_valid : {dc.percentage:6.2f}% "
          f"({dc.space_count} states in space)")
    print(dc.format_uncovered(limit=3))
    print("every hole has h != 0: the 3-cycle output hold is unchecked.\n")

    final = estimator.estimate(
        pipeline_augmented_properties(), observed="output",
        dont_care="!out_valid",
    )
    print(f"augmented suite (+retention): {final.percentage:6.2f}% coverage")
    assert final.is_fully_covered()


if __name__ == "__main__":
    main()
