#!/usr/bin/env python
"""Using the library on your own design: a traffic-light controller.

This example shows the full public API surface on a fresh circuit rather
than a paper benchmark: build a design with :class:`CircuitBuilder`, verify
CTL properties, estimate coverage for an observed signal, inspect the holes
with the Definition-3 mutation oracle, and cross-check the two.

Run:  python examples/custom_circuit.py
"""

from repro import (
    CircuitBuilder,
    CoverageEstimator,
    ModelChecker,
    enumerate_model,
    mutation_covered,
    parse_ctl,
)
from repro.expr import parse_expr
from repro.expr.arith import increment_mod_bits, mux


def build_traffic_light():
    """Green -> yellow -> red -> green, with an emergency override to red."""
    b = CircuitBuilder("traffic_light")
    emergency = b.input("emergency")
    bits = ["phase0", "phase1"]
    advance = increment_mod_bits(bits, 3)  # 0=green, 1=yellow, 2=red
    # Emergency forces red (phase = 2 = binary 01 on (phase0, phase1)).
    b.latch("phase0", init=False,
            next_=mux(emergency, parse_expr("false"), advance[0]))
    b.latch("phase1", init=False,
            next_=mux(emergency, parse_expr("true"), advance[1]))
    b.word("phase", bits)
    b.define("green", "phase = 0")
    b.define("yellow", "phase = 1")
    b.define("red", "phase = 2")
    return b.build()


def main() -> None:
    light = build_traffic_light()
    checker = ModelChecker(light)

    properties = [
        parse_ctl("AG (emergency -> AX red)"),
        parse_ctl("AG (!emergency & green -> AX yellow)"),
        parse_ctl("AG (!emergency & yellow -> AX red)"),
    ]
    for prop in properties:
        result = checker.check(prop)
        print(f"  [{'PASS' if result.holds else 'FAIL'}] {prop} "
              f"({result.stats.format()})")
        assert result.holds

    estimator = CoverageEstimator(light, checker=checker)
    report = estimator.estimate(properties, observed="red")
    print()
    print(report.summary())

    # No property checks that red eventually yields back to green: the
    # post-red (green) states are uncovered for observed signal `red`.
    report2 = estimator.estimate(
        properties + [parse_ctl("AG (!emergency & red -> AX !red)")],
        observed="red",
    )
    print(f"\nwith the red-releases property: {report2.percentage:.2f}%")

    # Cross-check the symbolic covered set against the paper's Definition 3
    # (one dual FSM per state) on the explicit model.
    model = enumerate_model(light)
    oracle = mutation_covered(model, properties[0], "red")
    symbolic = estimator.covered_set(properties[0], observed="red")
    symbolic_keys = {
        tuple(s[v] for v in light.state_vars)
        for s in light.iter_states(symbolic)
    }
    oracle_keys = {
        tuple(model.signal_values[i][v] for v in light.state_vars)
        for i in oracle
    }
    assert symbolic_keys == oracle_keys
    print("\nsymbolic covered set == Definition-3 mutation oracle "
          f"({len(oracle_keys)} states) — the Correctness Theorem, live.")


if __name__ == "__main__":
    main()
