#!/usr/bin/env python3
"""Fail CI on broken relative links in README.md and docs/*.md.

Checks every inline markdown link ``[text](target)`` whose target is a
relative path: the referenced file or directory must exist (relative to
the file containing the link).  External URLs (``http(s)://``,
``mailto:``) and pure in-page anchors (``#section``) are ignored; a
``path#fragment`` target is checked for the path part only.

Usage::

    python tools/check_links.py            # check README.md + docs/*.md
    python tools/check_links.py FILE...    # check the given files

Exit code 0 when every link resolves, 1 otherwise (each broken link is
reported as ``file:line: broken link -> target``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline markdown links: [text](target).  Deliberately simple — the docs
#: do not use reference-style links or angle-bracket targets.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Target prefixes that are not local files.
EXTERNAL = ("http://", "https://", "mailto:")


def default_files(root: Path) -> List[Path]:
    """README.md plus every markdown file under docs/."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def iter_links(path: Path) -> Iterable[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for every inline link in ``path``."""
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def broken_links(path: Path) -> List[Tuple[int, str]]:
    """The links of ``path`` whose relative targets do not exist."""
    out: List[Tuple[int, str]] = []
    for lineno, target in iter_links(path):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        candidate = target.split("#", 1)[0]
        if not candidate:
            continue
        if not (path.parent / candidate).exists():
            out.append((lineno, target))
    return out


def main(argv: List[str]) -> int:
    root = Path(__file__).resolve().parents[1]
    files = [Path(a) for a in argv] if argv else default_files(root)
    failures = 0
    checked = 0
    for path in files:
        links = broken_links(path)
        checked += sum(1 for _ in iter_links(path))
        for lineno, target in links:
            print(f"{path}:{lineno}: broken link -> {target}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"docs: check OK ({checked} links in {len(files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
