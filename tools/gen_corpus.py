#!/usr/bin/env python3
"""Regenerate the seeded regression corpus under tests/corpus/.

Walks generator case keys ``corpus:<index>`` from index 0 upwards and
keeps the first ``--count`` modules whose full analysis is ``status ==
"ok"`` (all properties hold, coverage estimable) under *both* transition
modes — the corpus must stay green in the suite registry forever.  Each
kept module is written as ``gen_<index>.rml`` with a header comment, and
``MANIFEST.json`` records every seed so the corpus is reproducible from
this tool alone::

    PYTHONPATH=src python tools/gen_corpus.py            # refresh in place
    PYTHONPATH=src python tools/gen_corpus.py --check    # verify, no write

``--check`` exits non-zero if regenerating from the manifest would change
any committed file (generator drift must be a conscious decision).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.engine import EngineConfig  # noqa: E402
from repro.gen import generate  # noqa: E402

#: Manifest schema identifier.
MANIFEST_SCHEMA = "repro-corpus/v1"

#: Base key prefix; case i uses seed key ``corpus:<i>``.
SEED_PREFIX = "corpus"


def header(index: int) -> str:
    return (
        "-- repro.gen regression corpus module (seeded, deterministic).\n"
        f"-- Regenerate: PYTHONPATH=src python tools/gen_corpus.py\n"
        f"-- seed key: {SEED_PREFIX}:{index}\n"
    )


def render(index: int) -> "str | None":
    """The corpus file content for case ``index``, or ``None`` when the
    case is not green under both transition modes."""
    gm = generate(f"{SEED_PREFIX}:{index}")
    for config in (EngineConfig(), EngineConfig(trans="mono")):
        if gm.analysis(config).result().status != "ok":
            return None
    return header(index) + gm.text


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=10)
    parser.add_argument("--check", action="store_true")
    parser.add_argument(
        "--dir", default=str(Path(__file__).resolve().parents[1] / "tests" / "corpus")
    )
    args = parser.parse_args(argv)
    corpus = Path(args.dir)

    kept = {}
    index = 0
    while len(kept) < args.count:
        content = render(index)
        if content is not None:
            kept[index] = content
        index += 1
        if index > 50 * args.count:  # pragma: no cover - generator broken
            print("error: generator keeps producing failing suites", file=sys.stderr)
            return 1

    manifest = {
        "schema": MANIFEST_SCHEMA,
        "seed_prefix": SEED_PREFIX,
        "files": [
            {"file": f"gen_{i}.rml", "seed_key": f"{SEED_PREFIX}:{i}"}
            for i in sorted(kept)
        ],
    }
    manifest_text = json.dumps(manifest, indent=2) + "\n"

    if args.check:
        stale = []
        for i, content in kept.items():
            path = corpus / f"gen_{i}.rml"
            if not path.exists() or path.read_text() != content:
                stale.append(path.name)
        manifest_path = corpus / "MANIFEST.json"
        if not manifest_path.exists() or manifest_path.read_text() != manifest_text:
            stale.append(manifest_path.name)
        if stale:
            print(f"corpus stale: {', '.join(stale)} (re-run without --check)")
            return 1
        print(f"corpus up to date ({len(kept)} modules)")
        return 0

    corpus.mkdir(parents=True, exist_ok=True)
    for i, content in kept.items():
        (corpus / f"gen_{i}.rml").write_text(content)
    (corpus / "MANIFEST.json").write_text(manifest_text)
    print(f"wrote {len(kept)} corpus modules + MANIFEST.json to {corpus}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
