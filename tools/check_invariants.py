#!/usr/bin/env python3
"""Fail CI when the codebase breaks one of its structural invariants.

Three guarantees earlier PRs established are enforceable by AST
inspection, so this tool enforces them:

``kernel-recursion``
    No function in ``src/repro/bdd/backends/`` calls itself (directly,
    or via ``self.``/``cls.``).  PR 3 rewrote every BDD traversal as
    explicit-stack iteration so depth is memory-bound, and PR 7 moved
    those kernels behind the backend seam; a reintroduced recursive
    kernel would silently restore the recursion-limit ceiling.

``set-iteration``
    No ``for`` loop or comprehension in a report/serialization module
    (``coverage/report.py``, ``suite/runner.py``, ``obs/*``) iterates
    directly over a ``set``/``frozenset`` constructor, set literal, or
    set comprehension.  Set order is not deterministic across runs, and
    these modules feed byte-compared JSON reports (the PR 5 oracle
    contract) — wrap the set in ``sorted(...)`` instead.

``deprecation-prefix``
    Every literal ``DeprecationWarning`` message starts with
    ``"repro: "``, so users filtering warnings can target the library
    with one pattern.

When scanning a directory each rule applies only to its scoped paths;
explicitly-listed files get every rule (which is how the deliberately
bad fixture ``tools/fixtures/bad_invariants.py`` proves each rule still
fires — see ``tests/test_check_invariants.py``).

Usage::

    python tools/check_invariants.py            # scan src/
    python tools/check_invariants.py FILE...    # all rules on each file

Exit code 0 when every invariant holds, 1 otherwise (one
``file:line: [rule] message`` line per violation).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Callable, Iterator, List, NamedTuple, Tuple

ROOT = Path(__file__).resolve().parents[1]

#: Path fragments (POSIX, repo-relative) the set-iteration rule covers.
ORDERED_OUTPUT_MODULES = (
    "src/repro/coverage/report.py",
    "src/repro/suite/runner.py",
    "src/repro/obs/",
)

#: Path fragment the kernel-recursion rule covers.
BACKEND_DIR = "src/repro/bdd/backends/"


class Violation(NamedTuple):
    path: Path
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ----------------------------------------------------------------------
# Rule: kernel-recursion
# ----------------------------------------------------------------------


def _call_target(node: ast.Call) -> Tuple[str, bool]:
    """``(name, via_self)`` of a call, or ``("", False)`` when dynamic."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id, False
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id in ("self", "cls"):
            return func.attr, True
    return "", False


def check_kernel_recursion(tree: ast.AST, path: Path) -> List[Violation]:
    """Flag functions that call themselves by name."""
    out: List[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            name, via_self = _call_target(sub)
            if name != node.name:
                continue
            how = f"self.{name}()" if via_self else f"{name}()"
            out.append(
                Violation(
                    path, sub.lineno, "kernel-recursion",
                    f"function {node.name!r} calls itself ({how}); "
                    f"backend kernels must stay iterative "
                    f"(explicit stack), see PR 3/7",
                )
            )
    return out


# ----------------------------------------------------------------------
# Rule: set-iteration
# ----------------------------------------------------------------------


def _is_bare_set(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _iteration_sites(tree: ast.AST) -> Iterator[Tuple[ast.AST, ast.AST]]:
    """Yield ``(iterable_node, anchor_node)`` for every iteration."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for generator in node.generators:
                yield generator.iter, node


def check_set_iteration(tree: ast.AST, path: Path) -> List[Violation]:
    """Flag iteration directly over an unordered set expression."""
    out: List[Violation] = []
    for iterable, anchor in _iteration_sites(tree):
        if _is_bare_set(iterable):
            out.append(
                Violation(
                    path, anchor.lineno, "set-iteration",
                    "iteration over a bare set/frozenset has "
                    "non-deterministic order in report output; wrap it "
                    "in sorted(...)",
                )
            )
    return out


# ----------------------------------------------------------------------
# Rule: deprecation-prefix
# ----------------------------------------------------------------------


def _mentions_deprecation(node: ast.Call) -> bool:
    def is_dw(expr: ast.AST) -> bool:
        return (
            isinstance(expr, ast.Name) and expr.id == "DeprecationWarning"
        ) or (
            isinstance(expr, ast.Attribute)
            and expr.attr == "DeprecationWarning"
        )

    return any(is_dw(arg) for arg in node.args) or any(
        is_dw(kw.value) for kw in node.keywords
    )


def _literal_prefix(node: ast.AST) -> "str | None":
    """The compile-time prefix of a string expression, if there is one."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value
        return ""  # f-string starting with an interpolation
    return None


def check_deprecation_prefix(tree: ast.AST, path: Path) -> List[Violation]:
    """Flag DeprecationWarning messages missing the ``"repro: "`` tag."""
    out: List[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if not _mentions_deprecation(node) or not node.args:
            continue
        prefix = _literal_prefix(node.args[0])
        if prefix is None:
            continue  # non-literal message: nothing to check statically
        if not prefix.startswith("repro: "):
            out.append(
                Violation(
                    path, node.lineno, "deprecation-prefix",
                    "DeprecationWarning message must start with "
                    "'repro: ' so users can filter the library's "
                    "warnings with one pattern",
                )
            )
    return out


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

RULES: Tuple[Tuple[str, Callable, Callable], ...] = (
    (
        "kernel-recursion",
        check_kernel_recursion,
        lambda rel: rel.startswith(BACKEND_DIR),
    ),
    (
        "set-iteration",
        check_set_iteration,
        lambda rel: any(rel.startswith(m) for m in ORDERED_OUTPUT_MODULES),
    ),
    (
        "deprecation-prefix",
        check_deprecation_prefix,
        lambda rel: rel.startswith("src/"),
    ),
)


def check_file(path: Path, all_rules: bool = False) -> List[Violation]:
    """Run the applicable (or, for explicit files, all) rules on one file."""
    try:
        rel = path.resolve().relative_to(ROOT).as_posix()
    except ValueError:
        rel = path.as_posix()
    tree = ast.parse(path.read_text(), filename=str(path))
    out: List[Violation] = []
    for _name, rule, applies in RULES:
        if all_rules or applies(rel):
            out.extend(rule(tree, path))
    return sorted(out, key=lambda v: (str(v.path), v.line, v.rule))


def check_tree(root: Path) -> List[Violation]:
    """Scan every Python file under ``root`` with path-scoped rules."""
    out: List[Violation] = []
    for path in sorted(root.rglob("*.py")):
        out.extend(check_file(path))
    return out


def main(argv: List[str]) -> int:
    if argv:
        violations: List[Violation] = []
        for raw in argv:
            violations.extend(check_file(Path(raw), all_rules=True))
    else:
        violations = check_tree(ROOT / "src")
    for violation in violations:
        print(violation.format())
    if violations:
        print(f"{len(violations)} invariant violation(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
