"""Deliberately-bad fixture for ``tools/check_invariants.py``.

Each construct below violates exactly one enforced invariant; the unit
tests run the checker on this file (explicit files get every rule) and
assert that every rule fires.  Nothing imports this module — it only
needs to be syntactically valid.
"""

import warnings


class BadKernel:
    def apply(self, a, b):
        # kernel-recursion: a self-recursive traversal.
        if a == 0:
            return b
        return self.apply(a - 1, b)


def bad_countdown(n):
    # kernel-recursion: direct recursion through the bare name.
    return 0 if n == 0 else bad_countdown(n - 1)


def bad_report(names):
    # set-iteration: looping over a frozenset constructor.
    for name in frozenset(names):
        print(name)
    # set-iteration: a comprehension drawing from a set literal.
    return [item for item in {"b", "a"}]


def bad_warning():
    # deprecation-prefix: message lacks the "repro: " tag.
    warnings.warn("this API is deprecated", DeprecationWarning, stacklevel=2)
