"""Tests for the repro-coverage command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import TARGETS, main

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestParser:
    def test_version_flag(self, capsys):
        # argparse's version action exits 0 after printing.
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        from repro._version import __version__
        assert __version__ in out

    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for target in TARGETS:
            assert target in out

    def test_no_target_lists(self, capsys):
        assert main([]) == 0
        assert "available targets" in capsys.readouterr().out

    def test_unknown_target(self, capsys):
        assert main(["nonsense"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_invalid_stage_rejected(self, capsys):
        assert main(["counter", "--stage", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "invalid stage 'bogus'" in err
        assert "full, partial" in err

    def test_stage_on_stageless_target_rejected(self, capsys):
        assert main(["queue-full", "--stage", "initial"]) == 2
        assert "takes no --stage" in capsys.readouterr().err

    def test_every_declared_stage_is_accepted(self, capsys):
        for name, (_, stages, _desc) in TARGETS.items():
            for stage in stages:
                assert main([name, "--stage", stage]) == 0, (name, stage)
        capsys.readouterr()


class TestCoverageRuns:
    def test_counter_full(self, capsys):
        assert main(["counter"]) == 0
        out = capsys.readouterr().out
        assert "100.00%" in out

    def test_counter_partial_shows_holes(self, capsys):
        assert main(["counter", "--stage", "partial"]) == 0
        out = capsys.readouterr().out
        assert "uncovered" in out

    def test_queue_wrap_stages(self, capsys):
        assert main(["queue-wrap", "--stage", "initial"]) == 0
        initial_out = capsys.readouterr().out
        assert main(["queue-wrap", "--stage", "final"]) == 0
        final_out = capsys.readouterr().out
        assert "100.00%" in final_out
        assert "100.00%" not in initial_out

    def test_traces_flag(self, capsys):
        assert main(["queue-wrap", "--stage", "initial", "--traces", "1"]) == 0
        out = capsys.readouterr().out
        assert "trace to uncovered state #1" in out

    def test_pipeline_uses_dont_care(self, capsys):
        assert main(["pipeline", "--stage", "augmented"]) == 0
        assert "100.00%" in capsys.readouterr().out

    def test_buffer_lo_buggy_passes_initial_suite(self, capsys):
        assert main(["buffer-lo", "--buggy"]) == 0
        out = capsys.readouterr().out
        assert "uncovered" in out

    def test_buffer_lo_augmented_on_buggy_fails_verification(self, capsys):
        # The augmented suite contains the hole-closing property, which
        # fails on the buggy design: the CLI must report the failure and a
        # counterexample rather than a coverage number.
        assert main(["buffer-lo", "--buggy", "--stage", "augmented"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "cycle 0" in out

    def test_buffer_lo_augmented_on_fixed_is_full(self, capsys):
        assert main(["buffer-lo", "--stage", "augmented"]) == 0
        assert "100.00%" in capsys.readouterr().out

    def test_queue_full_and_empty(self, capsys):
        assert main(["queue-full"]) == 0
        assert "100.00%" in capsys.readouterr().out
        assert main(["queue-empty"]) == 0
        assert "100.00%" in capsys.readouterr().out

    def test_buffer_hi(self, capsys):
        assert main(["buffer-hi"]) == 0
        assert "100.00%" in capsys.readouterr().out


class TestRunSubcommand:
    def test_counter_rml_matches_builtin_target(self, capsys):
        # Acceptance criterion: `run examples/counter.rml` reproduces the
        # built-in `counter` target's coverage percentage.
        assert main(["run", str(EXAMPLES_DIR / "counter.rml")]) == 0
        rml_out = capsys.readouterr().out
        assert main(["counter"]) == 0
        builtin_out = capsys.readouterr().out

        def percentage(text):
            line = next(ln for ln in text.splitlines() if "%" in ln)
            return line.split("=")[-1].strip()

        assert percentage(rml_out) == percentage(builtin_out) == "100.00%"

    def test_missing_file(self, capsys):
        assert main(["run", "no/such/model.rml"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_directory_argument_is_a_clean_error(self, capsys):
        # An easy typo for `suite examples` — must not traceback.
        assert main(["run", str(EXAMPLES_DIR)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_parse_error_reports_line_and_column(self, capsys, tmp_path):
        path = tmp_path / "bad.rml"
        path.write_text("MODULE bad\nVAR\n  x : boolean;\nASSIGN\n"
                        "  next(x) := x & & x;\n")
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "bad.rml:5:18" in err

    def test_elaboration_error_reports_location(self, capsys, tmp_path):
        path = tmp_path / "ghost.rml"
        path.write_text("MODULE ghost\nVAR\n  x : boolean;\nASSIGN\n"
                        "  next(x) := ghost_signal;\nOBSERVED x;\n")
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "ghost.rml:5" in err
        assert "unknown signal" in err

    def test_module_without_observed_rejected(self, capsys, tmp_path):
        path = tmp_path / "no_obs.rml"
        path.write_text("MODULE no_obs\nVAR\n  x : boolean;\nASSIGN\n"
                        "  next(x) := !x;\nSPEC AG (x -> AX !x);\n")
        assert main(["run", str(path)]) == 2
        assert "OBSERVED" in capsys.readouterr().err

    def test_module_without_specs_rejected(self, capsys, tmp_path):
        path = tmp_path / "no_spec.rml"
        path.write_text("MODULE no_spec\nVAR\n  x : boolean;\nASSIGN\n"
                        "  next(x) := !x;\nOBSERVED x;\n")
        assert main(["run", str(path)]) == 2
        assert "SPEC" in capsys.readouterr().err

    def test_failing_property_aborts_with_counterexample(self, capsys, tmp_path):
        path = tmp_path / "wrong.rml"
        path.write_text(
            "MODULE wrong\nVAR\n  x : boolean;\nASSIGN\n"
            "  init(x) := FALSE;\n  next(x) := !x;\n"
            "SPEC AG (!x -> AX !x);\nOBSERVED x;\n"
        )
        assert main(["run", str(path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "aborting" in out

    def test_traces_flag(self, capsys, tmp_path):
        path = tmp_path / "hole.rml"
        # One increment property only: the reset behaviour stays uncovered.
        path.write_text(
            "MODULE hole\nVAR\n  r : boolean;\n  w : word[1];\nASSIGN\n"
            "  init(w) := 0;\n"
            "  next(w) := case\n    r : 0;\n    TRUE : w + 1;\n  esac;\n"
            "SPEC AG (!r & w = 0 -> AX w = 1);\nOBSERVED w;\n"
        )
        assert main(["run", str(path), "--traces", "1"]) == 0
        out = capsys.readouterr().out
        assert "uncovered" in out


class TestSuiteSubcommand:
    def test_suite_runs_rml_directory(self, capsys, tmp_path):
        (tmp_path / "light.rml").write_text(
            (EXAMPLES_DIR / "traffic_light.rml").read_text()
        )
        assert main(["suite", str(tmp_path), "--no-builtins"]) == 0
        out = capsys.readouterr().out
        assert "rml:light" in out
        assert "1 job(s): 1 ok" in out

    def test_missing_directory(self, capsys):
        assert main(["suite", "no/such/dir"]) == 2
        assert "no such directory" in capsys.readouterr().err

    def test_parallel_json_matches_serial(self, capsys, tmp_path):
        # Acceptance criterion: parallel per-job percentages match serial
        # execution.  A small rml-only suite keeps this fast.
        for name in ("counter", "traffic_light", "arbiter"):
            (tmp_path / f"{name}.rml").write_text(
                (EXAMPLES_DIR / f"{name}.rml").read_text()
            )
        serial_json = tmp_path / "serial.json"
        parallel_json = tmp_path / "parallel.json"
        assert main(["suite", str(tmp_path), "--no-builtins",
                     "--jobs", "1", "--json", str(serial_json)]) == 0
        assert main(["suite", str(tmp_path), "--no-builtins",
                     "--jobs", "4", "--json", str(parallel_json)]) == 0
        capsys.readouterr()
        serial = json.loads(serial_json.read_text())
        parallel = json.loads(parallel_json.read_text())
        assert serial["schema"] == parallel["schema"] == "repro-coverage-suite/v2"
        serial_pct = [(j["name"], j["percentage"]) for j in serial["jobs"]]
        parallel_pct = [(j["name"], j["percentage"]) for j in parallel["jobs"]]
        assert serial_pct == parallel_pct
        assert len(serial_pct) == 3

    def test_sharded_run_prints_shard_telemetry(self, capsys, tmp_path):
        for name in ("counter", "traffic_light", "arbiter"):
            (tmp_path / f"{name}.rml").write_text(
                (EXAMPLES_DIR / f"{name}.rml").read_text()
            )
        assert main(["suite", str(tmp_path), "--no-builtins",
                     "--jobs", "2", "--shards", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 job(s): 3 ok" in out
        assert "shards: 3 over 2 worker(s)" in out
        assert "3 completed" in out

    def test_serial_run_prints_no_shard_line(self, capsys, tmp_path):
        (tmp_path / "light.rml").write_text(
            (EXAMPLES_DIR / "traffic_light.rml").read_text()
        )
        assert main(["suite", str(tmp_path), "--no-builtins"]) == 0
        assert "shards:" not in capsys.readouterr().out

    def test_invalid_shard_flags_are_usage_errors(self, capsys):
        assert main(["suite", "--shards", "0"]) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err
        assert main(["suite", "--max-shard-retries", "-1"]) == 2
        assert "--max-shard-retries" in capsys.readouterr().err

    def test_failing_job_sets_exit_code(self, capsys, tmp_path):
        (tmp_path / "wrong.rml").write_text(
            "MODULE wrong\nVAR\n  x : boolean;\nASSIGN\n"
            "  init(x) := FALSE;\n  next(x) := !x;\n"
            "SPEC AG (!x -> AX !x);\nOBSERVED x;\n"
        )
        assert main(["suite", str(tmp_path), "--no-builtins"]) == 1
        assert "FAIL" in capsys.readouterr().out
