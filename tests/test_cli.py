"""Tests for the repro-coverage command-line interface."""

import pytest

from repro.cli import TARGETS, build_parser, main


class TestParser:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for target in TARGETS:
            assert target in out

    def test_no_target_lists(self, capsys):
        assert main([]) == 0
        assert "available targets" in capsys.readouterr().out

    def test_unknown_target(self, capsys):
        assert main(["nonsense"]) == 2
        assert "unknown target" in capsys.readouterr().err


class TestCoverageRuns:
    def test_counter_full(self, capsys):
        assert main(["counter"]) == 0
        out = capsys.readouterr().out
        assert "100.00%" in out

    def test_counter_partial_shows_holes(self, capsys):
        assert main(["counter", "--stage", "partial"]) == 0
        out = capsys.readouterr().out
        assert "uncovered" in out

    def test_queue_wrap_stages(self, capsys):
        assert main(["queue-wrap", "--stage", "initial"]) == 0
        initial_out = capsys.readouterr().out
        assert main(["queue-wrap", "--stage", "final"]) == 0
        final_out = capsys.readouterr().out
        assert "100.00%" in final_out
        assert "100.00%" not in initial_out

    def test_traces_flag(self, capsys):
        assert main(["queue-wrap", "--stage", "initial", "--traces", "1"]) == 0
        out = capsys.readouterr().out
        assert "trace to uncovered state #1" in out

    def test_pipeline_uses_dont_care(self, capsys):
        assert main(["pipeline", "--stage", "augmented"]) == 0
        assert "100.00%" in capsys.readouterr().out

    def test_buffer_lo_buggy_passes_initial_suite(self, capsys):
        assert main(["buffer-lo", "--buggy"]) == 0
        out = capsys.readouterr().out
        assert "uncovered" in out

    def test_buffer_lo_augmented_on_buggy_fails_verification(self, capsys):
        # The augmented suite contains the hole-closing property, which
        # fails on the buggy design: the CLI must report the failure and a
        # counterexample rather than a coverage number.
        assert main(["buffer-lo", "--buggy", "--stage", "augmented"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "cycle 0" in out

    def test_buffer_lo_augmented_on_fixed_is_full(self, capsys):
        assert main(["buffer-lo", "--stage", "augmented"]) == 0
        assert "100.00%" in capsys.readouterr().out

    def test_queue_full_and_empty(self, capsys):
        assert main(["queue-full"]) == 0
        assert "100.00%" in capsys.readouterr().out
        assert main(["queue-empty"]) == 0
        assert "100.00%" in capsys.readouterr().out

    def test_buffer_hi(self, capsys):
        assert main(["buffer-hi"]) == 0
        assert "100.00%" in capsys.readouterr().out
