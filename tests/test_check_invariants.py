"""The repo-invariant gate works: ``tools/check_invariants.py`` passes on
``src/``, and every rule demonstrably fires on the bad fixture."""

import importlib.util
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
BAD_FIXTURE = ROOT / "tools" / "fixtures" / "bad_invariants.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_invariants", ROOT / "tools" / "check_invariants.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_src_tree_is_clean():
    checker = _load_checker()
    violations = checker.check_tree(ROOT / "src")
    assert violations == [], "\n".join(v.format() for v in violations)


def test_every_rule_fires_on_bad_fixture():
    checker = _load_checker()
    violations = checker.check_file(BAD_FIXTURE, all_rules=True)
    fired = {v.rule for v in violations}
    assert fired == {rule for rule, _, _ in checker.RULES}


def test_bad_fixture_violations_are_anchored():
    checker = _load_checker()
    violations = checker.check_file(BAD_FIXTURE, all_rules=True)
    assert violations, "bad fixture produced no violations"
    for violation in violations:
        assert violation.line > 0
        assert str(BAD_FIXTURE) in violation.format()


def test_self_recursion_detected_via_self_and_bare_name():
    checker = _load_checker()
    violations = checker.check_file(BAD_FIXTURE, all_rules=True)
    messages = [
        v.message for v in violations if v.rule == "kernel-recursion"
    ]
    assert any("self.apply()" in m for m in messages)
    assert any("bad_countdown()" in m for m in messages)


def test_scoped_scan_skips_out_of_scope_files(tmp_path):
    """On a tree scan, rules only apply inside their scoped paths — a
    recursive helper outside the backend dir is fine."""
    checker = _load_checker()
    outside = tmp_path / "helper.py"
    outside.write_text(
        "def walk(n):\n    return 0 if n == 0 else walk(n - 1)\n"
    )
    assert checker.check_file(outside) == []
    assert checker.check_file(outside, all_rules=True) != []


def test_cli_exit_codes():
    clean = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_invariants.py")],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    assert clean.returncode == 0, clean.stdout + clean.stderr
    bad = subprocess.run(
        [
            sys.executable,
            str(ROOT / "tools" / "check_invariants.py"),
            str(BAD_FIXTURE),
        ],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    assert bad.returncode == 1
    assert "invariant violation" in bad.stdout
