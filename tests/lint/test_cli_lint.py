"""Golden tests for ``repro-coverage lint``: exact text/JSON output.

The renderings are pure functions of the sorted report, so the same
inputs must produce byte-identical output — the contract CI and any
downstream tooling parse against.  These goldens pin it.
"""

import json
from pathlib import Path

from repro._version import __version__
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


class TestTextGolden:
    def test_single_warning(self, capsys):
        path = FIXTURES / "rml011.rml"
        assert main(["lint", str(path)]) == 1
        assert capsys.readouterr().out == (
            f"{path}:10:13: warning[RML011] observed signal 'y' appears "
            f"in no property's cone of influence: its coverage is "
            f"structurally zero\n"
            f"1 file checked, 1 warning\n"
        )

    def test_clean_file(self, capsys):
        path = FIXTURES / "rml011_clean.rml"
        assert main(["lint", str(path)]) == 0
        assert capsys.readouterr().out == "1 file checked, no findings\n"

    def test_verbose_appends_code_name(self, capsys):
        path = FIXTURES / "rml005.rml"
        assert main(["lint", str(path), "--verbose"]) == 1
        assert capsys.readouterr().out == (
            f"{path}:7:3: error[RML005 width-mismatch] constant 5 out of "
            f"range for 2-bit word 'w'\n"
            f"1 file checked, 1 error\n"
        )

    def test_multi_file_summary_counts_by_severity(self, capsys):
        error = FIXTURES / "rml001.rml"
        warning = FIXTURES / "rml014.rml"
        info = FIXTURES / "rml016.rml"
        assert main(["lint", str(error), str(warning), str(info)]) == 1
        out = capsys.readouterr().out
        assert out.endswith("3 files checked, 1 error, 1 warning, 1 info\n")


class TestJsonGolden:
    def test_single_warning_document(self, capsys):
        path = FIXTURES / "rml011.rml"
        assert main(["lint", str(path), "--json"]) == 1
        assert json.loads(capsys.readouterr().out) == {
            "schema": "repro-lint/v1",
            "generator": f"repro {__version__}",
            "files": [str(path)],
            "diagnostics": [
                {
                    "code": "RML011",
                    "name": "observed-unmentioned",
                    "severity": "warning",
                    "file": str(path),
                    "line": 10,
                    "column": 13,
                    "message": (
                        "observed signal 'y' appears in no property's "
                        "cone of influence: its coverage is structurally "
                        "zero"
                    ),
                }
            ],
            "totals": {
                "files": 1,
                "diagnostics": 1,
                "errors": 0,
                "warnings": 1,
                "infos": 0,
                "suppressed": 0,
            },
        }

    def test_json_to_file(self, capsys, tmp_path):
        out_file = tmp_path / "report.json"
        path = FIXTURES / "rml016_clean.rml"
        assert main(["lint", str(path), "--json", str(out_file)]) == 0
        assert "wrote JSON report" in capsys.readouterr().out
        document = json.loads(out_file.read_text())
        assert document["schema"] == "repro-lint/v1"
        assert document["diagnostics"] == []

    def test_json_keys_are_sorted(self, capsys):
        # Byte-determinism: sort_keys means the serialised text round-trips.
        path = FIXTURES / "rml011.rml"
        assert main(["lint", str(path), "--json"]) == 1
        raw = capsys.readouterr().out
        assert raw == json.dumps(json.loads(raw), indent=2, sort_keys=True) + "\n"


class TestExitCodes:
    def test_fail_on_error_ignores_warnings(self, capsys):
        path = FIXTURES / "rml014.rml"
        assert main(["lint", str(path), "--fail-on", "error"]) == 0
        capsys.readouterr()

    def test_fail_on_error_still_fails_on_errors(self, capsys):
        path = FIXTURES / "rml001.rml"
        assert main(["lint", str(path), "--fail-on", "error"]) == 1
        capsys.readouterr()

    def test_info_findings_never_fail(self, capsys):
        path = FIXTURES / "rml016.rml"
        assert main(["lint", str(path)]) == 0
        capsys.readouterr()

    def test_directory_argument_recurses(self, capsys, tmp_path):
        nested = tmp_path / "deep"
        nested.mkdir()
        (nested / "model.rml").write_text(
            (FIXTURES / "rml014.rml").read_text()
        )
        assert main(["lint", str(tmp_path)]) == 1
        assert "RML014" in capsys.readouterr().out

    def test_missing_file_is_usage_error(self, capsys):
        assert main(["lint", "no/such/model.rml"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_nothing_to_lint_is_usage_error(self, capsys, tmp_path):
        assert main(["lint", str(tmp_path)]) == 2
        assert "nothing to lint" in capsys.readouterr().err


class TestTargetFlag:
    def test_builtin_target_has_no_source(self, capsys):
        assert main(["lint", "--target", "counter@full"]) == 2
        assert "builtin circuit" in capsys.readouterr().err

    def test_unknown_target(self, capsys):
        assert main(["lint", "--target", "nonsense"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_target_and_paths_conflict(self, capsys):
        assert main(["lint", "x.rml", "--target", "rml:counter"]) == 2
        assert "not both" in capsys.readouterr().err
