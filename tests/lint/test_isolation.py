"""``repro.lint`` must stay engine-free: importing it never loads the BDD
machinery.  A fresh interpreter proves it — the parent test process has
long since imported everything, so the check must run in a subprocess.
"""

import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"


def run_snippet(code):
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC)},
    )


class TestEngineFreeImport:
    def test_importing_lint_does_not_load_bdd(self):
        result = run_snippet(
            "import sys\n"
            "import repro.lint\n"
            "loaded = [m for m in sys.modules if m.startswith('repro.bdd')]\n"
            "assert not loaded, f'repro.lint pulled in {loaded}'\n"
        )
        assert result.returncode == 0, result.stderr

    def test_linting_a_model_does_not_load_bdd(self):
        # Not just the import: running the full battery end to end must
        # stay AST-only too.
        result = run_snippet(
            "import sys\n"
            "from repro.lint import lint_source\n"
            "report = lint_source(\n"
            "    'MODULE m\\n'\n"
            "    'VAR x : boolean;\\n'\n"
            "    'ASSIGN init(x) := 0; next(x) := !x;\\n'\n"
            "    'SPEC AG (x -> AX !x);\\n'\n"
            "    'OBSERVED x;\\n'\n"
            ")\n"
            "assert report.clean, report.codes()\n"
            "loaded = [m for m in sys.modules if m.startswith('repro.bdd')]\n"
            "assert not loaded, f'lint_source pulled in {loaded}'\n"
        )
        assert result.returncode == 0, result.stderr

    def test_source_has_no_bdd_import(self):
        # Belt and braces: no module in the package contains an import
        # statement naming the BDD layer — even a lazy import inside a
        # rarely-hit branch would dodge the runtime checks above.
        import ast

        package = SRC / "repro" / "lint"
        for path in package.glob("*.py"):
            for node in ast.walk(ast.parse(path.read_text())):
                names = []
                if isinstance(node, ast.Import):
                    names = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    module = node.module or ""
                    names = [f"{module}.{a.name}" for a in node.names]
                for name in names:
                    assert "bdd" not in name, (
                        f"{path.name} imports {name}"
                    )
