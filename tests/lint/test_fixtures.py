"""Every shipped diagnostic code has a fixture that triggers exactly it.

For each ``RMLnnn`` the fixtures directory holds a pair:

* ``rmlnnn.rml`` — a minimal model whose lint report is exactly
  ``(RMLnnn,)``: the code under test fires and *nothing else* does, so
  the fixture pins the rule's trigger condition, not a pile of noise;
* ``rmlnnn_clean.rml`` — the same model minimally edited to lint clean,
  proving the rule keys on the defect and not on the surrounding shape.

Together the pairs are a tripwire for rule regressions in both
directions: a rule that stops firing breaks the bad fixture, a rule
that starts over-firing breaks a clean twin.
"""

from pathlib import Path

import pytest

from repro.lint import CODE_INDEX, DIAGNOSTIC_CODES, Severity, lint_path

FIXTURES = Path(__file__).parent / "fixtures"
ALL_CODES = [info.code for info in DIAGNOSTIC_CODES]


def fixture_pair(code: str):
    stem = code.lower()
    return FIXTURES / f"{stem}.rml", FIXTURES / f"{stem}_clean.rml"


class TestCatalogueCompleteness:
    def test_every_code_has_a_fixture_pair(self):
        for code in ALL_CODES:
            bad, clean = fixture_pair(code)
            assert bad.is_file(), f"missing fixture for {code}"
            assert clean.is_file(), f"missing clean twin for {code}"

    def test_no_orphan_fixtures(self):
        # A fixture for a retired code would silently test nothing.
        for path in FIXTURES.glob("*.rml"):
            code = path.stem.removesuffix("_clean").upper()
            assert code in CODE_INDEX, f"fixture {path.name} has no code"


class TestFixturePairs:
    @pytest.mark.parametrize("code", ALL_CODES)
    def test_bad_fixture_triggers_exactly_its_code(self, code):
        bad, _ = fixture_pair(code)
        report = lint_path(bad)
        assert report.codes() == (code,)
        assert report.suppressed == 0

    @pytest.mark.parametrize("code", ALL_CODES)
    def test_clean_twin_is_clean(self, code):
        _, clean = fixture_pair(code)
        report = lint_path(clean)
        assert report.codes() == ()
        assert report.clean
        assert report.suppressed == 0

    @pytest.mark.parametrize("code", ALL_CODES)
    def test_severity_matches_catalogue(self, code):
        bad, _ = fixture_pair(code)
        (diagnostic,) = lint_path(bad).diagnostics
        assert diagnostic.severity == CODE_INDEX[code].severity
        assert diagnostic.name == CODE_INDEX[code].name

    @pytest.mark.parametrize("code", ALL_CODES)
    def test_finding_is_anchored(self, code):
        # Every fixture finding must carry a usable file:line:col anchor;
        # line 1 is the fixture's comment header, so real anchors are
        # strictly below it.
        bad, _ = fixture_pair(code)
        (diagnostic,) = lint_path(bad).diagnostics
        assert diagnostic.file.endswith(f"{code.lower()}.rml")
        assert diagnostic.line > 1
        assert diagnostic.column >= 1


class TestPragmas:
    def test_allow_pragma_suppresses_and_counts(self, tmp_path):
        bad, _ = fixture_pair("RML014")
        waived = tmp_path / "waived.rml"
        waived.write_text(
            "-- repro-lint: allow RML014\n" + bad.read_text()
        )
        report = lint_path(waived)
        assert report.codes() == ()
        assert report.suppressed == 1

    def test_pragma_only_suppresses_listed_codes(self, tmp_path):
        bad, _ = fixture_pair("RML014")
        waived = tmp_path / "waived.rml"
        waived.write_text(
            "-- repro-lint: allow RML016\n" + bad.read_text()
        )
        report = lint_path(waived)
        assert report.codes() == ("RML014",)
        assert report.suppressed == 0


class TestReportApi:
    def test_merge_combines_files_and_counts(self):
        bad_error, _ = fixture_pair("RML001")
        bad_warning, _ = fixture_pair("RML014")
        merged = lint_path(bad_error).merge(lint_path(bad_warning))
        assert merged.codes() == ("RML001", "RML014")
        assert len(merged.files) == 2
        assert merged.errors == 1
        assert merged.warnings == 1

    def test_at_or_above_threshold(self):
        bad_info, _ = fixture_pair("RML016")
        report = lint_path(bad_info)
        assert report.at_or_above(Severity.INFO)
        assert not report.at_or_above(Severity.WARNING)
        assert report.max_severity() == Severity.INFO
