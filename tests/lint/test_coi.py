"""Cone-of-influence analysis cross-checked against explicit semantics.

The lint COI is purely structural (a dependency closure over the parsed
module), but it makes a semantic claim: a latch *outside* the observed
cone cannot influence any observed signal.  These tests validate that
claim against the ground-truth :class:`ExplicitModel` — rewriting the
next-state logic of an out-of-cone latch must leave the projection of
the state graph onto in-cone signals byte-identical, while the same
edit to an in-cone latch must not.
"""

from repro.fsm.explicit import enumerate_model
from repro.lang import elaborate, parse_module
from repro.lint.coi import observed_cone, property_cones, union_property_cone
from repro.lint.deps import build_deps
from repro.lint.symbols import SymbolTable

BASE = """MODULE coi
VAR
  x : boolean;
  w : word[2];
  y : boolean;
ASSIGN
  init(x) := 0;
  next(x) := w = 3;
  init(w) := 0;
  next(w) := w + 1;
  init(y) := 0;
  next(y) := {y_next};
SPEC AG (x | y);
OBSERVED x;
"""


def cones_of(source):
    module = parse_module(source, filename="coi.rml")
    table = SymbolTable(module)
    graph = build_deps(module, table)
    return module, table, graph


def flatten(names, table):
    """Expand word names in ``names`` to their per-bit signal names, the
    granularity :class:`ExplicitModel` labels states with."""
    flat = set()
    for name in names:
        flat.update(table.word_bits.get(name, [name]))
    return flat


def projected_graph(source, names):
    """The state graph of ``source`` with labels restricted to ``names``:
    projected initial labels plus the set of projected edges."""
    model = enumerate_model(elaborate(parse_module(source)).fsm)

    def label(i):
        return tuple(
            (name, model.signal_values[i][name]) for name in sorted(names)
        )

    initials = {label(i) for i in model.initial}
    edges = {
        (label(i), label(j))
        for i in range(model.n)
        for j in model.successors[i]
    }
    return initials, edges


class TestStructuralCones:
    def test_observed_cone_is_dependency_closure(self):
        module, table, graph = cones_of(BASE.format(y_next="!y"))
        # x depends on w; y is its own island.
        assert observed_cone(module, table, graph) == {"x", "w"}

    def test_property_cone_follows_spec_atoms(self):
        module, table, graph = cones_of(BASE.format(y_next="!y"))
        (cone,) = property_cones(module, table, graph)
        assert cone == union_property_cone(module, table, graph)
        # AG (x | y) mentions both latches; closure pulls in w through x.
        assert cone == {"x", "w", "y"}

    def test_word_bit_atoms_resolve_to_parent_word(self):
        source = BASE.format(y_next="!y").replace(
            "SPEC AG (x | y);", "SPEC AG (x | w1);"
        )
        module, table, graph = cones_of(source)
        assert union_property_cone(module, table, graph) == {"x", "w"}


class TestSemanticCrossCheck:
    def test_out_of_cone_edit_is_observationally_invisible(self):
        module, table, graph = cones_of(BASE.format(y_next="!y"))
        cone = flatten(observed_cone(module, table, graph), table)
        assert "y" not in cone
        reference = projected_graph(BASE.format(y_next="!y"), cone)
        for y_next in ("y", "x | y", "FALSE"):
            variant = projected_graph(BASE.format(y_next=y_next), cone)
            assert variant == reference, y_next

    def test_in_cone_edit_is_observationally_visible(self):
        # Positive control: the same experiment on an in-cone latch must
        # change the projection, or the previous test proves nothing.
        module, table, graph = cones_of(BASE.format(y_next="!y"))
        cone = flatten(observed_cone(module, table, graph), table)
        assert "w0" in cone
        reference = projected_graph(BASE.format(y_next="!y"), cone)
        variant_source = BASE.format(y_next="!y").replace(
            "next(w) := w + 1;", "next(w) := w;"
        )
        assert projected_graph(variant_source, cone) != reference

    def test_cone_projection_hides_dead_state_blowup(self):
        # Driving the dead latch from a free input blows up the raw
        # state count; the projection onto the observed cone must not
        # grow with it.
        source = BASE.format(y_next="j").replace(
            "  y : boolean;", "  y : boolean;\n  j : boolean;"
        )
        module, table, graph = cones_of(source)
        cone = flatten(observed_cone(module, table, graph), table)
        assert cone == {"x", "w0", "w1"}
        model = enumerate_model(elaborate(parse_module(source)).fsm)
        _, edges = projected_graph(source, cone)
        projected_states = {src for src, _ in edges} | {
            dst for _, dst in edges
        }
        assert len(projected_states) < model.n
