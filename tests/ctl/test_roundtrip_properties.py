"""Property-based round-trip and normalisation invariants for CTL."""

from hypothesis import given, settings

from repro.ctl import (
    collapse,
    ctl_to_str,
    normalize_for_coverage,
    parse_ctl,
)
from repro.expr import parse_expr
from tests.strategies import acceptable_formulas, ctl_formulas

ATOMS = [
    parse_expr("p"),
    parse_expr("q"),
    parse_expr("!p"),
    parse_expr("p & q"),
    parse_expr("p | !q"),
    parse_expr("count < 5"),
    parse_expr("true"),
]

FORMULA = ctl_formulas(ATOMS, depth=3)


@settings(max_examples=200, deadline=None)
@given(FORMULA)
def test_print_parse_round_trip(formula):
    # Collapse first: the parser always returns collapsed formulas, so the
    # round-trip is print(collapse(f)) -> parse -> collapse(f).
    collapsed = collapse(formula)
    assert parse_ctl(ctl_to_str(collapsed)) == collapsed


@settings(max_examples=200, deadline=None)
@given(FORMULA)
def test_collapse_is_idempotent(formula):
    once = collapse(formula)
    assert collapse(once) == once


@settings(max_examples=200, deadline=None)
@given(acceptable_formulas(ATOMS, depth=3))
def test_normalize_accepts_and_is_idempotent(formula):
    normalized = normalize_for_coverage(formula)
    assert normalize_for_coverage(normalized) == normalized


@settings(max_examples=200, deadline=None)
@given(acceptable_formulas(ATOMS, depth=3))
def test_normalized_formulas_round_trip(formula):
    normalized = normalize_for_coverage(formula)
    reparsed = parse_ctl(ctl_to_str(normalized))
    assert reparsed == normalized
