"""Property-based round-trip and normalisation invariants for CTL."""

from hypothesis import given, settings, strategies as st

from repro.ctl import (
    AF,
    AG,
    AU,
    AX,
    Atom,
    CtlAnd,
    CtlImplies,
    CtlNot,
    CtlOr,
    EF,
    EG,
    EU,
    EX,
    collapse,
    ctl_to_str,
    normalize_for_coverage,
    parse_ctl,
)
from repro.expr import parse_expr

ATOMS = [
    parse_expr("p"),
    parse_expr("q"),
    parse_expr("!p"),
    parse_expr("p & q"),
    parse_expr("p | !q"),
    parse_expr("count < 5"),
    parse_expr("true"),
]


def ctl_formulas(depth):
    atom = st.sampled_from(ATOMS).map(Atom)
    if depth == 0:
        return atom
    sub = ctl_formulas(depth - 1)
    return st.one_of(
        atom,
        sub.map(CtlNot),
        sub.map(AX), sub.map(AG), sub.map(AF),
        sub.map(EX), sub.map(EG), sub.map(EF),
        st.tuples(sub, sub).map(lambda t: CtlAnd(t)),
        st.tuples(sub, sub).map(lambda t: CtlOr(t)),
        st.tuples(sub, sub).map(lambda t: CtlImplies(*t)),
        st.tuples(sub, sub).map(lambda t: AU(*t)),
        st.tuples(sub, sub).map(lambda t: EU(*t)),
    )


FORMULA = ctl_formulas(3)


@settings(max_examples=200, deadline=None)
@given(FORMULA)
def test_print_parse_round_trip(formula):
    # Collapse first: the parser always returns collapsed formulas, so the
    # round-trip is print(collapse(f)) -> parse -> collapse(f).
    collapsed = collapse(formula)
    assert parse_ctl(ctl_to_str(collapsed)) == collapsed


@settings(max_examples=200, deadline=None)
@given(FORMULA)
def test_collapse_is_idempotent(formula):
    once = collapse(formula)
    assert collapse(once) == once


def acceptable_formulas(depth):
    atom = st.sampled_from(ATOMS).map(Atom)
    if depth == 0:
        return atom
    sub = acceptable_formulas(depth - 1)
    return st.one_of(
        atom,
        st.tuples(atom, sub).map(lambda t: CtlImplies(*t)),
        sub.map(AX), sub.map(AG), sub.map(AF),
        st.tuples(sub, sub).map(lambda t: AU(*t)),
        st.tuples(sub, sub).map(lambda t: CtlAnd(t)),
    )


@settings(max_examples=200, deadline=None)
@given(acceptable_formulas(3))
def test_normalize_accepts_and_is_idempotent(formula):
    normalized = normalize_for_coverage(formula)
    assert normalize_for_coverage(normalized) == normalized


@settings(max_examples=200, deadline=None)
@given(acceptable_formulas(3))
def test_normalized_formulas_round_trip(formula):
    normalized = normalize_for_coverage(formula)
    reparsed = parse_ctl(ctl_to_str(normalized))
    assert reparsed == normalized
