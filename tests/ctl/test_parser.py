"""Tests for the CTL parser, printer, and propositional collapsing."""

import pytest

from repro.ctl import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    Atom,
    CtlAnd,
    CtlImplies,
    CtlNot,
    CtlOr,
    ctl_to_str,
    formula_atoms,
    is_propositional,
    parse_ctl,
)
from repro.errors import ParseError
from repro.expr import Not, Var, WordCmp, parse_expr


class TestTemporalOperators:
    def test_ag(self):
        f = parse_ctl("AG ready")
        assert f == AG(Atom(Var("ready")))

    def test_nested_ax(self):
        f = parse_ctl("AX AX q")
        assert f == AX(AX(Atom(Var("q"))))

    def test_af_ef_eg_ex(self):
        assert isinstance(parse_ctl("AF p"), AF)
        assert isinstance(parse_ctl("EF p"), EF)
        assert isinstance(parse_ctl("EG p"), EG)
        assert isinstance(parse_ctl("EX p"), EX)

    def test_until(self):
        f = parse_ctl("A [p U q]")
        assert f == AU(Atom(Var("p")), Atom(Var("q")))

    def test_existential_until(self):
        f = parse_ctl("E [p U q]")
        assert f == EU(Atom(Var("p")), Atom(Var("q")))

    def test_nested_until(self):
        f = parse_ctl("A [p U A [q U r]]")
        assert f == AU(Atom(Var("p")), AU(Atom(Var("q")), Atom(Var("r"))))

    def test_paper_counter_property_shape(self):
        f = parse_ctl("AG (!stall & !reset & count < 5 -> AX count = 3)")
        assert isinstance(f, AG)
        assert isinstance(f.operand, CtlImplies)
        antecedent = f.operand.lhs
        assert isinstance(antecedent, Atom)
        assert antecedent.expr == parse_expr("!stall & !reset & count < 5")
        consequent = f.operand.rhs
        assert consequent == AX(Atom(WordCmp("==", "count", 3)))

    def test_paper_pipeline_property_shape(self):
        f = parse_ctl("AG (p1 -> A [p2 U A [p3 U p4]])")
        assert isinstance(f, AG)
        assert isinstance(f.operand.rhs, AU)

    def test_signal_named_a_is_a_variable(self):
        f = parse_ctl("A & b")
        assert f == Atom(parse_expr("A & b"))

    def test_missing_u_raises(self):
        with pytest.raises(ParseError):
            parse_ctl("A [p q]")

    def test_unclosed_until_raises(self):
        with pytest.raises(ParseError):
            parse_ctl("A [p U q")


class TestCollapsing:
    def test_pure_propositional_becomes_single_atom(self):
        f = parse_ctl("!stall & !reset & count < 5")
        assert isinstance(f, Atom)
        assert f.expr == parse_expr("!stall & !reset & count < 5")

    def test_mixed_keeps_temporal_structure(self):
        f = parse_ctl("p & AX q")
        assert isinstance(f, CtlAnd)
        assert f.args[0] == Atom(Var("p"))
        assert f.args[1] == AX(Atom(Var("q")))

    def test_negation_of_atom_collapses(self):
        f = parse_ctl("!p")
        assert f == Atom(Not(Var("p")))

    def test_negation_of_temporal_stays(self):
        f = parse_ctl("!AX p")
        assert f == CtlNot(AX(Atom(Var("p"))))

    def test_or_of_temporal_stays(self):
        f = parse_ctl("AX p | AG q")
        assert isinstance(f, CtlOr)

    def test_is_propositional(self):
        assert is_propositional(parse_ctl("a & b | !c"))
        assert not is_propositional(parse_ctl("AX a"))


class TestPrinterRoundTrip:
    CASES = [
        "AG ready",
        "AX AX q",
        "A [p U q]",
        "E [p U q]",
        "AG (p1 -> AX AX q)",
        "AG (!stall & !reset & count < 5 -> AX count = 3)",
        "A [p U A [q U r]]",
        "AG (p -> A [p2 U A [p3 U p4]])",
        "!AX p",
        "AX p | AG q",
        "EF (p & q)",
        "AG p & AG q",
        "p -> AX q",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_round_trip(self, text):
        parsed = parse_ctl(text)
        assert parse_ctl(ctl_to_str(parsed)) == parsed


class TestAtomCollection:
    def test_formula_atoms(self):
        f = parse_ctl("AG (!stall & count < 5 -> AX count = 3)")
        assert formula_atoms(f) == frozenset({"stall", "count"})
