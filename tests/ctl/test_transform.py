"""Tests for the observability transformation (paper Definition 5)."""

import pytest

from repro.ctl import (
    AG,
    AU,
    AX,
    Atom,
    CtlAnd,
    CtlImplies,
    CtlNot,
    normalize_for_coverage,
    observability_transform,
    parse_ctl,
    prime_name,
    substitute_signal,
)
from repro.errors import NotInSubsetError
from repro.expr import Var, parse_expr


def transform(text, observed="q"):
    return observability_transform(
        normalize_for_coverage(parse_ctl(text)), observed
    )


class TestAtomRule:
    def test_atom_substitutes_q(self):
        assert transform("q") == Atom(Var("q'"))

    def test_atom_without_q_unchanged(self):
        assert transform("p") == Atom(Var("p"))

    def test_compound_atom_substitutes_inside(self):
        got = transform("p & !q")
        assert got == Atom(parse_expr("p & !q'"))


class TestImplicationRule:
    def test_antecedent_keeps_original_q(self):
        # phi(b -> f) = b -> phi(f): q in the antecedent is NOT primed.
        got = transform("q -> AX q")
        expected = CtlImplies(Atom(Var("q")), AX(Atom(Var("q'"))))
        assert got == expected

    def test_paper_counter_shape(self):
        got = transform("AG (p -> AX q)")
        expected = AG(CtlImplies(Atom(Var("p")), AX(Atom(Var("q'")))))
        assert got == expected


class TestTemporalRules:
    def test_ax_distributes(self):
        assert transform("AX q") == AX(Atom(Var("q'")))

    def test_ag_distributes(self):
        assert transform("AG q") == AG(Atom(Var("q'")))

    def test_conjunction_distributes(self):
        got = transform("AX q & AG q")
        assert got == CtlAnd((AX(Atom(Var("q'"))), AG(Atom(Var("q'")))))


class TestUntilRule:
    def test_until_splits_into_two_conjuncts(self):
        # phi(A[p U q]) = A[phi(p) U q] & A[(p & !q) U phi(q)]
        got = transform("A [p U q]")
        left = AU(Atom(Var("p")), Atom(Var("q")))
        right = AU(Atom(parse_expr("p & !q")), Atom(Var("q'")))
        assert got == CtlAnd((left, right))

    def test_until_with_q_on_both_sides(self):
        got = transform("A [q U r]", observed="q")
        left = AU(Atom(Var("q'")), Atom(Var("r")))
        right = AU(Atom(parse_expr("q & !r")), Atom(Var("r")))
        assert got == CtlAnd((left, right))

    def test_until_temporal_arms(self):
        # The (f & !g) conjunct may negate a temporal g: leaves ACTL, still
        # a well-formed CTL formula.
        got = transform("A [p U AX q]")
        assert isinstance(got, CtlAnd)
        left, right = got.args
        assert left == AU(Atom(Var("p")), AX(Atom(Var("q"))))
        assert isinstance(right, AU)
        assert isinstance(right.lhs, CtlAnd)
        assert isinstance(right.lhs.args[1], CtlNot)
        assert right.rhs == AX(Atom(Var("q'")))

    def test_af_desugared_before_transform(self):
        # AF q = A[true U q]: phi = A[true U q] & A[(true & !q) U q']
        got = transform("AF q")
        assert isinstance(got, CtlAnd)
        assert got.args[1].rhs == Atom(Var("q'"))


class TestSubstituteSignal:
    def test_var_substitution(self):
        expr = parse_expr("p & !q")
        assert substitute_signal(expr, "q", "q'") == parse_expr("p & !q'")

    def test_word_cmp_mentioning_observed_rejected(self):
        expr = parse_expr("count < 5")
        with pytest.raises(NotInSubsetError):
            substitute_signal(expr, "count", "count'")

    def test_word_cmp_not_mentioning_observed_ok(self):
        expr = parse_expr("count < 5")
        assert substitute_signal(expr, "q", "q'") == expr


class TestPrimeName:
    def test_prime_name(self):
        assert prime_name("wrap") == "wrap'"

    def test_transform_semantic_equivalence_note(self):
        # phi(f) with q' == q must be semantically identical to f; spot-check
        # the structure used by the estimator correctness tests.
        got = transform("AG (p -> AX q)")
        # Replacing q' back by q recovers the original formula.
        from repro.ctl import map_atoms

        restored = map_atoms(got, lambda e: e.substitute({"q'": Var("q")}))
        assert restored == normalize_for_coverage(parse_ctl("AG (p -> AX q)"))
