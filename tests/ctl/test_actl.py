"""Tests for the acceptable ACTL subset validation and AF desugaring."""

import pytest

from repro.ctl import (
    AU,
    TRUE_ATOM,
    Atom,
    desugar_af,
    normalize_for_coverage,
    parse_ctl,
)
from repro.errors import NotInSubsetError
from repro.expr import Var


class TestAcceptable:
    GOOD = [
        "p",
        "p & q",
        "p -> AX q",
        "AX p",
        "AG p",
        "AG (p -> AX q)",
        "A [p U q]",
        "AG (p -> A [q U r])",
        "AG p & AG q",
        "p -> (q -> AX r)",
        "AG (p1 -> AX AX q)",
        "A [A [p U q] U r]",
        "AF p",  # sugar
        "AG (req -> AF ack)",
    ]

    @pytest.mark.parametrize("text", GOOD)
    def test_accepted(self, text):
        normalize_for_coverage(parse_ctl(text))  # must not raise

    BAD = [
        ("AX p | AG q", "disjunction"),
        ("!AX p", "negation"),
        ("EX p", "existential"),
        ("EG p", "existential"),
        ("E [p U q]", "existential"),
        ("AX p -> AX q", "antecedent"),
        ("AG p <-> AG q", "subset"),
    ]

    @pytest.mark.parametrize("text,fragment", BAD)
    def test_rejected_with_informative_message(self, text, fragment):
        with pytest.raises(NotInSubsetError) as exc:
            normalize_for_coverage(parse_ctl(text))
        assert fragment.lower() in str(exc.value).lower()

    def test_propositional_or_is_fine(self):
        # Disjunction of *propositional* formulas collapses to an atom.
        normalize_for_coverage(parse_ctl("AG (p | q)"))

    def test_propositional_negation_is_fine(self):
        normalize_for_coverage(parse_ctl("AG (!p -> AX q)"))


class TestDesugarAf:
    def test_af_becomes_true_until(self):
        f = desugar_af(parse_ctl("AF p"))
        assert f == AU(TRUE_ATOM, Atom(Var("p")))

    def test_nested_af(self):
        f = desugar_af(parse_ctl("AG (req -> AF ack)"))
        expected = parse_ctl("AG (req -> A [true U ack])")
        assert f == expected

    def test_af_inside_until(self):
        f = desugar_af(parse_ctl("A [p U AF q]"))
        assert f == AU(Atom(Var("p")), AU(TRUE_ATOM, Atom(Var("q"))))

    def test_normalize_is_idempotent(self):
        f = normalize_for_coverage(parse_ctl("AG (req -> AF ack)"))
        assert normalize_for_coverage(f) == f
