"""Parsed-module reuse and the AnalysisResult JSON round trip.

Satellite guarantees: ``Analysis.from_rml`` accepts an already-parsed
module (no second parse — pinned by the ``lang.parse_module`` counter),
``from_job`` threads a pre-parsed module through to the same result, and
``AnalysisResult.from_json`` inverts ``to_json`` exactly.
"""

import json

import pytest

from repro.analysis import Analysis, AnalysisResult
from repro.engine import EngineConfig
from repro.errors import ReportError
from repro.lang import parse_module
from repro.obs.counters import counter_delta
from repro.suite.jobs import KIND_RML, CoverageJob
from repro.suite.runner import execute_job

RML = (
    "MODULE m\n"
    "VAR x : boolean;\n"
    "ASSIGN next(x) := !x;\n"
    "SPEC AG (x | !x);\n"
    "OBSERVED x;\n"
)


def stripped(result: AnalysisResult) -> dict:
    doc = result.to_json()
    doc["seconds"] = doc["gc_seconds"] = 0.0
    return doc


class TestFromRmlModuleReuse:
    def test_parsed_module_is_accepted(self):
        analysis = Analysis.from_rml(parse_module(RML))
        assert analysis.kind == "rml"
        assert analysis.module is not None
        assert analysis.result().status == "ok"

    def test_text_and_module_paths_agree(self):
        from_text = Analysis.from_rml(RML).result()
        from_module = Analysis.from_rml(parse_module(RML)).result()
        assert stripped(from_text) == stripped(from_module)

    def test_text_path_parses_exactly_once(self):
        with counter_delta("lang.parse_module") as parses:
            Analysis.from_rml(RML)
        assert parses() == 1

    def test_module_path_never_parses(self):
        module = parse_module(RML)
        with counter_delta("lang.parse_module") as parses:
            Analysis.from_rml(module).result()
        assert parses() == 0

    def test_from_job_reuses_a_preparsed_module(self):
        job = CoverageJob(
            name="rml:m", kind=KIND_RML, source=RML, config=EngineConfig()
        )
        module = parse_module(RML)
        with counter_delta("lang.parse_module") as parses:
            reused = Analysis.from_job(job, module=module).result()
        assert parses() == 0
        assert stripped(reused) == stripped(Analysis.from_job(job).result())


class TestExecuteJobHooks:
    def test_include_lint_false_omits_the_lint_block(self):
        job = CoverageJob(
            name="rml:m", kind=KIND_RML, source=RML, config=EngineConfig()
        )
        with_lint = execute_job(job).to_json()
        without = execute_job(job, include_lint=False).to_json()
        assert "lint" in with_lint
        assert "lint" not in without
        without["lint"] = with_lint["lint"]
        for doc in (with_lint, without):
            doc["seconds"] = doc["gc_seconds"] = 0.0
        assert with_lint == without


class TestAnalysisResultFromJson:
    def test_round_trips_a_real_analysis(self):
        # JSON-level identity is the wire contract (to_json rounds the
        # timing floats, so decode(encode(x)) re-encodes byte-identically
        # even though the pre-encoding object kept full float precision).
        result = Analysis.from_rml(RML).result()
        revived = AnalysisResult.from_json(result.to_json())
        assert json.dumps(revived.to_json(), sort_keys=True) == json.dumps(
            result.to_json(), sort_keys=True
        )
        assert revived.status == result.status
        assert revived.percentage == result.percentage

    def test_config_is_revived_as_an_engine_config(self):
        result = Analysis.from_rml(
            RML, config=EngineConfig(trans="mono")
        ).result()
        revived = AnalysisResult.from_json(result.to_json())
        assert isinstance(revived.config, EngineConfig)
        assert revived.config.trans == "mono"

    def test_unknown_fields_are_rejected(self):
        doc = AnalysisResult(name="n", kind="builtin", status="ok").to_json()
        doc["surprise"] = 1
        with pytest.raises(ReportError, match="surprise"):
            AnalysisResult.from_json(doc)

    def test_missing_identity_fields_are_rejected(self):
        with pytest.raises(ReportError, match="status"):
            AnalysisResult.from_json({"name": "n", "kind": "builtin"})

    def test_non_object_is_rejected(self):
        with pytest.raises(ReportError):
            AnalysisResult.from_json(["not", "a", "result"])
