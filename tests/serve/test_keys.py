"""The ``repro-key/v1`` scheme: stability, invariance, and sensitivity.

The cache is only sound if the key is exactly as blind as the engine:
invariant under concrete-syntax noise (whitespace, comments — the
engine never sees them), distinct under anything the engine *does* see
(semantic edits, config knobs, property selection).
"""

import pytest
from hypothesis import given, settings

from repro.engine import EngineConfig
from repro.errors import ParseError
from repro.lang import module_to_str, parse_module
from repro.serve.keys import canonical_rml, model_key, request_key

from ..strategies import modules

BASE = (
    "MODULE m\n"
    "VAR x : boolean;\n"
    "ASSIGN next(x) := !x;\n"
    "SPEC AG (x | !x);\n"
    "OBSERVED x;\n"
)

# The same module under concrete-syntax noise only: re-indented, blank
# lines, `--` comments.  The grammar treats all of it as trivia.
NOISY = (
    "MODULE m  -- a comment\n"
    "\n"
    "  VAR x : boolean;\n"
    "-- standalone comment line\n"
    "  ASSIGN next(x) := !x;\n"
    "\n"
    "  SPEC AG (x | !x);\n"
    "  OBSERVED x;  -- trailing\n"
)

# One semantic edit (negation dropped from the assignment).
SEMANTIC_EDIT = BASE.replace("next(x) := !x", "next(x) := x")


class TestModelKey:
    def test_whitespace_and_comment_edits_share_a_key(self):
        assert model_key(BASE) == model_key(NOISY)

    def test_semantic_edit_changes_the_key(self):
        assert model_key(BASE) != model_key(SEMANTIC_EDIT)

    def test_text_and_parsed_module_agree(self):
        module = parse_module(BASE)
        assert model_key(BASE) == model_key(module)

    def test_canonical_form_is_the_printers(self):
        assert canonical_rml(NOISY) == module_to_str(parse_module(NOISY))

    def test_invalid_text_raises_parse_error(self):
        with pytest.raises(ParseError):
            model_key("MODULE broken\nVAR ; ;\n")

    @settings(max_examples=25, deadline=None)
    @given(generated=modules())
    def test_reprint_fixpoint_for_generated_models(self, generated):
        """For any generated model, the canonical text is a fixpoint:
        hashing the reprint equals hashing the original — the property
        behind whitespace/comment invariance."""
        assert model_key(generated.text) == model_key(
            canonical_rml(generated.text)
        )

    @settings(max_examples=25, deadline=None)
    @given(generated=modules())
    def test_comment_only_edit_never_splits_generated_models(self, generated):
        commented = "-- leading comment\n" + generated.text.replace(
            "\n", "  -- note\n", 1
        )
        assert model_key(generated.text) == model_key(commented)


class TestRequestKey:
    def test_exactly_one_of_rml_and_target(self):
        with pytest.raises(ValueError):
            request_key()
        with pytest.raises(ValueError):
            request_key(rml=BASE, target="counter")

    def test_rml_and_builtin_never_collide(self):
        assert request_key(rml=BASE) != request_key(target="counter")

    def test_rml_accepts_parsed_module(self):
        module = parse_module(BASE)
        assert request_key(rml=BASE) == request_key(rml=module)

    def test_config_is_part_of_the_key(self):
        mono = EngineConfig(trans="mono")
        assert request_key(rml=BASE) != request_key(rml=BASE, config=mono)
        assert request_key(target="counter") != request_key(
            target="counter", config=mono
        )

    def test_backend_is_part_of_the_key(self):
        array = EngineConfig(backend="array")
        assert request_key(target="counter") != request_key(
            target="counter", config=array
        )

    def test_property_selection_is_part_of_the_key(self):
        base = request_key(target="counter")
        assert base != request_key(target="counter", stage="partial")
        assert base != request_key(target="counter", buggy=True)
        assert request_key(target="counter", stage="partial") != request_key(
            target="counter", stage="full"
        )

    def test_default_config_is_explicit_not_absent(self):
        """An explicitly-passed default config and no config at all are
        the same request — defaults are serialised, not omitted."""
        assert request_key(rml=BASE) == request_key(
            rml=BASE, config=EngineConfig()
        )

    def test_keys_are_stable_hex_digests(self):
        key = request_key(rml=BASE)
        assert len(key) == 64
        assert key == request_key(rml=BASE)
        int(key, 16)  # hex or bust
