"""The analysis server's happy paths: cache, dedup, parse reuse, stats.

Every test talks HTTP to a real server on a background thread (see
``conftest.ThreadedServer``) through the real client — the asyncio
request path, the payload codec, and the response envelope are all in
the loop.
"""

import threading

from repro.analysis import AnalysisResult
from repro.engine import EngineConfig
from repro.serve.cache import ENTRY_SCHEMA
from repro.serve.server import SERVE_SCHEMA
from repro.serve.workers import WorkerPool, payload_from_job
from repro.suite.jobs import KIND_BUILTIN, KIND_RML, CoverageJob
from repro.suite.runner import execute_job

RML = (
    "MODULE m\n"
    "VAR x : boolean;\n"
    "ASSIGN next(x) := !x;\n"
    "SPEC AG (x | !x);\n"
    "OBSERVED x;\n"
)

#: The same model under comment/whitespace edits only.
RML_COMMENTED = (
    "MODULE m  -- cosmetics only\n"
    "\n"
    "  VAR x : boolean;\n"
    "  ASSIGN next(x) := !x;\n"
    "  SPEC AG (x | !x);\n"
    "  OBSERVED x;\n"
)


def strip_timings(doc: dict) -> dict:
    doc = dict(doc)
    doc["seconds"] = doc["gc_seconds"] = 0.0
    return doc


class TestIntrospection:
    def test_health(self, threaded_server):
        doc = threaded_server().client().health()
        assert doc["schema"] == SERVE_SCHEMA
        assert doc["status"] == "ok"
        assert doc["inline"] is True

    def test_stats_is_a_metrics_document(self, threaded_server):
        doc = threaded_server().client().stats()
        assert doc["schema"] == "repro-metrics/v1"
        assert doc["level"] == "counters"
        assert "serve.cache.misses" in doc["counters"]
        assert "serve.workers.jobs" in doc["counters"]


class TestCaching:
    def test_cold_miss_then_warm_hit(self, threaded_server):
        client = threaded_server().client()
        cold = client.analyze_builtin("counter", stage="full")
        warm = client.analyze_builtin("counter", stage="full")
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert warm["key"] == cold["key"]
        assert warm["result"] == cold["result"]

    def test_cached_answer_does_zero_engine_work(self, threaded_server):
        server = threaded_server()
        client = server.client()
        client.analyze_builtin("counter", stage="full")
        jobs_after_first = server.server.pool.stats()["jobs"]
        for _ in range(3):
            assert client.analyze_builtin("counter", stage="full")["cached"]
        assert server.server.pool.stats()["jobs"] == jobs_after_first

    def test_different_configs_are_different_cache_lines(
        self, threaded_server
    ):
        client = threaded_server().client()
        partitioned = client.analyze_builtin("counter", stage="full")
        mono = client.analyze_builtin(
            "counter", stage="full", config=EngineConfig(trans="mono")
        )
        assert partitioned["key"] != mono["key"]
        assert mono["cached"] is False

    def test_results_persist_on_disk_between_servers(
        self, threaded_server, tmp_path
    ):
        shared = tmp_path / "shared-cache"
        first = threaded_server(cache_dir=shared)
        cold = first.client().analyze_builtin("counter", stage="full")
        first.stop()
        entries = list(shared.glob("*.json"))
        assert len(entries) == 1
        second = threaded_server(cache_dir=shared)
        warm = second.client().analyze_builtin("counter", stage="full")
        assert warm["cached"] is True
        assert warm["result"] == cold["result"]
        assert second.server.cache.stats()["disk_hits"] == 1

    def test_disk_entries_are_schema_tagged(self, threaded_server, tmp_path):
        shared = tmp_path / "tagged-cache"
        server = threaded_server(cache_dir=shared)
        server.client().analyze_builtin("counter")
        import json as json_module

        entry = json_module.loads(next(shared.glob("*.json")).read_text())
        assert entry["schema"] == ENTRY_SCHEMA


class TestByteIdentity:
    def test_builtin_matches_direct_execution(self, threaded_server):
        job = CoverageJob(
            name="counter@full", kind=KIND_BUILTIN, target="counter",
            stage="full", config=EngineConfig(),
        )
        local = execute_job(job).to_json()
        remote = threaded_server().client().analyze_job(job).to_json()
        assert strip_timings(remote) == strip_timings(local)

    def test_rml_matches_direct_execution_including_lint(
        self, threaded_server
    ):
        job = CoverageJob(
            name="rml:m", kind=KIND_RML, source=RML, config=EngineConfig()
        )
        local = execute_job(job).to_json()
        remote = threaded_server().client().analyze_job(job).to_json()
        assert "lint" in remote
        assert strip_timings(remote) == strip_timings(local)

    def test_error_results_match_direct_execution(self, threaded_server):
        # No OBSERVED declaration: a ModelError locally, and the server
        # must answer with the same status="error" result document.
        bad = "MODULE m\nVAR x : boolean;\nASSIGN next(x) := !x;\nSPEC AG x;\n"
        job = CoverageJob(
            name="rml:bad", kind=KIND_RML, source=bad, config=EngineConfig()
        )
        local = execute_job(job).to_json()
        remote = threaded_server().client().analyze_job(job).to_json()
        assert remote["status"] == "error"
        assert strip_timings(remote) == strip_timings(local)


class TestLintFreshness:
    def test_comment_edit_shares_the_key_but_gets_its_own_lint(
        self, threaded_server
    ):
        """A comment-only edit must reuse the cached engine result (same
        key, cached=True) yet carry lint computed from *its* raw text —
        exactly what direct local execution of the edited text reports."""
        client = threaded_server().client()
        plain = client.analyze_rml(RML, name="rml:m")
        edited = client.analyze_rml(RML_COMMENTED, name="rml:m")
        assert edited["key"] == plain["key"]
        assert edited["cached"] is True

        local_job = CoverageJob(
            name="rml:m", kind=KIND_RML, source=RML_COMMENTED,
            config=EngineConfig(),
        )
        local = execute_job(local_job).to_json()
        assert strip_timings(edited["result"]) == strip_timings(local)


class TestDeduplication:
    def test_concurrent_identical_requests_run_one_analysis(
        self, threaded_server
    ):
        server = threaded_server()
        jobs_before = server.server.pool.stats()["jobs"]
        results = [None] * 8
        barrier = threading.Barrier(len(results))

        def fire(i):
            barrier.wait()
            results[i] = server.client().analyze_builtin(
                "queue-wrap", stage="final"
            )

        threads = [
            threading.Thread(target=fire, args=(i,))
            for i in range(len(results))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # However the arrivals interleave (join the in-flight future, or
        # hit the cache just after it fills), the pool ran exactly once.
        assert server.server.pool.stats()["jobs"] == jobs_before + 1
        docs = [r["result"] for r in results]
        assert all(doc == docs[0] for doc in docs)

    def test_repeated_rml_bodies_parse_once(self, threaded_server):
        from repro.obs.counters import counter_value

        server = threaded_server()
        client = server.client()
        before = counter_value("lang.parse_module")
        for _ in range(4):
            client.analyze_rml(RML, name="rml:m")
        # One parse computed the key/lint/module; the inline worker
        # reused the parsed module, and later identical bodies hit the
        # raw-body memo. 4 requests, 1 parse.
        assert counter_value("lang.parse_module") == before + 1


class TestWorkerPool:
    def test_recycles_after_quota(self):
        pool = WorkerPool(workers=1, recycle_after=2)
        try:
            job = CoverageJob(
                name="counter@partial", kind=KIND_BUILTIN, target="counter",
                stage="partial", config=EngineConfig(),
            )
            payload = payload_from_job(job)
            for _ in range(5):
                doc = pool.submit(payload).result(timeout=120)
                assert doc["status"] == "ok"
            stats = pool.stats()
            assert stats["jobs"] == 5
            # quota = 2 jobs/worker * 1 worker: recycled at jobs 3 and 5.
            assert stats["recycles"] == 2
        finally:
            pool.shutdown(wait=False)

    def test_inline_pool_runs_in_process(self):
        pool = WorkerPool(workers=0)
        try:
            assert pool.inline
            job = CoverageJob(
                name="counter@partial", kind=KIND_BUILTIN, target="counter",
                stage="partial", config=EngineConfig(),
            )
            doc = pool.submit(payload_from_job(job)).result(timeout=120)
            assert AnalysisResult.from_json(doc).status == "ok"
        finally:
            pool.shutdown(wait=False)
