"""Satellite guarantee: the suite thin client is a drop-in for local runs.

For every builtin target plus every ``examples/*.rml`` model, under both
transition-relation modes and both BDD backends, the server must return
reports byte-identical to local execution (timings excluded — they are
wall-clock, everything else is the contract).  A second remote pass over
the same matrix must be ≥90% cache hits as measured by ``/v1/stats``.

The server is module-scoped so the hit-rate test observes the cache the
identity tests populated — the same shape as a long-lived deployment.
"""

import pytest

from repro.engine import EngineConfig
from repro.suite.registry import default_jobs
from repro.suite.runner import run_jobs, run_jobs_via_server

CONFIGS = [
    pytest.param(
        EngineConfig(backend=backend, trans=trans),
        id=f"{backend}-{trans}",
    )
    for backend in ("dict", "array")
    for trans in ("mono", "partitioned")
]


@pytest.fixture(scope="module")
def matrix_server(tmp_path_factory):
    from .conftest import ThreadedServer
    from repro.serve.server import ServeOptions

    options = ServeOptions(
        host="127.0.0.1",
        port=0,
        workers=0,
        cache_dir=tmp_path_factory.mktemp("matrix") / "cache",
    )
    server = ThreadedServer(options).start()
    yield server
    server.stop()


def stripped(result) -> dict:
    doc = result.to_json()
    doc["seconds"] = doc["gc_seconds"] = 0.0
    return doc


@pytest.mark.parametrize("config", CONFIGS)
def test_remote_reports_are_byte_identical_to_local(matrix_server, config):
    jobs = default_jobs(rml_dir="examples", config=config)
    assert len(jobs) >= 10  # builtins + examples/*.rml: a real matrix
    local = run_jobs(jobs)
    remote = run_jobs_via_server(jobs, matrix_server.client(), max_workers=4)
    assert [stripped(r) for r in remote] == [stripped(r) for r in local]


def test_server_error_results_record_elapsed_seconds():
    """Per-job server errors must carry their wall-clock cost: suite
    totals and ``format_results`` time sum ``result.seconds``, and an
    unreachable server (above all, a connect timeout) is not free."""
    from repro.suite.registry import builtin_jobs

    jobs = builtin_jobs()[:2]
    # Reserved port, nothing listening: every job fails client-side.
    results = run_jobs_via_server(jobs, "http://127.0.0.1:9", max_workers=1)
    assert [r.status for r in results] == ["error", "error"]
    for result in results:
        assert result.seconds > 0.0


def test_second_remote_run_is_mostly_cache_hits(matrix_server):
    """Re-running the whole matrix against the warmed server must be
    ≥90% cache hits, measured through the public /v1/stats endpoint."""
    client = matrix_server.client()
    configs = [
        EngineConfig(backend=backend, trans=trans)
        for backend in ("dict", "array")
        for trans in ("mono", "partitioned")
    ]
    jobs = [
        job
        for config in configs
        for job in default_jobs(rml_dir="examples", config=config)
    ]
    before = client.stats()["counters"]
    results = run_jobs_via_server(jobs, client, max_workers=4)
    after = client.stats()["counters"]
    assert all(r.status in ("ok", "fail") for r in results)

    hits = after["serve.cache.hits"] - before["serve.cache.hits"]
    misses = after["serve.cache.misses"] - before["serve.cache.misses"]
    assert hits + misses == len(jobs)
    assert hits / (hits + misses) >= 0.9
