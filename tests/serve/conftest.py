"""Fixtures for the serve tests: a real server on a background thread.

``ThreadedServer`` runs an :class:`~repro.serve.server.AnalysisServer`
inside its own event loop on a daemon thread, bound to an ephemeral
port — tests exercise the genuine asyncio HTTP path through the real
:class:`~repro.serve.client.ServeClient`, not a mocked transport.

Inline workers (``workers=0``) keep every fixture single-process: fast,
fork-free, and the parse-reuse/counter assertions observe the server
process's own globals.
"""

import asyncio
import threading

import pytest

from repro.serve.client import ServeClient
from repro.serve.server import AnalysisServer, ServeOptions


class ThreadedServer:
    """An AnalysisServer running on its own loop in a daemon thread."""

    def __init__(self, options: ServeOptions):
        self.options = options
        self.server = None
        self._ready = threading.Event()
        self._stop = None
        self._loop = None
        self._failure = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            try:
                self.server = AnalysisServer(self.options)
                await self.server.start()
                self._loop = asyncio.get_running_loop()
                self._stop = asyncio.Event()
            except Exception as exc:  # surface in start() instead of hanging
                self._failure = exc
                self._ready.set()
                return
            self._ready.set()
            await self._stop.wait()
            await self.server.aclose()

        asyncio.run(main())

    def start(self) -> "ThreadedServer":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread did not come up")
        if self._failure is not None:
            raise self._failure
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed: stop() is idempotent
        self._thread.join(timeout=30)

    @property
    def url(self) -> str:
        return self.server.url

    def client(self, timeout: float = 60.0) -> ServeClient:
        return ServeClient(self.url, timeout=timeout)


@pytest.fixture
def threaded_server(tmp_path):
    """A per-test server factory; every server is stopped at teardown."""
    started = []

    def launch(**overrides) -> ThreadedServer:
        overrides.setdefault("host", "127.0.0.1")
        overrides.setdefault("port", 0)
        overrides.setdefault("workers", 0)
        if not overrides.pop("memory_cache_only", False):
            overrides.setdefault("cache_dir", tmp_path / "cache")
        else:
            overrides["memory_cache_only"] = True
        server = ThreadedServer(ServeOptions(**overrides)).start()
        started.append(server)
        return server

    yield launch
    for server in started:
        server.stop()
