"""Sustained mixed workload: 200 concurrent requests, bounded memory,
no stale answers.

A deterministic RNG interleaves valid builtins, valid RML (with
comment-noise variants that share a cache key), parse errors, malformed
JSON, bad configs, and oversized bodies, fired from a thread pool at a
server whose cache is deliberately tiny (so eviction churn happens mid
run).  Every response must be answered; every *valid* response must
equal the locally precomputed expected report for that model — an
eviction may cost a recompute, never a wrong or stale answer.
"""

import random
import threading

import pytest

from repro.engine import EngineConfig
from repro.errors import ServeError
from repro.suite.jobs import KIND_BUILTIN, KIND_RML, CoverageJob
from repro.suite.runner import execute_job

REQUESTS = 200
THREADS = 8
CACHE_ENTRIES = 4  # below the distinct-key count (8): forces eviction

BUILTINS = [
    ("counter", "partial"),
    ("counter", "full"),
    ("buffer-lo", "augmented"),
    ("queue-wrap", "final"),
]

RML_BASE = (
    "MODULE fuzz{n}\n"
    "VAR x : boolean;\n"
    "VAR y : boolean;\n"
    "ASSIGN next(x) := !x;\n"
    "ASSIGN next(y) := x;\n"
    "SPEC AG (x | !x);\n"
    "OBSERVED x;\n"
)

#: Comment/whitespace decorations — same model, same cache key.
NOISE = ["", "-- noise\n", "  \n-- more\n"]

BAD_PARSE = "MODULE broken\nVAR ; ;\n"


def stripped(doc: dict) -> dict:
    doc = dict(doc)
    doc["seconds"] = doc["gc_seconds"] = 0.0
    return doc


def rml_text(n: int, noise: str) -> str:
    return noise + RML_BASE.format(n=n)


@pytest.fixture(scope="module")
def expected():
    """Locally computed ground truth for every valid request shape."""
    truth = {}
    for target, stage in BUILTINS:
        job = CoverageJob(
            name=f"{target}@{stage}", kind=KIND_BUILTIN, target=target,
            stage=stage, config=EngineConfig(),
        )
        truth["builtin", target, stage] = stripped(execute_job(job).to_json())
    for n in range(4):
        for i, noise in enumerate(NOISE):
            job = CoverageJob(
                name=f"fuzz{n}", kind=KIND_RML, source=rml_text(n, noise),
                config=EngineConfig(),
            )
            truth["rml", n, i] = stripped(execute_job(job).to_json())
    return truth


def test_mixed_fuzz_workload_stays_correct_and_bounded(
    threaded_server, expected
):
    server = threaded_server(
        max_cache_entries=CACHE_ENTRIES, max_body=16384
    )
    rng = random.Random(0xC0FFEE)
    plan = []
    for _ in range(REQUESTS):
        roll = rng.random()
        if roll < 0.35:
            plan.append(("builtin", rng.choice(BUILTINS)))
        elif roll < 0.70:
            plan.append(("rml", (rng.randrange(4), rng.randrange(len(NOISE)))))
        elif roll < 0.80:
            plan.append(("parse-error", None))
        elif roll < 0.90:
            plan.append(("bad-config", None))
        elif roll < 0.95:
            plan.append(("bad-json", None))
        else:
            plan.append(("oversized", None))

    outcomes = [None] * len(plan)

    def fire(index, shape, detail):
        client = server.client(timeout=120)
        try:
            if shape == "builtin":
                target, stage = detail
                env = client.analyze_builtin(target, stage=stage)
                outcomes[index] = ("ok", ("builtin", target, stage), env)
            elif shape == "rml":
                n, i = detail
                env = client.analyze_rml(
                    rml_text(n, NOISE[i]), name=f"fuzz{n}"
                )
                outcomes[index] = ("ok", ("rml", n, i), env)
            elif shape == "parse-error":
                client.analyze_rml(BAD_PARSE)
            elif shape == "bad-config":
                client.analyze(
                    {"target": "counter", "config": {"trans": "bogus"}}
                )
            elif shape == "bad-json":
                from .test_server_errors import client_post_raw

                client_post_raw(client, b"** not json **")
            elif shape == "oversized":
                client.analyze({"rml": "-- pad\n" * 8192})
        except ServeError as exc:
            outcomes[index] = ("error", shape, exc)

    threads = []
    gate = threading.Semaphore(THREADS)

    def worker(index, shape, detail):
        with gate:
            fire(index, shape, detail)

    for index, (shape, detail) in enumerate(plan):
        t = threading.Thread(target=worker, args=(index, shape, detail))
        t.start()
        threads.append(t)
    for t in threads:
        t.join(timeout=600)

    # 1. Every request was answered — nothing hung, nothing dropped.
    assert all(outcome is not None for outcome in outcomes)

    # 2. Every valid answer matches local ground truth: eviction under
    # pressure may recompute, but can never serve a stale/wrong report.
    expected_status = {
        "parse-error": (422, "parse-error"),
        "bad-config": (422, "config-error"),
        "bad-json": (400, "bad-json"),
        "oversized": (413, "payload-too-large"),
    }
    for index, (kind, tag, value) in enumerate(outcomes):
        shape, detail = plan[index]
        if kind == "ok":
            assert stripped(value["result"]) == expected[tag], (index, tag)
        else:
            status, error_type = expected_status[shape]
            assert value.status == status, (index, shape, value)
            assert value.payload["error"]["type"] == error_type

    # 3. Memory stayed bounded: the LRU never exceeds its cap, and the
    # raw-body memo is bounded by construction (server-enforced).
    stats = server.client().stats()["counters"]
    assert stats["serve.cache.memory_entries"] <= max(CACHE_ENTRIES, 1)
    assert stats["serve.server.memo_entries"] <= 64
    assert stats["serve.cache.evictions"] > 0  # the cap actually bit
    assert server.server.pool.stats()["jobs"] >= 1
    assert server.client().health()["status"] == "ok"
