"""ResultCache: two tiers, bounded memory, versioned entries, degrade."""

import json

import pytest

from repro._version import __version__
from repro.obs.counters import counter_delta
from repro.serve.cache import ENTRY_SCHEMA, ResultCache, default_cache_dir


def result_doc(tag: str) -> dict:
    return {"name": tag, "status": "ok", "percentage": 100.0}


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("k1") is None
        cache.put("k1", result_doc("a"))
        assert cache.get("k1") == result_doc("a")
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["memory_hits"] == 1
        assert stats["stores"] == 1

    def test_lru_evicts_least_recently_used(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", result_doc("a"))
        cache.put("b", result_doc("b"))
        assert cache.get("a") is not None  # refresh a; b is now oldest
        cache.put("c", result_doc("c"))
        assert cache.stats()["evictions"] == 1
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_returned_results_are_isolated_copies(self):
        cache = ResultCache()
        cache.put("k", result_doc("a"))
        served = cache.get("k")
        served["lint"] = {"injected": True}  # the server's lint merge
        assert "lint" not in cache.get("k")

    def test_stored_results_are_isolated_from_caller_mutation(self):
        cache = ResultCache()
        doc = result_doc("a")
        cache.put("k", doc)
        doc["status"] = "mangled"
        assert cache.get("k")["status"] == "ok"

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_counts_mirror_into_global_registry(self):
        cache = ResultCache()
        with counter_delta("serve.cache.misses") as missed:
            with counter_delta("serve.cache.memory_hits") as hit:
                cache.get("nope")
                cache.put("yes", result_doc("a"))
                cache.get("yes")
        assert missed() == 1
        assert hit() == 1


class TestDiskTier:
    def test_entries_survive_a_new_instance(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put("k1", result_doc("a"))
        second = ResultCache(tmp_path)
        assert second.get("k1") == result_doc("a")
        assert second.stats()["disk_hits"] == 1

    def test_disk_hit_promotes_into_memory(self, tmp_path):
        ResultCache(tmp_path).put("k1", result_doc("a"))
        cache = ResultCache(tmp_path)
        cache.get("k1")
        cache.get("k1")
        stats = cache.stats()
        assert stats["disk_hits"] == 1
        assert stats["memory_hits"] == 1

    def test_entry_file_is_schema_tagged_json(self, tmp_path):
        ResultCache(tmp_path).put("k1", result_doc("a"))
        entry = json.loads((tmp_path / "k1.json").read_text())
        assert entry["schema"] == ENTRY_SCHEMA
        assert entry["engine"] == __version__
        assert entry["key"] == "k1"
        assert entry["result"] == result_doc("a")

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.put(f"k{i}", result_doc(str(i)))
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_engine_version_mismatch_self_invalidates(self, tmp_path):
        ResultCache(tmp_path, engine_version="0.0.1").put(
            "k1", result_doc("a")
        )
        cache = ResultCache(tmp_path)  # the running engine's version
        assert cache.get("k1") is None
        assert cache.stats()["invalidations"] == 1
        assert not (tmp_path / "k1.json").exists()

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.get("bad") is None
        assert cache.stats()["invalidations"] == 1
        assert not (tmp_path / "bad.json").exists()

    def test_wrong_schema_is_invalidated(self, tmp_path):
        (tmp_path / "k.json").write_text(
            json.dumps(
                {
                    "schema": "repro-cache-entry/v999",
                    "engine": __version__,
                    "key": "k",
                    "result": result_doc("a"),
                }
            )
        )
        cache = ResultCache(tmp_path)
        assert cache.get("k") is None
        assert cache.stats()["invalidations"] == 1


class TestDegrade:
    def test_unwritable_directory_degrades_to_memory_only(self, tmp_path):
        # The cache "directory" is a file: mkdir fails with an OSError
        # for any uid (chmod tricks don't bite when tests run as root).
        blocker = tmp_path / "blocker"
        blocker.write_text("occupied")
        cache = ResultCache(blocker / "cache")
        with pytest.warns(RuntimeWarning, match="memory-only"):
            cache.put("k1", result_doc("a"))
        assert cache.degraded
        # Requests keep working off the memory tier.
        assert cache.get("k1") == result_doc("a")
        cache.put("k2", result_doc("b"))
        assert cache.get("k2") == result_doc("b")

    def test_degrade_warns_exactly_once(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("occupied")
        cache = ResultCache(blocker / "cache")
        with pytest.warns(RuntimeWarning):
            cache.put("k1", result_doc("a"))
        import warnings

        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            cache.put("k2", result_doc("b"))
        assert [w for w in captured if w.category is RuntimeWarning] == []

    def test_default_cache_dir_is_user_scoped(self, monkeypatch, tmp_path):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"
        monkeypatch.delenv("XDG_CACHE_HOME")
        assert default_cache_dir().name == "repro"
