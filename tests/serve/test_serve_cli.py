"""``repro serve`` as a real subprocess: CLI flags, crash recovery,
signal-driven shutdown — the operational contract CI's serve-smoke job
re-checks on a live wheel.
"""

import json
import os
import re
import signal
import subprocess
import sys
import urllib.error
import urllib.request
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture
def serve_process(tmp_path):
    """A ``repro serve`` subprocess on an ephemeral port, with process
    workers and crash hooks enabled; yields (process, base_url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--test-hooks",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(REPO),
    )
    banner = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:\d+", banner)
    assert match, f"no listening banner in {banner!r}"
    yield proc, match.group(0)
    if proc.poll() is None:
        proc.kill()
        proc.wait(timeout=30)


def post(url: str, document) -> dict:
    data = json.dumps(document).encode()
    request = urllib.request.Request(
        url + "/v1/analyze", data=data,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read())


def get(url: str, route: str) -> dict:
    with urllib.request.urlopen(url + route, timeout=30) as response:
        return json.loads(response.read())


class TestServeSubprocess:
    def test_crash_then_respawn_then_sigterm(self, serve_process):
        proc, url = serve_process

        # 1. A healthy analysis through real worker processes.
        first = post(url, {"target": "counter", "stage": "full"})
        assert first["result"]["status"] == "ok"
        assert first["cached"] is False

        # 2. Kill a worker mid-job: one 500, structured.
        with pytest.raises(urllib.error.HTTPError) as info:
            post(url, {"kind": "__crash__"})
        assert info.value.code == 500
        error = json.loads(info.value.read())
        assert error["error"]["type"] == "worker-crash"

        # 3. The pool respawned: the next analysis succeeds, and the
        # earlier result is served from cache (state survived the crash).
        again = post(url, {"target": "counter", "stage": "full"})
        assert again["cached"] is True
        fresh = post(url, {"target": "counter", "stage": "partial"})
        assert fresh["result"]["status"] == "ok"
        counters = get(url, "/v1/stats")["counters"]
        assert counters["serve.workers.crashes"] == 1
        assert counters["serve.workers.crash_respawns"] == 1

        # 4. SIGTERM: clean exit 0 with the shutdown line.
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
        assert "shutting down" in proc.stdout.read()

    def test_run_and_suite_thin_clients(self, serve_process, tmp_path):
        proc, url = serve_process
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")

        run = subprocess.run(
            [
                sys.executable, "-m", "repro", "run",
                "examples/counter.rml", "--server", url,
            ],
            capture_output=True, text=True, env=env, cwd=str(REPO),
            timeout=300,
        )
        assert run.returncode == 0, run.stderr
        assert "100.00%" in run.stdout
        cached = subprocess.run(
            [
                sys.executable, "-m", "repro", "run",
                "examples/counter.rml", "--server", url,
            ],
            capture_output=True, text=True, env=env, cwd=str(REPO),
            timeout=300,
        )
        assert "[cached]" in cached.stdout

        report = tmp_path / "suite.json"
        suite = subprocess.run(
            [
                sys.executable, "-m", "repro", "suite", "examples",
                "--server", url, "--jobs", "4", "--json", str(report),
            ],
            capture_output=True, text=True, env=env, cwd=str(REPO),
            timeout=600,
        )
        assert suite.returncode == 0, suite.stderr
        document = json.loads(report.read_text())
        assert document["schema"] == "repro-coverage-suite/v2"
        assert document["totals"]["errors"] == 0

    def test_server_flag_rejects_local_only_output(self, serve_process):
        proc, url = serve_process
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        out = subprocess.run(
            [
                sys.executable, "-m", "repro", "run",
                "examples/counter.rml", "--server", url, "--traces", "2",
            ],
            capture_output=True, text=True, env=env, cwd=str(REPO),
            timeout=120,
        )
        assert out.returncode == 2
        assert "--server" in out.stderr

    def test_suite_fails_fast_when_server_is_down(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        out = subprocess.run(
            [
                sys.executable, "-m", "repro", "suite", "examples",
                "--server", f"http://127.0.0.1:{port}",
            ],
            capture_output=True, text=True, env=env, cwd=str(REPO),
            timeout=120,
        )
        assert out.returncode == 2
        assert "unreachable" in out.stderr
