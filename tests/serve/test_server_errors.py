"""The server's failure paths: every bad input gets a structured answer.

Protocol-level junk (bad JSON, oversized bodies, wrong routes) and
model-level junk (parse errors, bad configs) must each map to the
documented status code with a machine-readable error document — and the
server must stay healthy afterwards.
"""

import json
import socket

import pytest

from repro.errors import ServeError
from repro.serve.server import SERVE_SCHEMA

VALID_RML = (
    "MODULE m\n"
    "VAR x : boolean;\n"
    "ASSIGN next(x) := !x;\n"
    "SPEC AG (x | !x);\n"
    "OBSERVED x;\n"
)


def expect_serve_error(callable_, status, error_type):
    with pytest.raises(ServeError) as info:
        callable_()
    exc = info.value
    assert exc.status == status
    assert exc.payload["schema"] == SERVE_SCHEMA
    assert exc.payload["error"]["type"] == error_type
    return exc


def raw_request(server, data: bytes) -> int:
    """Fire raw bytes at the server, return the HTTP status answered."""
    with socket.create_connection(
        ("127.0.0.1", server.server.port), timeout=30
    ) as sock:
        sock.sendall(data)
        head = sock.recv(4096)
    return int(head.split(b" ", 2)[1])


class TestProtocolErrors:
    def test_malformed_json_is_400(self, threaded_server):
        client = threaded_server().client()
        expect_serve_error(
            lambda: client_post_raw(client, b"{not json"), 400, "bad-json"
        )

    def test_non_object_body_is_400(self, threaded_server):
        client = threaded_server().client()
        expect_serve_error(
            lambda: client.analyze(["a", "list"]), 400, "bad-request"
        )

    def test_both_rml_and_target_is_400(self, threaded_server):
        client = threaded_server().client()
        expect_serve_error(
            lambda: client.analyze({"rml": VALID_RML, "target": "counter"}),
            400,
            "bad-request",
        )

    def test_neither_rml_nor_target_is_400(self, threaded_server):
        client = threaded_server().client()
        expect_serve_error(lambda: client.analyze({}), 400, "bad-request")

    def test_oversized_body_is_413(self, threaded_server):
        server = threaded_server(max_body=1024)
        client = server.client()
        huge = {"rml": VALID_RML + "-- pad\n" * 4096}
        expect_serve_error(
            lambda: client.analyze(huge), 413, "payload-too-large"
        )
        # The connection-level rejection must not wedge the server.
        assert client.health()["status"] == "ok"

    def test_unknown_route_is_404(self, threaded_server):
        client = threaded_server().client()
        expect_serve_error(
            lambda: client._request("GET", "/v1/nothing"), 404, "not-found"
        )

    def test_wrong_method_is_405(self, threaded_server):
        client = threaded_server().client()
        expect_serve_error(
            lambda: client._request("POST", "/v1/health", body={}),
            405,
            "method-not-allowed",
        )
        expect_serve_error(
            lambda: client._request("GET", "/v1/analyze"),
            405,
            "method-not-allowed",
        )

    def test_missing_content_length_is_411(self, threaded_server):
        status = raw_request(
            threaded_server(),
            b"POST /v1/analyze HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        assert status == 411

    def test_garbage_request_line_is_400(self, threaded_server):
        status = raw_request(threaded_server(), b"NONSENSE\r\n\r\n")
        assert status == 400


class TestModelErrors:
    def test_parse_error_is_422_with_source_location(self, threaded_server):
        client = threaded_server().client()
        exc = expect_serve_error(
            lambda: client.analyze_rml(
                "MODULE broken\nVAR ; ;\n", path="broken.rml"
            ),
            422,
            "parse-error",
        )
        error = exc.payload["error"]
        assert error["line"] == 2
        assert error["column"] is not None
        assert error["filename"] == "broken.rml"

    def test_config_error_is_422(self, threaded_server):
        client = threaded_server().client()
        expect_serve_error(
            lambda: client.analyze(
                {"rml": VALID_RML, "config": {"trans": "hovercraft"}}
            ),
            422,
            "config-error",
        )

    def test_unknown_config_key_is_422(self, threaded_server):
        client = threaded_server().client()
        expect_serve_error(
            lambda: client.analyze(
                {"target": "counter", "config": {"warp_drive": True}}
            ),
            422,
            "config-error",
        )


class TestDegradedCache:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_unwritable_cache_dir_degrades_not_fails(
        self, threaded_server, tmp_path
    ):
        blocker = tmp_path / "blocker"
        blocker.write_text("occupied")
        server = threaded_server(cache_dir=blocker / "cache")
        client = server.client()
        cold = client.analyze_builtin("counter", stage="full")
        assert cold["result"]["status"] == "ok"
        warm = client.analyze_builtin("counter", stage="full")
        assert warm["cached"] is True  # memory tier still works
        stats = client.stats()["counters"]
        assert stats["serve.cache.degraded"] == 1


class TestClientTransport:
    def test_unreachable_server_raises_with_status_zero(self):
        from repro.serve.client import ServeClient

        # Bind-then-close guarantees a dead port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServeClient(f"http://127.0.0.1:{port}", timeout=5)
        with pytest.raises(ServeError) as info:
            client.health()
        assert info.value.status == 0

    def test_url_forms_are_normalised(self):
        from repro.serve.client import ServeClient

        assert ServeClient("http://localhost:9000").port == 9000
        assert ServeClient("localhost:9000").port == 9000
        assert ServeClient("http://example.test").port == 80
        with pytest.raises(ServeError):
            ServeClient("ftp://example.test")


def client_post_raw(client, raw: bytes):
    """POST raw (intentionally invalid) bytes through the client's host
    and port with a correct Content-Length."""
    from http.client import HTTPConnection

    connection = HTTPConnection(client.host, client.port, timeout=30)
    try:
        connection.request(
            "POST", "/v1/analyze", body=raw,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = json.loads(response.read())
        status = response.status
    finally:
        connection.close()
    raise ServeError(
        payload["error"]["message"], status=status, payload=payload
    )
