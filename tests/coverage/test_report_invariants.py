"""Property-based invariants of coverage reports and the estimator.

These pin down the algebraic structure the paper relies on: coverage of a
suite is the union of per-property coverage (monotone in the suite),
don't-cares only shrink the space, and Definition 4 is consistent with the
reported sets.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.coverage import CoverageEstimator
from repro.expr import parse_expr
from repro.mc import ExplicitModelChecker
from tests.strategies import acceptable_formulas, graphs

ATOMS = [
    parse_expr("p"),
    parse_expr("q"),
    parse_expr("!q"),
    parse_expr("p | q"),
    parse_expr("true"),
]


def formulas(depth):
    return acceptable_formulas(ATOMS, depth=depth)


def holding_suite(graph, candidate_formulas, limit=3):
    model = graph.to_model()
    checker = ExplicitModelChecker(model)
    suite = [f for f in candidate_formulas if checker.holds(f)]
    return suite[:limit]


@settings(max_examples=60, deadline=None)
@given(graphs(), st.lists(formulas(2), min_size=1, max_size=4))
def test_suite_coverage_is_union_of_property_coverage(graph, candidates):
    suite = holding_suite(graph, candidates)
    assume(suite)
    fsm = graph.to_fsm()
    est = CoverageEstimator(fsm)
    report = est.estimate(suite, observed="q", verify=False)
    union = fsm.empty_set()
    for prop in suite:
        union = union | (est.covered_set(prop, observed="q", verify=False)
                         & report.space)
    assert union == report.covered


@settings(max_examples=60, deadline=None)
@given(graphs(), st.lists(formulas(2), min_size=2, max_size=4))
def test_adding_properties_never_reduces_coverage(graph, candidates):
    suite = holding_suite(graph, candidates, limit=4)
    assume(len(suite) >= 2)
    fsm = graph.to_fsm()
    est = CoverageEstimator(fsm)
    smaller = est.estimate(suite[:-1], observed="q", verify=False)
    larger = est.estimate(suite, observed="q", verify=False)
    assert smaller.covered.subseteq(larger.covered)
    assert smaller.percentage <= larger.percentage + 1e-9


@settings(max_examples=60, deadline=None)
@given(graphs(), formulas(2), st.sampled_from(["p", "q", "p & q"]))
def test_dont_care_only_shrinks_space_and_uncovered(graph, formula, dc):
    model = graph.to_model()
    assume(ExplicitModelChecker(model).holds(formula))
    fsm = graph.to_fsm()
    est = CoverageEstimator(fsm)
    plain = est.estimate([formula], observed="q", verify=False)
    excused = est.estimate([formula], observed="q", verify=False, dont_care=dc)
    assert excused.space.subseteq(plain.space)
    assert excused.uncovered.subseteq(plain.uncovered)


@settings(max_examples=60, deadline=None)
@given(graphs(), formulas(2))
def test_definition4_percentage_consistent(graph, formula):
    model = graph.to_model()
    assume(ExplicitModelChecker(model).holds(formula))
    fsm = graph.to_fsm()
    est = CoverageEstimator(fsm)
    report = est.estimate([formula], observed="q", verify=False)
    assert report.covered.subseteq(report.space)
    expected = (
        100.0 * report.covered_count / report.space_count
        if report.space_count
        else 100.0
    )
    assert abs(report.percentage - expected) < 1e-9
    assert report.is_fully_covered() == (report.covered == report.space)


@settings(max_examples=40, deadline=None)
@given(graphs(), formulas(2))
def test_covered_set_independent_of_start_representation(graph, formula):
    """covered_set(start=init) must equal the default-start call."""
    model = graph.to_model()
    assume(ExplicitModelChecker(model).holds(formula))
    fsm = graph.to_fsm()
    est = CoverageEstimator(fsm)
    default = est.covered_set(formula, observed="q", verify=False)
    explicit_start = est.covered_set(
        formula, observed="q", start=fsm.init, verify=False
    )
    assert default == explicit_start
