"""Word-valued observed signals in the Definition-3 mutation oracle.

The oracle used to pass word names (e.g. ``"count"``) straight to
``ExplicitModel.signal_vector``, whose ``.get(name, False)`` silently
produced an all-False phantom labelling: every flip was a no-op on the
atoms that actually matter and the oracle returned garbage without a
whisper.  Words must expand to their bits exactly like
``CoverageEstimator._observed_list`` does, and ``signal_vector`` must
raise on names the labelling does not contain.
"""

import pytest

from repro.circuits import build_counter
from repro.coverage import CoverageEstimator, mutation_covered
from repro.ctl import parse_ctl
from repro.errors import ModelError
from repro.fsm import enumerate_model
from repro.mc import ModelChecker


@pytest.fixture(scope="module")
def counter_pair():
    fsm = build_counter()
    return fsm, enumerate_model(fsm)


class TestSignalVectorValidation:
    def test_known_signal_ok(self, counter_pair):
        _, model = counter_pair
        vector = model.signal_vector("count0")
        assert len(vector) == model.n

    def test_unknown_signal_raises(self, counter_pair):
        _, model = counter_pair
        with pytest.raises(ModelError, match="unknown signal 'nonsense'"):
            model.signal_vector("nonsense")

    def test_word_name_raises_and_names_the_bits(self, counter_pair):
        # The word itself is not a per-state label — only its bits are.
        _, model = counter_pair
        with pytest.raises(ModelError, match="bits of word 'count'"):
            model.signal_vector("count")


class TestWordObservedExpansion:
    def test_word_equals_explicit_bit_list(self, counter_pair):
        _, model = counter_pair
        formula = parse_ctl("AG (reset -> AX count = 0)")
        via_word = mutation_covered(model, formula, "count")
        via_bits = mutation_covered(model, formula, list(model.words["count"]))
        assert via_word == via_bits
        # The reset property genuinely covers something: the all-False
        # phantom labelling of the old bug produced exactly this set being
        # wrong/empty for word observables.
        assert via_word

    def test_word_oracle_matches_symbolic_estimator(self, counter_pair):
        """End-to-end: Definition 3 with a word observable agrees with the
        Table-1 estimator (which always expanded words correctly)."""
        fsm, model = counter_pair
        formula = parse_ctl("AG (reset -> AX count = 0)")
        checker = ModelChecker(fsm)
        estimator = CoverageEstimator(fsm, checker=checker)
        covered_set = estimator.covered_set(formula, "count")
        symbolic = set()
        for state in fsm.iter_states(covered_set & fsm.reachable()):
            value = tuple(bool(state[v]) for v in fsm.state_vars)
            symbolic.add(value)
        oracle = mutation_covered(model, formula, "count")
        oracle_states = set()
        for index in oracle:
            values = model.signal_values[index]
            oracle_states.add(
                tuple(bool(values[v]) for v in fsm.state_vars)
            )
        assert oracle_states == symbolic

    def test_mixed_word_and_bit_names(self, counter_pair):
        _, model = counter_pair
        formula = parse_ctl("AG (reset -> AX count = 0)")
        mixed = mutation_covered(model, formula, ["count", "count0"])
        word_only = mutation_covered(model, formula, "count")
        assert mixed == word_only  # count0 is already among count's bits

    def test_unknown_observed_raises(self, counter_pair):
        _, model = counter_pair
        formula = parse_ctl("AG (reset -> AX count = 0)")
        with pytest.raises(ModelError, match="unknown signal"):
            mutation_covered(model, formula, "bogus")
