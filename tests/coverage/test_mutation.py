"""Unit tests for the Definition-3 mutation oracle module itself."""

import pytest

from repro.circuits import figure1_graph, figure2_graph
from repro.coverage import (
    mutation_covered,
    mutation_covered_raw,
    reachable_indices,
)
from repro.ctl import parse_ctl
from repro.errors import VerificationError
from repro.fsm import ExplicitGraph


class TestReachableIndices:
    def test_chain(self):
        model = figure1_graph().to_model()
        assert reachable_indices(model) == {0, 1, 2, 3}

    def test_unreachable_states_excluded(self):
        g = ExplicitGraph("island", signals=["p"])
        g.state("a", labels={"p"}, initial=True)
        g.state("island", labels={"p"})
        g.edge("a", "a")
        g.edge("island", "island")
        model = g.to_model()
        assert reachable_indices(model) == {0}


class TestVerifyGate:
    def test_failing_property_raises(self):
        model = figure1_graph().to_model()
        with pytest.raises(VerificationError):
            mutation_covered(model, parse_ctl("AG q"), "q")

    def test_raw_variant_also_gated(self):
        model = figure1_graph().to_model()
        with pytest.raises(VerificationError):
            mutation_covered_raw(model, parse_ctl("AG q"), "q")

    def test_verify_false_bypasses(self):
        model = figure1_graph().to_model()
        covered = mutation_covered(
            model, parse_ctl("AG q"), "q", verify=False
        )
        assert isinstance(covered, set)


class TestCandidates:
    def test_candidate_restriction(self):
        model = figure2_graph().to_model()
        full = mutation_covered(model, parse_ctl("A [p1 U q]"), "q")
        assert full == {2}  # state s2
        restricted = mutation_covered(
            model, parse_ctl("A [p1 U q]"), "q", candidates=[0, 1]
        )
        assert restricted == set()

    def test_unreachable_states_never_covered(self):
        g = ExplicitGraph("island", signals=["q"])
        g.state("a", labels={"q"}, initial=True)
        g.state("island", labels={"q"})
        g.edge("a", "a")
        g.edge("island", "island")
        model = g.to_model()
        covered = mutation_covered(
            model, parse_ctl("AG q"), "q", candidates=range(model.n)
        )
        # Flipping q at the unreachable island cannot falsify AG q.
        assert covered == {0}


class TestMultiObserved:
    def test_union_of_signals(self):
        model = figure2_graph().to_model()
        prop = parse_ctl("A [p1 U q]")
        both = mutation_covered(model, prop, ["p1", "q"])
        p1_only = mutation_covered(model, prop, "p1")
        q_only = mutation_covered(model, prop, "q")
        assert both == p1_only | q_only


class TestRawVsTransformed:
    def test_transformed_is_superset_on_figure2(self):
        model = figure2_graph().to_model()
        prop = parse_ctl("A [p1 U q]")
        raw = mutation_covered_raw(model, prop, "q")
        transformed = mutation_covered(model, prop, "q")
        assert raw <= transformed
        assert raw == set()
        assert transformed == {2}

    def test_identical_for_pure_ag_atom(self):
        # For AG b the transformation only renames q; raw and transformed
        # coverage coincide.
        g = ExplicitGraph("simple", signals=["q"])
        g.state("a", labels={"q"}, initial=True)
        g.state("b", labels={"q"})
        g.edge("a", "b")
        g.edge("b", "a")
        model = g.to_model()
        prop = parse_ctl("AG q")
        assert mutation_covered_raw(model, prop, "q") == mutation_covered(
            model, prop, "q"
        )
