"""Unit tests for the CoverageEstimator surface: reports, options, errors."""

import pytest

from repro.coverage import (
    CoverageEstimator,
    format_uncovered_traces,
    trace_to_uncovered,
)
from repro.ctl import parse_ctl
from repro.errors import CoverageError, NotInSubsetError, VerificationError
from repro.expr import Var, parse_expr
from repro.expr.arith import increment_mod_bits, mux
from repro.fsm import CircuitBuilder
from repro.mc import ModelChecker


def build_counter(modulus=4, with_stall=True):
    """A mod-N counter with optional stall input."""
    import math

    width = max(1, math.ceil(math.log2(modulus)))
    b = CircuitBuilder(f"mod{modulus}")
    if with_stall:
        b.input("stall")
    bits = [f"c{i}" for i in range(width)]
    nxt = increment_mod_bits(bits, modulus)
    for i, bit in enumerate(bits):
        if with_stall:
            b.latch(bit, init=False, next_=mux(Var("stall"), Var(bit), nxt[i]))
        else:
            b.latch(bit, init=False, next_=nxt[i])
    b.word("c", bits)
    return b.build()


def counter_suite(modulus=4):
    """Complete per-value increment + stall-hold properties."""
    props = []
    for value in range(modulus):
        succ = (value + 1) % modulus
        props.append(parse_ctl(f"AG (!stall & c = {value} -> AX c = {succ})"))
        props.append(parse_ctl(f"AG (stall & c = {value} -> AX c = {value})"))
    return props


class TestFullCoverage:
    def test_complete_suite_reaches_100(self):
        fsm = build_counter()
        report = CoverageEstimator(fsm).estimate(counter_suite(), observed="c")
        assert report.is_fully_covered()
        assert report.percentage == 100.0

    def test_word_observed_expands_to_bits(self):
        fsm = build_counter()
        est = CoverageEstimator(fsm)
        by_word = est.covered_set(counter_suite()[0], observed="c")
        by_bits = est.covered_set(counter_suite()[0], observed=["c0", "c1"])
        assert by_word == by_bits

    def test_report_space_is_reachable(self):
        fsm = build_counter()
        report = CoverageEstimator(fsm).estimate(counter_suite(), observed="c")
        # 4 counter values x 2 stall values.
        assert report.space_count == 8


class TestPartialCoverage:
    def test_dropping_a_case_leaves_a_hole(self):
        fsm = build_counter()
        props = counter_suite()
        # Coverage is state-based (paper Section 6): a state is covered if
        # ANY property checks the observed signal there, so to open a hole at
        # c=3 every property whose consequent checks c=3 must go — both the
        # increment into 3 and the stall-hold at 3.
        partial = [p for p in props if "AX c == 3" not in str(p)]
        report = CoverageEstimator(fsm).estimate(partial, observed="c")
        assert not report.is_fully_covered()
        assert 0 < report.percentage < 100.0
        assert report.uncovered == fsm.symbolize(parse_expr("c = 3"))

    def test_uncovered_states_listed(self):
        fsm = build_counter()
        partial = counter_suite()[:2]  # only c=0 properties
        report = CoverageEstimator(fsm).estimate(partial, observed="c")
        holes = report.uncovered_states(limit=100)
        assert holes
        assert len(holes) == report.fsm.count_states(report.uncovered)

    def test_uncovered_cubes_cover_holes(self):
        fsm = build_counter()
        partial = counter_suite()[:2]
        report = CoverageEstimator(fsm).estimate(partial, observed="c")
        cubes = report.uncovered_cubes(limit=100)
        assert cubes
        # Every explicit uncovered state matches at least one cube.
        for state in report.uncovered_states(limit=100):
            assert any(
                all(state[k] == v for k, v in cube.items()) for cube in cubes
            )

    def test_per_property_union_is_total(self):
        fsm = build_counter()
        report = CoverageEstimator(fsm).estimate(counter_suite(), observed="c")
        union = fsm.empty_set()
        for prop in report.per_property:
            union = union | prop.covered
        assert union == report.covered

    def test_summary_mentions_percentage(self):
        fsm = build_counter()
        report = CoverageEstimator(fsm).estimate(
            counter_suite()[:2], observed="c"
        )
        text = report.summary()
        assert "%" in text
        assert "uncovered" in text


class TestTraces:
    def test_trace_to_uncovered_reaches_a_hole(self):
        fsm = build_counter()
        report = CoverageEstimator(fsm).estimate(
            counter_suite()[:2], observed="c"
        )
        trace = trace_to_uncovered(report)
        assert trace is not None
        last = fsm.state_cube(trace[-1])
        assert last.subseteq(report.uncovered)

    def test_trace_none_when_fully_covered(self):
        fsm = build_counter()
        report = CoverageEstimator(fsm).estimate(counter_suite(), observed="c")
        assert trace_to_uncovered(report) is None

    def test_format_uncovered_traces(self):
        fsm = build_counter()
        report = CoverageEstimator(fsm).estimate(
            counter_suite()[:2], observed="c"
        )
        text = format_uncovered_traces(report, count=2)
        assert "trace to uncovered state #1" in text

    def test_format_full_coverage(self):
        fsm = build_counter()
        report = CoverageEstimator(fsm).estimate(counter_suite(), observed="c")
        assert "full coverage" in format_uncovered_traces(report)


class TestDontCares:
    def test_dont_care_shrinks_space(self):
        fsm = build_counter()
        est = CoverageEstimator(fsm)
        full = est.estimate(counter_suite(), observed="c")
        restricted = est.estimate(
            counter_suite(), observed="c", dont_care="c = 3"
        )
        assert restricted.space_count == full.space_count - 2  # stall free

    def test_dont_care_lifts_coverage(self):
        fsm = build_counter()
        est = CoverageEstimator(fsm)
        # Without any property checking the counter at 3, states c=3 are
        # uncovered; if the user declares c=3 don't-care, coverage returns
        # to 100%.
        partial = [
            p for p in counter_suite() if "AX c == 3" not in str(p)
        ]
        with_hole = est.estimate(partial, observed="c")
        assert not with_hole.is_fully_covered()
        assert with_hole.uncovered.subseteq(fsm.symbolize(parse_expr("c = 3")))
        excused = est.estimate(partial, observed="c", dont_care="c = 3")
        assert excused.is_fully_covered()

    def test_dont_care_accepts_expr_and_function(self):
        fsm = build_counter()
        est = CoverageEstimator(fsm)
        by_str = est.coverage_space("c = 3")
        by_expr = est.coverage_space(parse_expr("c = 3"))
        by_fn = est.coverage_space(fsm.symbolize(parse_expr("c = 3")))
        assert by_str == by_expr == by_fn

    def test_bad_dont_care_type(self):
        fsm = build_counter()
        with pytest.raises(CoverageError):
            CoverageEstimator(fsm).coverage_space(42)


class TestErrors:
    def test_failing_property_raises(self):
        fsm = build_counter()
        with pytest.raises(VerificationError):
            CoverageEstimator(fsm).covered_set(
                parse_ctl("AG (c = 0 -> AX c = 1)"), observed="c"
            )  # fails when stalled

    def test_verify_false_skips_the_check(self):
        fsm = build_counter()
        covered = CoverageEstimator(fsm).covered_set(
            parse_ctl("AG (c = 0 -> AX c = 1)"), observed="c", verify=False
        )
        assert not covered.is_false()

    def test_unknown_observed_signal(self):
        fsm = build_counter()
        with pytest.raises(CoverageError):
            CoverageEstimator(fsm).covered_set(
                parse_ctl("AG c = 0"), observed="ghost", verify=False
            )

    def test_empty_observed_list(self):
        fsm = build_counter()
        with pytest.raises(CoverageError):
            CoverageEstimator(fsm).covered_set(
                parse_ctl("AG c != 5"), observed=[], verify=False
            )

    def test_formula_outside_subset_rejected(self):
        fsm = build_counter()
        with pytest.raises(NotInSubsetError):
            CoverageEstimator(fsm).covered_set(
                parse_ctl("EF c = 3"), observed="c", verify=False
            )

    def test_checker_for_other_fsm_rejected(self):
        fsm1 = build_counter()
        fsm2 = build_counter(modulus=2)
        with pytest.raises(CoverageError):
            CoverageEstimator(fsm1, checker=ModelChecker(fsm2))


class TestCheckerSharing:
    def test_shared_checker_reuses_sat_sets(self):
        """Paper Section 3: results memoised during verification are reused
        during coverage estimation.

        Two identical machines in separate managers: on the first, the
        properties are verified before estimating with the *same* checker;
        on the second, estimation starts cold.  The shared-checker
        estimation must create fewer BDD nodes than the cold one.
        """
        props = counter_suite()

        fsm_shared = build_counter()
        checker = ModelChecker(fsm_shared)
        for p in props:
            assert checker.holds(p)
        nodes_before = fsm_shared.manager.created_nodes
        report = CoverageEstimator(fsm_shared, checker=checker).estimate(
            props, observed="c", verify=True
        )
        shared_cost = fsm_shared.manager.created_nodes - nodes_before
        assert report.is_fully_covered()

        fsm_cold = build_counter()
        nodes_before = fsm_cold.manager.created_nodes
        CoverageEstimator(fsm_cold).estimate(props, observed="c", verify=True)
        cold_cost = fsm_cold.manager.created_nodes - nodes_before

        assert shared_cost < cold_cost
