"""Empirical validation of the paper's Correctness Theorem.

The theorem: the Table 1 recursion (symbolic, on the original formula)
computes exactly the Definition-3 covered set of the observability-
transformed formula.  We check it by brute force on random Kripke
structures and random formulas from the acceptable ACTL subset, with and
without fairness constraints — the symbolic estimator and the dual-FSM
mutation oracle must produce identical covered sets.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.coverage import CoverageEstimator, mutation_covered
from repro.expr import parse_expr
from repro.mc import ExplicitModelChecker
from tests.strategies import LABELS, acceptable_formulas, graphs

ATOMS = [
    parse_expr("p"),
    parse_expr("q"),
    parse_expr("!q"),
    parse_expr("p & q"),
    parse_expr("p | q"),
    parse_expr("true"),
]

FORMULA = acceptable_formulas(ATOMS, depth=3)


def _names(model, indices):
    return {model.state_names[i] for i in indices}


@settings(max_examples=150, deadline=None)
@given(graphs(), FORMULA, st.sampled_from(LABELS))
def test_estimator_equals_mutation_oracle(graph, formula, observed):
    model = graph.to_model()
    # Coverage is only defined for satisfied properties.
    assume(ExplicitModelChecker(model).holds(formula))

    oracle = mutation_covered(model, formula, observed, verify=False)

    fsm = graph.to_fsm()
    covered = CoverageEstimator(fsm).covered_set(
        formula, observed=observed, verify=False
    )
    symbolic_names = graph.set_to_states(fsm, covered)
    # The oracle tests reachable states only; the estimator starts from the
    # initial states so it cannot mark unreachable ones either.
    assert symbolic_names == _names(model, oracle), f"disagree on {formula}"


@settings(max_examples=80, deadline=None)
@given(graphs(max_states=4), acceptable_formulas(ATOMS, depth=2),
       st.sampled_from(LABELS), st.sampled_from(LABELS))
def test_estimator_equals_oracle_under_fairness(graph, formula, observed, fair):
    model = graph.to_model()
    fair_expr = parse_expr(fair)
    assume(ExplicitModelChecker(model, fairness=[fair_expr]).holds(formula))

    oracle = mutation_covered(
        model, formula, observed, fairness=[fair_expr], verify=False
    )

    fsm = graph.to_fsm()
    fsm.fairness = [fsm.signal(fair)]
    covered = CoverageEstimator(fsm).covered_set(
        formula, observed=observed, verify=False
    )
    symbolic_names = graph.set_to_states(fsm, covered)
    assert symbolic_names == _names(model, oracle), (
        f"fairness disagree on {formula}"
    )


@settings(max_examples=60, deadline=None)
@given(graphs(), FORMULA)
def test_multi_observed_is_union(graph, formula):
    model = graph.to_model()
    assume(ExplicitModelChecker(model).holds(formula))
    fsm = graph.to_fsm()
    est = CoverageEstimator(fsm)
    both = est.covered_set(formula, observed=["p", "q"], verify=False)
    p_only = est.covered_set(formula, observed="p", verify=False)
    q_only = est.covered_set(formula, observed="q", verify=False)
    assert both == (p_only | q_only)


@settings(max_examples=60, deadline=None)
@given(graphs(), FORMULA, st.sampled_from(LABELS))
def test_covered_set_within_reachable(graph, formula, observed):
    model = graph.to_model()
    assume(ExplicitModelChecker(model).holds(formula))
    fsm = graph.to_fsm()
    covered = CoverageEstimator(fsm).covered_set(
        formula, observed=observed, verify=False
    )
    assert covered.subseteq(fsm.reachable())


@settings(max_examples=40, deadline=None)
@given(graphs(), FORMULA, st.sampled_from(LABELS))
def test_minimality_flipping_uncovered_preserves_property(
    graph, formula, observed
):
    """First covered-set characteristic (Section 2): flipping the observed
    signal outside the covered set must keep the transformed property true."""
    from repro.coverage.mutation import reachable_indices

    model = graph.to_model()
    assume(ExplicitModelChecker(model).holds(formula))
    oracle = mutation_covered(model, formula, observed, verify=False)
    fsm = graph.to_fsm()
    covered = CoverageEstimator(fsm).covered_set(
        formula, observed=observed, verify=False
    )
    uncovered_reachable = reachable_indices(model) - oracle
    # By oracle construction flipping there keeps the property; the symbolic
    # set must not contain any of those states.
    symbolic_names = graph.set_to_states(fsm, covered)
    for index in uncovered_reachable:
        assert model.state_names[index] not in symbolic_names
