"""The paper's Figures 1-3 as literal graphs, checked end to end.

* Figure 1 — the covered state of ``AG (p1 -> AX AX q)``.
* Figure 2 — ``A[p1 U q]``: raw Definition 3 yields zero coverage; the
  observability transformation marks the first-reached q state.
* Figure 3 — the ``traverse`` / ``firstreached`` sets of ``A[f1 U f2]``.
"""

from repro.coverage import (
    CoverageEstimator,
    firstreached,
    mutation_covered,
    mutation_covered_raw,
    traverse,
)
from repro.ctl import parse_ctl
from repro.fsm import ExplicitGraph
from repro.mc import ModelChecker


def figure1_graph():
    """AG(p1 -> AX AX q): initial p1 state, the state two steps later is
    covered; other q states are not."""
    g = ExplicitGraph("figure1", signals=["p1", "q"])
    g.state("init", labels={"p1"}, initial=True)
    g.state("mid", labels=set())
    g.state("marked", labels={"q"})       # the covered state of the figure
    g.state("other_q", labels={"q"})      # q elsewhere: not covered
    g.edge("init", "mid")
    g.edge("mid", "marked")
    g.edge("marked", "other_q")
    g.edge("other_q", "other_q")
    return g


def figure2_graph():
    """A[p1 U q] along a chain where the first q state also satisfies p1 and
    a later state carries q too (the paper's zero-coverage example)."""
    g = ExplicitGraph("figure2", signals=["p1", "q"])
    g.state("s0", labels={"p1"}, initial=True)
    g.state("s1", labels={"p1"})
    g.state("s2", labels={"p1", "q"})     # first q: intuitively covered
    g.state("s3", labels={"q"})
    g.edge("s0", "s1")
    g.edge("s1", "s2")
    g.edge("s2", "s3")
    g.edge("s3", "s3")
    return g


def figure3_graph():
    """Two branches of f1 states leading to f2 states, then a sink."""
    g = ExplicitGraph("figure3", signals=["f1", "f2"])
    g.state("a", labels={"f1"}, initial=True)
    g.state("b", labels={"f1"})
    g.state("c", labels={"f1"})
    g.state("d", labels={"f2"})
    g.state("e", labels={"f2"})
    g.state("sink", labels=set())
    g.edge("a", "b")
    g.edge("a", "c")
    g.edge("b", "d")
    g.edge("c", "e")
    g.edge("d", "sink")
    g.edge("e", "sink")
    g.edge("sink", "sink")
    return g


class TestFigure1:
    FORMULA = "AG (p1 -> AX AX q)"

    def test_property_holds(self):
        g = figure1_graph()
        assert ModelChecker(g.to_fsm()).holds(parse_ctl(self.FORMULA))

    def test_symbolic_covered_set_is_the_marked_state(self):
        g = figure1_graph()
        fsm = g.to_fsm()
        estimator = CoverageEstimator(fsm)
        covered = estimator.covered_set(parse_ctl(self.FORMULA), observed="q")
        assert g.set_to_states(fsm, covered) == {"marked"}

    def test_mutation_oracle_agrees(self):
        g = figure1_graph()
        model = g.to_model()
        covered = mutation_covered(model, parse_ctl(self.FORMULA), "q")
        names = {model.state_names[i] for i in covered}
        assert names == {"marked"}

    def test_other_q_state_is_not_covered(self):
        g = figure1_graph()
        fsm = g.to_fsm()
        covered = CoverageEstimator(fsm).covered_set(
            parse_ctl(self.FORMULA), observed="q"
        )
        assert "other_q" not in g.set_to_states(fsm, covered)

    def test_coverage_percentage(self):
        g = figure1_graph()
        fsm = g.to_fsm()
        report = CoverageEstimator(fsm).estimate(
            [parse_ctl(self.FORMULA)], observed="q"
        )
        # 1 covered state of 4 reachable.
        assert report.space_count == 4
        assert report.covered_count == 1
        assert abs(report.percentage - 25.0) < 1e-9


class TestFigure2:
    FORMULA = "A [p1 U q]"

    def test_property_holds(self):
        g = figure2_graph()
        assert ModelChecker(g.to_fsm()).holds(parse_ctl(self.FORMULA))

    def test_raw_definition3_coverage_is_zero(self):
        # The paper: "none of the states on this path will be considered
        # covered by the definition. Thus the coverage for this property
        # will be zero."
        g = figure2_graph()
        model = g.to_model()
        covered = mutation_covered_raw(model, parse_ctl(self.FORMULA), "q")
        assert covered == set()

    def test_transformed_coverage_marks_first_q_state(self):
        g = figure2_graph()
        model = g.to_model()
        covered = mutation_covered(model, parse_ctl(self.FORMULA), "q")
        names = {model.state_names[i] for i in covered}
        assert names == {"s2"}

    def test_symbolic_estimator_matches_transformed_semantics(self):
        g = figure2_graph()
        fsm = g.to_fsm()
        covered = CoverageEstimator(fsm).covered_set(
            parse_ctl(self.FORMULA), observed="q"
        )
        assert g.set_to_states(fsm, covered) == {"s2"}

    def test_p1_coverage_also_intuitive(self):
        # With p1 observed, the prefix states are covered via the left arm.
        g = figure2_graph()
        fsm = g.to_fsm()
        covered = CoverageEstimator(fsm).covered_set(
            parse_ctl(self.FORMULA), observed="p1"
        )
        model = g.to_model()
        oracle = mutation_covered(model, parse_ctl(self.FORMULA), "p1")
        assert g.set_to_states(fsm, covered) == {
            model.state_names[i] for i in oracle
        }


class TestFigure3:
    def test_traverse_set(self):
        g = figure3_graph()
        fsm = g.to_fsm()
        mc = ModelChecker(fsm)
        t_f1 = mc.sat(parse_ctl("f1"))
        t_f2 = mc.sat(parse_ctl("f2"))
        got = traverse(fsm, fsm.init, t_f1, t_f2)
        assert g.set_to_states(fsm, got) == {"a", "b", "c"}

    def test_firstreached_set(self):
        g = figure3_graph()
        fsm = g.to_fsm()
        mc = ModelChecker(fsm)
        t_f2 = mc.sat(parse_ctl("f2"))
        got = firstreached(fsm, fsm.init, t_f2)
        assert g.set_to_states(fsm, got) == {"d", "e"}

    def test_firstreached_stops_at_first_hit(self):
        # Extend the graph: a q state *behind* another q state must not be
        # first-reached.
        g = ExplicitGraph("chain", signals=["f2"])
        g.state("x", initial=True)
        g.state("y", labels={"f2"})
        g.state("z", labels={"f2"})
        g.edge("x", "y")
        g.edge("y", "z")
        g.edge("z", "z")
        fsm = g.to_fsm()
        t_f2 = fsm.signal("f2")
        got = firstreached(fsm, fsm.init, t_f2)
        assert g.set_to_states(fsm, got) == {"y"}

    def test_traverse_does_not_escape_f1(self):
        # f1 broken by a gap: traversal must stop at the gap.
        g = ExplicitGraph("gap", signals=["f1", "f2"])
        g.state("a", labels={"f1"}, initial=True)
        g.state("gap", labels=set())
        g.state("b", labels={"f1"})
        g.state("end", labels={"f2"})
        g.edge("a", "gap")
        g.edge("gap", "b")
        g.edge("b", "end")
        g.edge("end", "end")
        fsm = g.to_fsm()
        got = traverse(fsm, fsm.init, fsm.signal("f1"), fsm.signal("f2"))
        assert g.set_to_states(fsm, got) == {"a"}

    def test_start_state_already_satisfying_f2(self):
        g = ExplicitGraph("immediate", signals=["f1", "f2"])
        g.state("a", labels={"f2"}, initial=True)
        g.edge("a", "a")
        fsm = g.to_fsm()
        fr = firstreached(fsm, fsm.init, fsm.signal("f2"))
        tv = traverse(fsm, fsm.init, fsm.signal("f1"), fsm.signal("f2"))
        assert g.set_to_states(fsm, fr) == {"a"}
        assert g.set_to_states(fsm, tv) == set()
