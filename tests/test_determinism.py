"""Output determinism under ``PYTHONHASHSEED`` variation.

The differential oracle compares engine outputs byte for byte, and the
fuzz harness promises that a seed line reproduces a finding exactly — both
are sound only if nothing in the reporting or trace pipeline leaks Python
hash ordering.  These tests run the same jobs in subprocesses with
different hash seeds and diff the outputs (timing fields normalised).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
HASH_SEEDS = ("0", "424242")


def _run(args, hash_seed, cwd=ROOT):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=cwd,
    )
    return proc


def _strip_timings(data):
    if isinstance(data, dict):
        return {
            k: _strip_timings(v)
            for k, v in data.items()
            if k not in ("seconds", "gc_seconds")
        }
    if isinstance(data, list):
        return [_strip_timings(v) for v in data]
    return data


class TestHashSeedInvariance:
    def test_target_report_with_traces_is_stable(self):
        outs = []
        for hs in HASH_SEEDS:
            proc = _run(["counter", "--stage", "partial", "--traces", "2"], hs)
            assert proc.returncode == 0, proc.stderr
            outs.append(proc.stdout)
        assert outs[0] == outs[1]
        assert "trace to uncovered state" in outs[0]

    def test_rml_run_with_traces_is_stable(self):
        outs = []
        for hs in HASH_SEEDS:
            proc = _run(
                ["run", "examples/arbiter.rml", "--traces", "2"], hs
            )
            assert proc.returncode == 0, proc.stderr
            outs.append(proc.stdout)
        assert outs[0] == outs[1]

    def test_suite_json_is_stable(self, tmp_path):
        reports = []
        for hs in HASH_SEEDS:
            out = tmp_path / f"suite-{hs}.json"
            proc = _run(
                ["suite", "tests/corpus", "--no-builtins",
                 "--json", str(out)],
                hs,
            )
            assert proc.returncode == 0, proc.stderr
            reports.append(_strip_timings(json.loads(out.read_text())))
        assert reports[0] == reports[1]

    def test_fuzz_report_is_stable(self, tmp_path):
        reports = []
        for hs in HASH_SEEDS:
            out = tmp_path / f"fuzz-{hs}.json"
            proc = _run(
                ["fuzz", "--budget", "3", "--seed", "5",
                 "--json", str(out), "--corpus", str(tmp_path / "c")],
                hs,
            )
            assert proc.returncode == 0, proc.stderr
            reports.append(_strip_timings(json.loads(out.read_text())))
        assert reports[0] == reports[1]
