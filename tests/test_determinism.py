"""Output determinism under ``PYTHONHASHSEED`` variation.

The differential oracle compares engine outputs byte for byte, and the
fuzz harness promises that a seed line reproduces a finding exactly — both
are sound only if nothing in the reporting or trace pipeline leaks Python
hash ordering.  These tests run the same jobs in subprocesses with
different hash seeds and diff the outputs (timing fields normalised).
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
HASH_SEEDS = ("0", "424242")


def _run(args, hash_seed, cwd=ROOT):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=cwd,
    )
    return proc


#: Every wall-clock key any emission layer writes: stats/metrics
#: ("seconds", "gc_seconds"), telemetry events ("t"), Chrome trace
#: events ("ts", "dur"), bench baselines ("wall_seconds").
TIMING_KEYS = ("seconds", "gc_seconds", "t", "ts", "dur", "wall_seconds")


def _normalise_stdout(text):
    """Blank the wall-clock digits in cost lines ("25 - 0.00s") — they
    are load noise, not hash-order signal."""
    return re.sub(r"(\d+k?) - \d+\.\d+s", r"\1 - Xs", text)


def _strip_timings(data):
    if isinstance(data, dict):
        return {
            k: _strip_timings(v)
            for k, v in data.items()
            if k not in TIMING_KEYS
        }
    if isinstance(data, list):
        return [_strip_timings(v) for v in data]
    return data


class TestHashSeedInvariance:
    def test_target_report_with_traces_is_stable(self, backend):
        outs = []
        for hs in HASH_SEEDS:
            proc = _run(
                ["counter", "--stage", "partial", "--traces", "2",
                 "--backend", backend],
                hs,
            )
            assert proc.returncode == 0, proc.stderr
            outs.append(_normalise_stdout(proc.stdout))
        assert outs[0] == outs[1]
        assert "trace to uncovered state" in outs[0]

    def test_rml_run_with_traces_is_stable(self, backend):
        outs = []
        for hs in HASH_SEEDS:
            proc = _run(
                ["run", "examples/arbiter.rml", "--traces", "2",
                 "--backend", backend],
                hs,
            )
            assert proc.returncode == 0, proc.stderr
            outs.append(_normalise_stdout(proc.stdout))
        assert outs[0] == outs[1]

    def test_suite_json_is_stable(self, tmp_path):
        reports = []
        for hs in HASH_SEEDS:
            out = tmp_path / f"suite-{hs}.json"
            proc = _run(
                ["suite", "tests/corpus", "--no-builtins",
                 "--json", str(out)],
                hs,
            )
            assert proc.returncode == 0, proc.stderr
            reports.append(_strip_timings(json.loads(out.read_text())))
        assert reports[0] == reports[1]

    def test_chrome_trace_is_stable(self, tmp_path):
        """--trace output (timings stripped) is byte-identical across
        hash seeds: span order, names, attrs and counter deltas must not
        leak dict ordering."""
        stripped = []
        for hs in HASH_SEEDS:
            out = tmp_path / f"trace-{hs}.jsonl"
            proc = _run(
                ["run", "examples/counter.rml", "--trace", str(out)], hs
            )
            assert proc.returncode == 0, proc.stderr
            events = json.loads(out.read_text())
            assert isinstance(events, list) and events
            stripped.append(
                json.dumps(_strip_timings(events), sort_keys=True)
            )
        assert stripped[0] == stripped[1]

    def test_metrics_block_is_stable(self, tmp_path):
        """Suite JSON with telemetry spans on: the per-job metrics block
        (timings stripped) is byte-identical across hash seeds."""
        reports = []
        for hs in HASH_SEEDS:
            out = tmp_path / f"suite-tel-{hs}.json"
            proc = _run(
                ["suite", "tests/corpus", "--no-builtins",
                 "--telemetry", "spans", "--json", str(out)],
                hs,
            )
            assert proc.returncode == 0, proc.stderr
            report = json.loads(out.read_text())
            for job in report["jobs"]:
                assert job["metrics"]["level"] == "spans"
                assert job["metrics"]["spans"]
            reports.append(
                json.dumps(_strip_timings(report), sort_keys=True)
            )
        assert reports[0] == reports[1]

    def test_telemetry_is_observationally_inert(self):
        """Verdicts/coverage/trace text are byte-identical with telemetry
        on or off (spans only read engine state).  Only wall-clock digits
        are normalised — the node counts in the cost line must match too,
        proving the recording created no BDD nodes."""
        import re

        def normalise(text):
            return re.sub(r"(\d+k?) - \d+\.\d+s", r"\1 - Xs", text)

        base = _run(["counter", "--traces", "2"], "0")
        spans = _run(
            ["counter", "--traces", "2", "--telemetry", "spans"], "0"
        )
        assert base.returncode == spans.returncode == 0
        assert normalise(base.stdout) == normalise(spans.stdout)

    def test_cli_output_identical_across_backends(self):
        """The two BDD backends produce byte-identical CLI reports —
        including the node counts in the cost line: the backends share
        memoisation semantics, so even their *work* counters agree.  Only
        wall-clock digits are normalised."""
        outs = {}
        for backend in ("dict", "array"):
            proc = _run(
                ["counter", "--stage", "partial", "--traces", "2",
                 "--backend", backend],
                "0",
            )
            assert proc.returncode == 0, proc.stderr
            outs[backend] = _normalise_stdout(proc.stdout)
        assert outs["dict"] == outs["array"]

    def test_fuzz_report_is_stable(self, tmp_path):
        reports = []
        for hs in HASH_SEEDS:
            out = tmp_path / f"fuzz-{hs}.json"
            proc = _run(
                ["fuzz", "--budget", "3", "--seed", "5",
                 "--json", str(out), "--corpus", str(tmp_path / "c")],
                hs,
            )
            assert proc.returncode == 0, proc.stderr
            reports.append(_strip_timings(json.loads(out.read_text())))
        assert reports[0] == reports[1]
