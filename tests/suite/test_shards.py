"""The work-stealing shard executor: crash isolation, retries, merging.

The headline contract under test: killing a pool worker mid-suite yields
a complete ``repro-coverage-suite/v2`` report — every unaffected job
``ok`` with results identical to a serial run, only the crashed shard's
jobs ``status="error"``, totals reflecting exactly those errors — with
the worker pool respawned instead of the run raising
``BrokenProcessPool``.
"""

import json
import os
import threading

import pytest

from repro.engine import EngineConfig
from repro.errors import ConfigError
from repro.obs import Telemetry
from repro.obs.counters import counter_delta
from repro.suite import (
    CoverageJob,
    default_jobs,
    execute_job,
    rml_job,
    run_jobs,
    run_jobs_sharded,
    suite_report,
)
from repro.suite import runner as runner_mod
from repro.suite.shards import (
    default_shard_count,
    plan_shards,
    run_sharded,
)
from tests.suite.test_runner import EXAMPLES_DIR, _jobs

#: Wall-clock keys stripped before byte-comparing reports (same set the
#: determinism suite uses): timings are load noise, not merge signal.
TIMING_KEYS = ("seconds", "gc_seconds", "t")


def _stripped(data):
    if isinstance(data, dict):
        return {
            k: _stripped(v) for k, v in data.items() if k not in TIMING_KEYS
        }
    if isinstance(data, list):
        return [_stripped(v) for v in data]
    return data


def _report_bytes(results):
    return json.dumps(
        _stripped(suite_report(results, seconds=0.0)), sort_keys=True
    )


# -- module-level workers (must be picklable by qualified name) ---------


def _double(item):
    return item * 2


def _crashy_double(item):
    if item == "boom":
        os._exit(23)
    return item * 2


def _crashy_execute_job(job):
    """``execute_job`` with a planted worker-killing job — the regression
    shape for the old ``pool.map`` fan-out, which raised
    ``BrokenProcessPool`` and threw away every completed result."""
    if job.name == "crash":
        os._exit(23)
    return execute_job(job)


def _err(item, message):
    return ("error", item, message)


# -- shard planning -----------------------------------------------------


class TestPlanning:
    def test_plan_covers_every_index_in_order(self):
        for count in (1, 2, 5, 17, 64):
            for shards in (1, 2, 3, 7, 100):
                bounds = plan_shards(count, shards)
                flat = [
                    i for start, stop in bounds for i in range(start, stop)
                ]
                assert flat == list(range(count))
                assert all(stop > start for start, stop in bounds)

    def test_plan_is_balanced(self):
        sizes = [stop - start for start, stop in plan_shards(10, 4)]
        assert sizes == [3, 3, 2, 2]

    def test_plan_clamps_shards_to_count(self):
        assert plan_shards(3, 8) == [(0, 1), (1, 2), (2, 3)]

    def test_default_shard_count_oversubscribes_workers(self):
        assert default_shard_count(1000, 4) == 32
        assert default_shard_count(5, 4) == 5
        assert default_shard_count(0, 4) == 1


# -- the generic executor -----------------------------------------------


class TestRunSharded:
    def test_results_in_item_order(self):
        items = list(range(11))
        results, stats = run_sharded(
            items, _double, _err, max_workers=2, shards=5
        )
        assert results == [i * 2 for i in items]
        assert stats.shards == 5
        assert stats.completed == 5
        assert stats.failed == 0

    def test_workers_steal_pending_shards(self):
        # 8 shards over 2 workers: each worker's first shard is its own;
        # every later pull comes off the shared backlog.
        results, stats = run_sharded(
            list(range(16)), _double, _err, max_workers=2, shards=8
        )
        assert results == [i * 2 for i in range(16)]
        assert stats.completed == 8
        assert stats.steals >= 6

    def test_serial_mode_is_a_plain_loop(self):
        results, stats = run_sharded(
            list(range(6)), _double, _err, max_workers=1, shards=3
        )
        assert results == [i * 2 for i in range(6)]
        assert stats.completed == 3
        assert stats.steals == 0 and stats.respawns == 0

    def test_empty_items(self):
        results, stats = run_sharded([], _double, _err, max_workers=4)
        assert results == []
        assert stats.completed == 0

    def test_invalid_knobs_are_config_errors(self):
        with pytest.raises(ConfigError, match="shards must be >= 1"):
            run_sharded([1], _double, _err, max_workers=2, shards=0)
        with pytest.raises(ConfigError, match="max_shard_retries"):
            run_sharded(
                [1], _double, _err, max_workers=2, max_shard_retries=-1
            )

    def test_worker_crash_fails_only_its_shard(self):
        items = [1, 2, "boom", 4, 5, 6]
        results, stats = run_sharded(
            items, _crashy_double, _err, max_workers=2, shards=6
        )
        for i, item in enumerate(items):
            if item == "boom":
                status, failed_item, message = results[i]
                assert status == "error"
                assert failed_item == "boom"
                assert "crashed" in message
            else:
                assert results[i] == item * 2
        assert stats.failed == 1
        assert stats.respawns >= 1

    def test_crash_in_multi_item_shard_errors_the_whole_shard(self):
        items = [1, "boom", 3, 4, 5, 6]
        results, stats = run_sharded(
            items, _crashy_double, _err, max_workers=2, shards=2
        )
        # Shard 0 = items 0-2 (contains the crash), shard 1 = items 3-5.
        assert [r[0] for r in results[:3]] == ["error"] * 3
        assert results[3:] == [8, 10, 12]
        assert stats.failed == 1
        assert stats.completed == 1

    def test_retry_exhaustion_is_bounded_and_deterministic(self):
        results, stats = run_sharded(
            ["boom"], _crashy_double, _err,
            max_workers=2, max_shard_retries=3,
        )
        status, _, message = results[0]
        assert status == "error"
        assert "3 retry(s) allowed" in message
        assert stats.retries == 3
        assert stats.respawns == 3
        assert stats.failed == 1 and stats.completed == 0

    def test_zero_retries_fails_fast(self):
        results, stats = run_sharded(
            ["boom"], _crashy_double, _err,
            max_workers=2, max_shard_retries=0,
        )
        assert results[0][0] == "error"
        assert stats.retries == 0 and stats.respawns == 0

    def test_innocent_victims_of_a_crash_recover_via_retry(self):
        # One shard per item: whatever was in flight when "boom" killed
        # the pool gets an isolated re-run and must still succeed.
        items = ["boom"] + list(range(9))
        results, _stats = run_sharded(
            items, _crashy_double, _err, max_workers=2, shards=10,
        )
        assert results[0][0] == "error"
        assert results[1:] == [i * 2 for i in range(9)]

    def test_unpicklable_item_fails_only_its_shard_without_retries(self):
        items = [1, threading.Lock(), 3]
        results, stats = run_sharded(
            items, _double, _err, max_workers=2, shards=3
        )
        assert results[0] == 2 and results[2] == 6
        status, _, message = results[1]
        assert status == "error"
        assert "pickle" in message
        assert stats.failed == 1
        assert stats.retries == 0  # serialisation failure: deterministic


# -- observability ------------------------------------------------------


class TestShardTelemetry:
    def test_counters_and_spans(self):
        telemetry = Telemetry("spans")
        with counter_delta("suite.shards.runs") as runs, \
                counter_delta("suite.shards.steals") as steals:
            _results, stats = run_sharded(
                list(range(12)), _double, _err,
                max_workers=2, shards=6, telemetry=telemetry,
            )
        assert runs() == stats.completed == 6
        assert steals() == stats.steals
        shard_spans = [s for s in telemetry.spans if s.name == "shard"]
        assert len(shard_spans) == 6
        assert sorted(s.attrs["shard"] for s in shard_spans) == list(range(6))
        for span in shard_spans:
            assert span.attrs["status"] == "ok"
            assert span.attrs["jobs"] == 2
            assert span.attrs["attempt"] == 1
            assert span.attrs["pid"] > 0
            assert span.seconds >= 0.0

    def test_failed_shard_records_error_span_and_counters(self):
        telemetry = Telemetry("spans")
        with counter_delta("suite.shards.failed") as failed, \
                counter_delta("suite.shards.retries") as retries, \
                counter_delta("suite.shards.respawns") as respawns:
            _results, stats = run_sharded(
                ["boom"], _crashy_double, _err,
                max_workers=2, max_shard_retries=1, telemetry=telemetry,
            )
        assert failed() == stats.failed == 1
        assert retries() == stats.retries == 1
        assert respawns() == stats.respawns == 1
        error_spans = [
            s for s in telemetry.spans if s.attrs.get("status") == "error"
        ]
        assert len(error_spans) == 1

    def test_off_telemetry_records_nothing(self):
        telemetry = Telemetry("counters")
        run_sharded(
            [1, 2], _double, _err, max_workers=1, telemetry=telemetry
        )
        assert telemetry.spans == []


# -- run_jobs through the shard executor --------------------------------


class TestRunJobsSharded:
    def test_pool_crash_mid_suite_yields_complete_v2_report(
        self, monkeypatch
    ):
        """The acceptance scenario: one worker dies mid-suite; the run
        completes with every unaffected job identical to serial and only
        the crashed job errored."""
        healthy = _jobs()
        serial = run_jobs(healthy, max_workers=1)

        jobs = list(healthy)
        jobs.insert(
            2,
            CoverageJob(
                name="crash", kind="builtin", target="counter", stage="full"
            ),
        )
        monkeypatch.setattr(runner_mod, "execute_job", _crashy_execute_job)
        results, stats = run_jobs_sharded(
            jobs, max_workers=2, shards=len(jobs)
        )

        # One result per job, in job order — nothing lost, nothing raised.
        assert [r.name for r in results] == [j.name for j in jobs]
        crashed = results[2]
        assert crashed.status == "error"
        assert "crashed" in crashed.error
        assert stats.failed == 1

        # Every unaffected job is byte-identical to the serial run
        # (timings stripped), and the merged report's totals reflect
        # exactly the crashed job on top of the serial outcome.
        survivors = [r for r in results if r.name != "crash"]
        assert _report_bytes(survivors) == _report_bytes(serial)
        report = suite_report(results, seconds=0.0)
        baseline = suite_report(serial, seconds=0.0)
        assert report["schema"] == "repro-coverage-suite/v2"
        assert report["totals"]["jobs"] == baseline["totals"]["jobs"] + 1
        assert report["totals"]["errors"] == baseline["totals"]["errors"] + 1
        assert report["totals"]["ok"] == baseline["totals"]["ok"]
        assert report["totals"]["failed"] == baseline["totals"]["failed"]

    def test_crash_converts_whole_shard_and_exit_semantics(
        self, monkeypatch
    ):
        monkeypatch.setattr(runner_mod, "execute_job", _crashy_execute_job)
        jobs = [
            CoverageJob(name="crash", kind="builtin", target="counter",
                        stage="full"),
            rml_job(EXAMPLES_DIR / "traffic_light.rml"),
        ]
        # Two jobs in ONE shard: the innocent neighbour shares the
        # crashing shard's fate (that is the documented blast radius).
        results = run_jobs(jobs, max_workers=2, shards=1)
        assert [r.status for r in results] == ["error", "error"]
        # The error result keeps the job's identity and config.
        assert results[1].name == "rml:traffic_light"
        assert results[1].config == jobs[1].config

    def test_retry_exhaustion_through_run_jobs(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "execute_job", _crashy_execute_job)
        jobs = [
            CoverageJob(name="crash", kind="builtin", target="counter",
                        stage="full"),
            CoverageJob(name="counter@full", kind="builtin",
                        target="counter", stage="full"),
        ]
        with counter_delta("suite.shards.retries") as retries:
            results, stats = run_jobs_sharded(
                jobs, max_workers=2, shards=2, max_shard_retries=1
            )
        assert results[0].status == "error"
        assert results[1].status == "ok"
        assert stats.retries == retries() >= 1
        assert stats.failed == 1

    def test_serial_path_bypasses_the_pool(self):
        jobs = _jobs()[:2]
        results, stats = run_jobs_sharded(jobs, max_workers=1)
        assert [r.status for r in results] == ["ok", "ok"]
        assert stats.shards == 0  # never sharded, never pooled

    def test_sharded_report_matches_serial_small_mix(self):
        jobs = _jobs()
        serial = run_jobs(jobs, max_workers=1)
        sharded = run_jobs(jobs, max_workers=4, shards=3)
        assert _report_bytes(sharded) == _report_bytes(serial)


@pytest.mark.slow
class TestShardMergeDeterminism:
    def test_sharded_report_identical_to_serial_everywhere(self, backend):
        """Builtins + examples/*.rml, both backends: the merged sharded
        report is byte-identical to ``max_workers=1`` once wall-clock
        noise is stripped."""
        config = EngineConfig(backend=backend)
        jobs = default_jobs(rml_dir=EXAMPLES_DIR, config=config)
        assert len(jobs) > 10
        serial = run_jobs(jobs, max_workers=1)
        sharded = run_jobs(jobs, max_workers=4, shards=7)
        assert _report_bytes(sharded) == _report_bytes(serial)
