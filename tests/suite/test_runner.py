"""Tests for the suite runner: execution, parallelism, JSON reporting."""

import json
from pathlib import Path

import pytest

from repro.engine import EngineConfig
from repro.errors import ReportError
from repro.suite import (
    JSON_SCHEMA_ID,
    JSON_SCHEMA_ID_V1,
    CoverageJob,
    builtin_jobs,
    execute_job,
    format_results,
    read_report,
    rml_job,
    run_jobs,
    suite_report,
    write_report,
)

EXAMPLES_DIR = Path(__file__).resolve().parent.parent.parent / "examples"

#: A small, fast job mix: builtin full/partial coverage, an .rml model,
#: a verification failure, and a parse error.
def _jobs():
    return [
        CoverageJob(name="counter@full", kind="builtin", target="counter",
                    stage="full"),
        CoverageJob(name="counter@partial", kind="builtin", target="counter",
                    stage="partial"),
        rml_job(EXAMPLES_DIR / "traffic_light.rml"),
        CoverageJob(name="buggy", kind="builtin", target="buffer-lo",
                    stage="augmented", buggy=True),
        CoverageJob(name="broken", kind="rml", path="broken.rml",
                    source="MODULE broken\nVAR\n  x : oops;\n"),
    ]


class TestExecuteJob:
    def test_ok_job(self):
        result = execute_job(_jobs()[0])
        assert result.status == "ok"
        assert result.percentage == 100.0
        assert result.covered_states == result.space_states == 20
        assert result.uncovered_states == 0
        assert result.observed == ["count"]
        assert result.properties == 11
        assert result.nodes_created > 0

    def test_partial_coverage_job(self):
        result = execute_job(_jobs()[1])
        assert result.status == "ok"
        assert result.percentage == pytest.approx(80.0)
        assert result.uncovered_states == 4

    def test_rml_job(self):
        result = execute_job(_jobs()[2])
        assert result.status == "ok"
        assert result.kind == "rml"
        assert result.model == "traffic_light"
        assert result.percentage == 100.0

    def test_failing_verification_is_fail_not_error(self):
        result = execute_job(_jobs()[3])
        assert result.status == "fail"
        assert result.percentage is None
        assert len(result.failing_properties) == 2
        assert result.properties == 7

    def test_parse_error_is_captured(self):
        result = execute_job(_jobs()[4])
        assert result.status == "error"
        assert "broken.rml" in result.error

    def test_rml_without_specs_errors(self):
        job = CoverageJob(
            name="no-specs", kind="rml", path="x.rml",
            source=(
                "MODULE x\nVAR\n  a : boolean;\nASSIGN\n  next(a) := !a;\n"
                "OBSERVED a;\n"
            ),
        )
        result = execute_job(job)
        assert result.status == "error"
        assert "SPEC" in result.error

    def test_failing_job_nodes_created_is_a_delta(self):
        # Same meaning as the ok path: work during verify/estimate, not the
        # manager's absolute node total (which includes the FSM build).
        result = execute_job(_jobs()[3])
        ok = execute_job(_jobs()[0])
        assert result.status == "fail" and ok.status == "ok"
        assert 0 < result.nodes_created
        # buffer-lo model checking alone creates far more nodes than a
        # trivial manager's constants-plus-build baseline.
        assert result.nodes_created > 100

    def test_rml_without_observed_errors(self):
        job = CoverageJob(
            name="no-observed", kind="rml", path="x.rml",
            source=(
                "MODULE x\nVAR\n  a : boolean;\nASSIGN\n  next(a) := !a;\n"
                "SPEC AG (a -> AX !a);\n"
            ),
        )
        result = execute_job(job)
        assert result.status == "error"
        assert "OBSERVED" in result.error


class TestRunJobs:
    def test_serial_execution_order_preserved(self):
        jobs = _jobs()
        results = run_jobs(jobs, max_workers=1)
        assert [r.name for r in results] == [j.name for j in jobs]

    def test_parallel_matches_serial(self):
        jobs = _jobs()
        serial = run_jobs(jobs, max_workers=1)
        parallel = run_jobs(jobs, max_workers=4)
        assert [r.name for r in parallel] == [r.name for r in serial]
        for s, p in zip(serial, parallel):
            assert p.status == s.status
            assert p.percentage == s.percentage
            assert p.covered_states == s.covered_states
            assert p.space_states == s.space_states
            assert p.failing_properties == s.failing_properties


class TestReporting:
    def test_suite_report_schema(self):
        results = run_jobs(_jobs(), max_workers=1)
        report = suite_report(results, seconds=1.25)
        assert report["schema"] == JSON_SCHEMA_ID
        assert report["generator"].startswith("repro ")
        assert len(report["jobs"]) == len(results)
        totals = report["totals"]
        assert totals["jobs"] == 5
        assert totals["ok"] == 3
        assert totals["failed"] == 1
        assert totals["errors"] == 1
        assert totals["full_coverage"] == 2
        assert totals["seconds"] == 1.25
        first = report["jobs"][0]
        for key in ("name", "kind", "status", "model", "stage", "path",
                    "config", "observed", "properties", "percentage",
                    "covered_states", "space_states", "uncovered_states",
                    "failing_properties", "error", "seconds",
                    "nodes_created"):
            assert key in first

    def test_every_job_embeds_a_round_trippable_config(self):
        config = EngineConfig(trans="mono", gc_threshold=9999)
        jobs = [
            CoverageJob(name="counter@full", kind="builtin",
                        target="counter", stage="full", config=config),
            CoverageJob(name="broken", kind="rml", path="broken.rml",
                        source="MODULE broken\nVAR\n  x : oops;\n",
                        config=config),
        ]
        report = suite_report(run_jobs(jobs, max_workers=1))
        # Every job — including errored ones — records its config, and the
        # embedded object revives to the exact config the job carried.
        for job_json in report["jobs"]:
            assert EngineConfig.from_json(job_json["config"]) == config

    def test_report_is_json_serialisable(self, tmp_path):
        results = run_jobs(_jobs()[:2], max_workers=1)
        out = tmp_path / "report.json"
        write_report(results, out)
        loaded = json.loads(out.read_text())
        assert loaded["schema"] == JSON_SCHEMA_ID
        assert loaded["jobs"][0]["percentage"] == 100.0

    def test_read_report_round_trips(self, tmp_path):
        results = run_jobs(_jobs()[:2], max_workers=1)
        out = tmp_path / "report.json"
        write_report(results, out)
        loaded = read_report(out)
        assert loaded["schema"] == JSON_SCHEMA_ID
        configs = [
            EngineConfig.from_json(j["config"]) for j in loaded["jobs"]
        ]
        assert configs == [EngineConfig(), EngineConfig()]

    def test_read_report_rejects_v1_with_version_mismatch(self, tmp_path):
        out = tmp_path / "old.json"
        out.write_text(json.dumps({
            "schema": JSON_SCHEMA_ID_V1, "generator": "repro 0.9",
            "jobs": [], "totals": {},
        }))
        with pytest.raises(ReportError, match="version mismatch"):
            read_report(out)

    def test_read_report_rejects_unknown_schema(self, tmp_path):
        out = tmp_path / "odd.json"
        out.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ReportError, match="unrecognised schema"):
            read_report(out)

    def test_read_report_rejects_non_json(self, tmp_path):
        out = tmp_path / "junk.json"
        out.write_text("not json at all")
        with pytest.raises(ReportError, match="not valid JSON"):
            read_report(out)

    def test_read_report_rejects_structurally_empty_document(self, tmp_path):
        out = tmp_path / "hollow.json"
        out.write_text(json.dumps({"schema": JSON_SCHEMA_ID}))
        with pytest.raises(ReportError, match="'jobs' list"):
            read_report(out)
        out.write_text(json.dumps({"schema": JSON_SCHEMA_ID, "jobs": []}))
        with pytest.raises(ReportError, match="'totals' object"):
            read_report(out)

    def test_format_results_lines(self):
        results = run_jobs(_jobs(), max_workers=1)
        text = format_results(results)
        assert "counter@full" in text
        assert "FAIL" in text
        assert "ERROR" in text
        assert "5 job(s): 3 ok, 1 failed, 1 error(s)" in text


@pytest.mark.slow
class TestFullRegistry:
    def test_all_builtin_jobs_verify(self):
        results = run_jobs(builtin_jobs(), max_workers=1)
        assert all(r.status == "ok" for r in results), [
            (r.name, r.status, r.error) for r in results if r.status != "ok"
        ]
