"""Tests for the suite registry (builtins merged with .rml discovery)."""

import pytest

from repro.suite import (
    BUILTIN_TARGETS,
    build_builtin,
    builtin_jobs,
    default_jobs,
    discover_rml,
    rml_job,
)


class TestBuiltins:
    def test_every_paper_target_registered(self):
        assert set(BUILTIN_TARGETS) == {
            "counter", "buffer-hi", "buffer-lo", "queue-wrap",
            "queue-full", "queue-empty", "pipeline",
        }

    def test_build_builtin_returns_quadruple(self):
        fsm, props, observed, dont_care = build_builtin("counter")
        assert fsm.name.startswith("counter")
        assert props
        assert observed == "count"
        assert dont_care is None

    def test_pipeline_carries_dont_care(self):
        *_, dont_care = build_builtin("pipeline")
        assert dont_care == "!out_valid"

    def test_unknown_target_raises(self):
        with pytest.raises(ValueError, match="unknown target"):
            build_builtin("nonsense")

    def test_invalid_stage_raises(self):
        with pytest.raises(ValueError, match="invalid stage"):
            build_builtin("counter", stage="bogus")
        with pytest.raises(ValueError, match="invalid stage"):
            build_builtin("queue-full", stage="anything")

    def test_one_job_per_stage(self):
        names = [job.name for job in builtin_jobs()]
        assert len(names) == len(set(names))
        assert "counter@full" in names
        assert "counter@partial" in names
        assert "queue-wrap@final" in names
        assert "buffer-hi" in names  # stage-less target: single job


class TestDiscovery:
    def test_discover_rml_sorted(self, tmp_path):
        (tmp_path / "b.rml").write_text("MODULE b\n")
        (tmp_path / "a.rml").write_text("MODULE a\n")
        (tmp_path / "ignored.txt").write_text("not a model")
        found = discover_rml(tmp_path)
        assert [p.name for p in found] == ["a.rml", "b.rml"]

    def test_rml_job_reads_source_eagerly(self, tmp_path):
        path = tmp_path / "tiny.rml"
        path.write_text("MODULE tiny\n")
        job = rml_job(path)
        path.unlink()  # the job must survive the file disappearing
        assert job.name == "rml:tiny"
        assert job.kind == "rml"
        assert job.source == "MODULE tiny\n"

    def test_default_jobs_merges(self, tmp_path):
        (tmp_path / "extra.rml").write_text("MODULE extra\n")
        jobs = default_jobs(rml_dir=tmp_path)
        kinds = {job.kind for job in jobs}
        assert kinds == {"builtin", "rml"}
        assert len(jobs) == len(builtin_jobs()) + 1

    def test_default_jobs_without_builtins(self, tmp_path):
        (tmp_path / "only.rml").write_text("MODULE only\n")
        jobs = default_jobs(rml_dir=tmp_path, include_builtins=False)
        assert [job.name for job in jobs] == ["rml:only"]

    def test_default_jobs_builtins_only(self):
        jobs = default_jobs()
        assert all(job.kind == "builtin" for job in jobs)
