"""GC safety: forced collection at every safe point changes no result.

Two granularities of safe point are stressed:

* **Top-level operations** — the granularity the resource manager is
  specified against ("between top-level operations, never mid-recursion").
  ``_forced_gc_report`` reruns the full verify + estimate flow for a model
  with an explicit ``collect_garbage()`` after *every* top-level step
  (each property check, the coverage-space computation, each covered-set,
  trace generation) and must reproduce the default-policy report
  byte-for-byte on every builtin target at every stage and every shipped
  ``.rml`` model.

* **Wrapper creation** — the engine's finest-grained safe point.
  :meth:`ResourcePolicy.aggressive` collects at every single ``Function``
  creation — thousands of collections per model — on every builtin
  target and every ``.rml`` example.  (Affordable because a sweep that
  frees nothing keeps the operation caches.)

A marking bug, a missing root (live wrapper, pinned iterator), or a
prematurely recycled slot shows up here as a diff.  The original
WeakSet-based root registry failed exactly these tests: structural
``Function`` equality collapsed equal wrappers into one registry entry,
so dropping one unrooted the node its live twin still denoted.

Every test takes the ``backend`` fixture (``tests/conftest.py``) and runs
once per BDD backend: each node store has its own mark/sweep/free-list
machinery, so GC safety must be proven per backend, not once.
"""

import itertools
from pathlib import Path

import pytest

from repro.bdd import BDDManager, Function, ResourcePolicy
from repro.coverage import CoverageEstimator, format_uncovered_traces
from repro.coverage.report import CoverageReport, PropertyCoverage
from repro.engine import EngineConfig
from repro.lang import elaborate, load_module
from repro.mc import ModelChecker, WorkStats
from repro.suite import BUILTIN_TARGETS, build_builtin

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _aggressive(backend):
    """Forced GC at every wrapper-creation safe point (small models only)
    — the config form of :meth:`ResourcePolicy.aggressive`."""
    return EngineConfig(gc_threshold=1, gc_growth=1.0, backend=backend)


def _all_builtin_cases():
    for target in BUILTIN_TARGETS.values():
        for stage in target.stages or (None,):
            yield pytest.param(
                target.name, stage, id=f"{target.name}@{stage or 'default'}"
            )


def _render(fsm, report, failing):
    """Everything user-visible about a run, costs excluded (GC schedules
    are supposed to change costs, never results)."""
    if failing:
        return ("fail", tuple(failing))
    return (
        "ok",
        report.percentage,
        report.covered_count,
        report.space_count,
        tuple(fsm.count_states(pc.covered) for pc in report.per_property),
        report.format_uncovered(limit=8),
        format_uncovered_traces(report, count=3),
    )


def _default_report(fsm, props, observed, dont_care):
    checker = ModelChecker(fsm)
    failing = [str(p) for p in props if not checker.holds(p)]
    if failing:
        return _render(fsm, None, failing)
    estimator = CoverageEstimator(fsm, checker=checker)
    report = estimator.estimate(props, observed=observed, dont_care=dont_care)
    return _render(fsm, report, [])


def _forced_gc_report(fsm, props, observed, dont_care):
    """The same flow with ``collect_garbage()`` after every top-level step."""
    manager = fsm.manager
    checker = ModelChecker(fsm)
    failing = []
    for prop in props:
        if not checker.holds(prop):
            failing.append(str(prop))
        manager.collect_garbage()
    if failing:
        return _render(fsm, None, failing)
    estimator = CoverageEstimator(fsm, checker=checker)
    observed_list = estimator._observed_list(observed)
    space = estimator.coverage_space(dont_care)
    manager.collect_garbage()
    per_property = []
    total = fsm.empty_set()
    for prop in props:
        covered = estimator.covered_set(prop, observed_list, verify=False)
        manager.collect_garbage()
        covered = covered & space
        manager.collect_garbage()
        per_property.append(
            PropertyCoverage(formula=prop, covered=covered, stats=WorkStats())
        )
        total = total | covered
        manager.collect_garbage()
    report = CoverageReport(
        fsm=fsm,
        observed=observed_list,
        space=space,
        covered=total,
        per_property=per_property,
    )
    rendered = _render(fsm, report, [])
    manager.collect_garbage()
    # Re-render after one more sweep: enumeration-backed strings (uncovered
    # cubes, traces) must not depend on dead nodes either.
    assert _render(fsm, report, []) == rendered
    return rendered


@pytest.mark.parametrize("name,stage", _all_builtin_cases())
def test_builtin_reports_identical_under_forced_gc(name, stage, backend):
    config = EngineConfig(backend=backend)
    default = _default_report(*build_builtin(name, stage=stage, config=config))
    forced = _forced_gc_report(*build_builtin(name, stage=stage, config=config))
    assert forced == default


@pytest.mark.parametrize(
    "path", sorted(EXAMPLES.glob("*.rml")), ids=lambda p: p.stem
)
def test_rml_reports_identical_under_forced_gc(path, backend):
    module = load_module(path)
    config = EngineConfig(backend=backend)
    default = elaborate(module, config=config)
    forced = elaborate(module, config=config)
    assert _forced_gc_report(
        forced.fsm, forced.specs, forced.observed, forced.dont_care
    ) == _default_report(
        default.fsm, default.specs, default.observed, default.dont_care
    )


@pytest.mark.parametrize("name,stage", _all_builtin_cases())
def test_mono_vs_partitioned_identical_under_forced_gc(name, stage, backend):
    """The mono/partitioned equivalence guarantee survives the densest GC
    schedule (the tentpole's acceptance criterion)."""
    mono = _forced_gc_report(
        *build_builtin(
            name, stage=stage,
            config=EngineConfig(trans="mono", backend=backend),
        )
    )
    part = _forced_gc_report(
        *build_builtin(
            name, stage=stage,
            config=EngineConfig(trans="partitioned", backend=backend),
        )
    )
    assert mono == part


class TestWrapperGranularity:
    """GC at every single wrapper-creation safe point, everywhere."""

    @pytest.mark.parametrize("name,stage", _all_builtin_cases())
    def test_builtin_identical_under_aggressive_policy(
        self, name, stage, backend
    ):
        default = _default_report(
            *build_builtin(
                name, stage=stage, config=EngineConfig(backend=backend)
            )
        )
        fsm, props, obs, dc = build_builtin(
            name, stage=stage, config=_aggressive(backend)
        )
        assert _default_report(fsm, props, obs, dc) == default
        assert fsm.manager.gc_runs > 100  # it really collected

    @pytest.mark.parametrize(
        "path", sorted(EXAMPLES.glob("*.rml")), ids=lambda p: p.stem
    )
    def test_rml_identical_under_aggressive_policy(self, path, backend):
        module = load_module(path)
        default = elaborate(module, config=EngineConfig(backend=backend))
        forced = elaborate(module, config=_aggressive(backend))
        assert _default_report(
            forced.fsm, forced.specs, forced.observed, forced.dont_care
        ) == _default_report(
            default.fsm, default.specs, default.observed, default.dont_care
        )
        assert forced.fsm.manager.gc_runs > 100


def test_live_wrappers_denote_same_functions_across_gc(backend):
    """Function wrappers survive any number of collections unchanged."""
    names = [f"b{i}" for i in range(6)]
    mgr = BDDManager(
        names, policy=ResourcePolicy.disabled(), backend=backend
    )
    funcs = []
    # A spread of shapes: literals, conjunctions, parities, implications.
    for i in range(6):
        v = Function.var(mgr, names[i])
        w = Function.var(mgr, names[(i + 2) % 6])
        funcs.extend([v & w, v ^ w, v.implies(w), ~v | (w & v)])
    ids = [mgr.var_id(n) for n in names]
    envs = [
        dict(zip(ids, bits))
        for bits in itertools.product([False, True], repeat=len(ids))
    ]
    before = [[f.evaluate(e) for e in envs] for f in funcs]
    for _ in range(5):
        mgr.collect_garbage()
        # New work between collections, recycling freed slots.
        Function.var(mgr, names[0]) & Function.var(mgr, names[5])
    assert [[f.evaluate(e) for e in envs] for f in funcs] == before
