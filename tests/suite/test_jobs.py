"""CoverageJob: config field, describe() regeneration, round-trips.

``describe()`` used to hand-accumulate ``--gc-threshold``/``--auto-reorder``
into a variable misleadingly named ``trans``; it is now regenerated from
``EngineConfig.to_cli_args()``, and the round-trip tests here pin the
contract: parsing a description's flags back through the CLI parser yields
the job's exact config.
"""

import argparse
import pickle

import pytest

from repro.engine import EngineConfig
from repro.errors import ConfigError
from repro.suite import CoverageJob


def _reparse_flags(tokens):
    """Parse engine flags the way the CLI does and revive the config."""
    parser = argparse.ArgumentParser()
    EngineConfig.add_cli_arguments(parser)
    return EngineConfig.from_args(parser.parse_args(tokens))


CONFIGS = [
    EngineConfig(),
    EngineConfig(trans="mono"),
    EngineConfig(gc_threshold=0),
    EngineConfig(gc_threshold=12345, auto_reorder=True),
    EngineConfig(trans="mono", gc_growth=1.5, cache_threshold=77),
]


class TestDescribe:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_builtin_describe_round_trips(self, config):
        job = CoverageJob(name="counter@full", kind="builtin",
                          target="counter", stage="full", config=config)
        description = job.describe()
        assert description.startswith("counter --stage full")
        flags = description.split("counter --stage full")[1].split()
        assert _reparse_flags(flags) == config

    @pytest.mark.parametrize("config", CONFIGS)
    def test_rml_describe_round_trips(self, config):
        job = CoverageJob(name="rml:m", kind="rml", path="m.rml",
                          source="MODULE m\n", config=config)
        description = job.describe()
        assert description.startswith("m.rml")
        flags = description[len("m.rml"):].split()
        assert _reparse_flags(flags) == config

    def test_buggy_and_stage_flags_present(self):
        job = CoverageJob(name="b", kind="builtin", target="buffer-lo",
                          stage="augmented", buggy=True,
                          config=EngineConfig(trans="mono"))
        assert job.describe() == (
            "buffer-lo --stage augmented --buggy --trans mono"
        )

    def test_default_config_renders_no_flags(self):
        job = CoverageJob(name="c", kind="builtin", target="counter")
        assert job.describe() == "counter"


class TestConstruction:
    def test_default_config(self):
        job = CoverageJob(name="c", kind="builtin", target="counter")
        assert job.config == EngineConfig()

    def test_frozen(self):
        job = CoverageJob(name="c", kind="builtin", target="counter")
        with pytest.raises(Exception):
            job.name = "other"

    def test_equality_includes_config(self):
        a = CoverageJob(name="c", kind="builtin", target="counter",
                        config=EngineConfig(trans="mono"))
        b = CoverageJob(name="c", kind="builtin", target="counter")
        assert a != b
        assert a == CoverageJob(name="c", kind="builtin", target="counter",
                                config=EngineConfig(trans="mono"))

    def test_pickle_round_trip(self):
        job = CoverageJob(name="c", kind="builtin", target="counter",
                          config=EngineConfig(gc_threshold=3))
        assert pickle.loads(pickle.dumps(job)) == job

    def test_config_and_legacy_kwargs_conflict(self):
        # Conflicts are a hard error (raised before the shim warns).
        with pytest.raises(ConfigError, match="not both"):
            CoverageJob(name="c", kind="builtin", target="counter",
                        config=EngineConfig(), trans="mono")
