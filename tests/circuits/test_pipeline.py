"""Tests for Circuit 3: the decode pipeline with the output-hold FSM."""

import pytest

from repro.circuits import (
    build_pipeline,
    pipeline_augmented_properties,
    pipeline_output_properties,
    pipeline_retention_properties,
)
from repro.coverage import CoverageEstimator
from repro.ctl import parse_ctl
from repro.expr import parse_expr
from repro.mc import ModelChecker


@pytest.fixture(scope="module")
def fsm():
    return build_pipeline()


@pytest.fixture(scope="module")
def checker(fsm):
    return ModelChecker(fsm)


@pytest.fixture(scope="module")
def estimator(fsm, checker):
    return CoverageEstimator(fsm, checker=checker)


class TestBehaviour:
    def test_hold_counter_never_three(self, checker):
        assert checker.holds(parse_ctl("AG h != 3"))

    def test_data_stages_forward(self, checker):
        assert checker.holds(parse_ctl(
            "AG (!stall & h = 0 & v1 & d1 = 1 -> AX (v2 & d2 = 1))"
        ))

    def test_stall_freezes_stages(self, checker):
        assert checker.holds(parse_ctl(
            "AG (stall & h = 0 & v1 & d1 = 1 -> AX (v1 & d1 = 1))"
        ))

    def test_hold_freezes_output(self, checker):
        assert checker.holds(parse_ctl(
            "AG (h = 2 & output = 1 -> AX output = 1)"
        ))
        assert checker.holds(parse_ctl(
            "AG (h = 1 & output = 0 -> AX output = 0)"
        ))

    def test_arrival_starts_hold(self, checker):
        assert checker.holds(parse_ctl("AG (!stall & h = 0 & v2 -> AX h = 2)"))

    def test_eventually_output_under_fairness(self, checker):
        # The nested-until staging property style from the paper.
        assert checker.holds(parse_ctl(
            "AG (v1 & d1 = 1 -> A [v1 & d1 = 1 U A [v2 & d2 = 1 U "
            "v3 & output = 1]])"
        ))

    def test_liveness_fails_without_fairness(self, fsm):
        unfair = ModelChecker(fsm, use_fairness=False)
        assert not unfair.holds(parse_ctl(
            "AG (v1 & d1 = 1 -> A [v1 & d1 = 1 U A [v2 & d2 = 1 U "
            "v3 & output = 1]])"
        ))


class TestCoverageNarrative:
    def test_initial_suite_verifies(self, checker):
        props = pipeline_output_properties()
        assert len(props) == 8  # Table 2: "# Prop" = 8
        for prop in props:
            assert checker.holds(prop)

    def test_initial_coverage_leaves_hold_states(self, estimator, fsm):
        report = estimator.estimate(
            pipeline_output_properties(), observed="output",
            dont_care="!out_valid",
        )
        # Paper: 74.36%.  Ours measures ~81%: same shape (a sizeable hole,
        # closed by retention properties).
        assert 60.0 <= report.percentage < 100.0
        # Every hole lies in the hold period (h != 0).
        holding = fsm.symbolize(parse_expr("h != 0"))
        assert report.uncovered.subseteq(holding)

    def test_retention_properties_close_the_hole(self, checker, estimator):
        props = pipeline_augmented_properties()
        for prop in props:
            assert checker.holds(prop)
        report = estimator.estimate(
            props, observed="output", dont_care="!out_valid"
        )
        assert report.percentage == 100.0

    def test_retention_properties_alone_are_not_enough(self, estimator):
        report = estimator.estimate(
            pipeline_retention_properties(), observed="output",
            dont_care="!out_valid",
        )
        assert report.percentage < 100.0

    def test_coverage_without_dont_care_cannot_reach_full(self, estimator):
        # Invalid-output states cannot be covered by any property about
        # valid data; the don't-care mechanism (paper Section 4.2) exists
        # precisely for this.
        report = estimator.estimate(
            pipeline_augmented_properties(), observed="output"
        )
        assert report.percentage < 100.0
