"""Tests for the Section 1 modulo-5 counter."""

import pytest

from repro.circuits import build_counter, counter_partial_properties, counter_properties
from repro.coverage import CoverageEstimator
from repro.ctl import parse_ctl
from repro.expr import parse_expr
from repro.mc import ModelChecker


@pytest.fixture(scope="module")
def fsm():
    return build_counter()


@pytest.fixture(scope="module")
def checker(fsm):
    return ModelChecker(fsm)


class TestBehaviour:
    def test_counts_zero_to_four(self, fsm, checker):
        for value in range(5):
            succ = (value + 1) % 5
            assert checker.holds(
                parse_ctl(f"AG (!stall & !reset & count = {value} -> AX count = {succ})")
            )

    def test_values_above_modulus_unreachable(self, fsm, checker):
        assert checker.holds(parse_ctl("AG count < 5"))

    def test_stall_holds(self, checker):
        assert checker.holds(parse_ctl("AG (stall & !reset & count = 3 -> AX count = 3)"))

    def test_reset_dominates_stall(self, checker):
        assert checker.holds(parse_ctl("AG (reset & stall -> AX count = 0)"))

    def test_reachable_state_count(self, fsm):
        # 5 counter values x 4 input combinations.
        assert fsm.count_states(fsm.reachable()) == 20


class TestCoverage:
    def test_complete_suite_covers_everything(self, fsm, checker):
        est = CoverageEstimator(fsm, checker=checker)
        report = est.estimate(counter_properties(), observed="count")
        assert report.percentage == 100.0

    def test_partial_suite_has_holes(self, fsm, checker):
        est = CoverageEstimator(fsm, checker=checker)
        report = est.estimate(counter_partial_properties(), observed="count")
        assert 0 < report.percentage < 100.0
        # The increment-only suite never checks count=0 states (reached by
        # reset or wraparound, neither of which is verified).
        zero = fsm.symbolize(parse_expr("count = 0"))
        assert not report.covered.intersects(zero)

    def test_partial_holes_point_at_missing_behaviours(self, fsm, checker):
        est = CoverageEstimator(fsm, checker=checker)
        report = est.estimate(counter_partial_properties(), observed="count")
        holes = report.uncovered
        zero = fsm.symbolize(parse_expr("count = 0")) & fsm.reachable()
        assert zero.subseteq(holes)

    def test_other_modulus(self):
        fsm = build_counter(modulus=3)
        checker = ModelChecker(fsm)
        est = CoverageEstimator(fsm, checker=checker)
        report = est.estimate(counter_properties(modulus=3), observed="count")
        assert report.percentage == 100.0
