"""The paper's formulas, verbatim, against our circuits.

The introduction's counter formula is written with a rigid constant C:

    AG[(!stall & !reset & (count = C) & (C < 5)) -> AX (count = C + 1)]

SMV-style verification instantiates C per value; these tests check the
instantiated family (including the redundant ``count < 5`` conjunct) and
the pipeline's nested-until pattern ``AG (p1 -> A[p2 U A[p3 U p4]])``
exactly as Section 5 describes them.
"""

import pytest

from repro.circuits import build_counter, build_pipeline
from repro.coverage import CoverageEstimator
from repro.ctl import AG, AU, CtlImplies, normalize_for_coverage, parse_ctl
from repro.mc import ModelChecker


class TestIntroFormula:
    @pytest.fixture(scope="class")
    def counter(self):
        fsm = build_counter()
        return fsm, ModelChecker(fsm)

    @pytest.mark.parametrize("c", [0, 1, 2, 3])
    def test_instantiated_intro_formula_holds(self, counter, c):
        _, checker = counter
        prop = parse_ctl(
            f"AG (!stall & !reset & count = {c} & count < 5 "
            f"-> AX count = {c + 1})"
        )
        assert checker.holds(prop)

    def test_wraparound_case(self, counter):
        _, checker = counter
        # C = 4: the modulo-5 counter wraps to 0, so count = 5 never happens.
        assert checker.holds(parse_ctl("AG count != 5"))
        assert checker.holds(
            parse_ctl("AG (!stall & !reset & count = 4 -> AX count = 0)")
        )

    def test_redundant_conjunct_does_not_change_coverage(self, counter):
        fsm, checker = counter
        est = CoverageEstimator(fsm, checker=checker)
        plain = est.covered_set(
            parse_ctl("AG (!stall & !reset & count = 2 -> AX count = 3)"),
            observed="count",
        )
        with_bound = est.covered_set(
            parse_ctl(
                "AG (!stall & !reset & count = 2 & count < 5 -> AX count = 3)"
            ),
            observed="count",
        )
        assert plain == with_bound

    def test_intro_formula_is_in_the_acceptable_subset(self):
        prop = parse_ctl(
            "AG (!stall & !reset & count = 2 & count < 5 -> AX count = 3)"
        )
        normalized = normalize_for_coverage(prop)
        assert isinstance(normalized, AG)
        assert isinstance(normalized.operand, CtlImplies)


class TestSection5Shapes:
    def test_buffer_property_shape(self):
        # "if the buffer currently has B entries and I incoming entries and
        # I + B is less than the size of buffer, then the buffer in the
        # next clock should have I + B entries" — AG(b -> AX b') shape.
        prop = parse_ctl("AG (p1 -> AX p2)")
        normalized = normalize_for_coverage(prop)
        assert isinstance(normalized.operand.rhs, type(parse_ctl("AX x")))

    def test_pipeline_nested_until_shape(self):
        # "AG (p1 -> A[p2 U A[p3 U p4]])"
        prop = parse_ctl("AG (p1 -> A [p2 U A [p3 U p4]])")
        normalized = normalize_for_coverage(prop)
        inner = normalized.operand.rhs
        assert isinstance(inner, AU)
        assert isinstance(inner.rhs, AU)

    def test_pipeline_nested_until_holds_on_circuit(self):
        fsm = build_pipeline()
        checker = ModelChecker(fsm)
        prop = parse_ctl(
            "AG (v1 & d1 = 0 -> A [v1 & d1 = 0 U A [v2 & d2 = 0 U "
            "v3 & output = 0]])"
        )
        assert checker.holds(prop)
