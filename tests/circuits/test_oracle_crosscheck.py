"""Cross-check the symbolic estimator against the Definition-3 oracle on
small instances of the real circuits (not just toy graphs).

The counter and a capacity-2 priority buffer are enumerated explicitly;
the oracle's per-state dual-FSM verdicts must match the symbolic covered
set exactly.  For the (bigger) queue a random sample of states is checked.
"""

import random


from repro.circuits import (
    build_circular_queue,
    build_counter,
    build_priority_buffer,
    circular_queue_wrap_properties,
    counter_properties,
    priority_buffer_lo_properties,
)
from repro.coverage import CoverageEstimator, mutation_covered, reachable_indices
from repro.fsm import enumerate_model
from repro.mc import ModelChecker


def _state_key(model, index, state_vars):
    return tuple(bool(model.signal_values[index][v]) for v in state_vars)


def _symbolic_keys(fsm, covered):
    return {
        tuple(bool(s[v]) for v in fsm.state_vars)
        for s in fsm.iter_states(covered)
    }


def _oracle_keys(fsm, model, indices):
    return {_state_key(model, i, fsm.state_vars) for i in indices}


class TestCounterOracle:
    def test_every_property_matches_oracle(self):
        fsm = build_counter(modulus=3)
        model = enumerate_model(fsm)
        est = CoverageEstimator(fsm)
        for prop in counter_properties(modulus=3):
            symbolic = est.covered_set(prop, observed="count")
            oracle = mutation_covered(model, prop, ["count0", "count1"])
            assert _symbolic_keys(fsm, symbolic) == _oracle_keys(
                fsm, model, oracle
            ), f"disagree on {prop}"


class TestBufferOracle:
    def test_lo_suite_union_matches_oracle(self):
        fsm = build_priority_buffer(capacity=2, buggy=False)
        model = enumerate_model(fsm)
        est = CoverageEstimator(fsm)
        props = priority_buffer_lo_properties(capacity=2)
        lo_bits = fsm.words["lo"]

        symbolic = fsm.empty_set()
        oracle = set()
        for prop in props:
            symbolic = symbolic | est.covered_set(prop, observed="lo")
            oracle |= mutation_covered(model, prop, lo_bits)
        assert _symbolic_keys(fsm, symbolic) == _oracle_keys(fsm, model, oracle)


class TestQueueOracleSampled:
    def test_initial_wrap_suite_sampled_states(self):
        fsm = build_circular_queue(depth=2)
        model = enumerate_model(fsm)
        est = CoverageEstimator(fsm)
        props = circular_queue_wrap_properties(depth=2, stage="initial")
        # Drop vacuous/failing props at this depth, if any.
        checker = ModelChecker(fsm)
        props = [p for p in props if checker.holds(p)]
        assert props, "no wrap property verifies at depth 2"

        rng = random.Random(42)
        reachable = sorted(reachable_indices(model))
        sample = rng.sample(reachable, min(40, len(reachable)))

        symbolic = fsm.empty_set()
        for prop in props:
            symbolic = symbolic | est.covered_set(prop, observed="wrap", verify=False)
        symbolic_keys = _symbolic_keys(fsm, symbolic)
        for index in sample:
            oracle_hit = bool(
                set().union(
                    *[
                        mutation_covered(
                            model, prop, "wrap", candidates=[index], verify=False
                        )
                        for prop in props
                    ]
                )
            )
            key = _state_key(model, index, fsm.state_vars)
            assert (key in symbolic_keys) == oracle_hit, (
                f"disagree at state {key}"
            )
