"""Tests for Circuit 2: the circular queue and its staged wrap suites."""

import pytest

from repro.circuits import (
    build_circular_queue,
    circular_queue_empty_properties,
    circular_queue_full_properties,
    circular_queue_wrap_properties,
    circular_queue_wrap_stall_property,
)
from repro.coverage import CoverageEstimator
from repro.ctl import parse_ctl
from repro.mc import ModelChecker


@pytest.fixture(scope="module")
def fsm():
    return build_circular_queue()


@pytest.fixture(scope="module")
def checker(fsm):
    return ModelChecker(fsm)


@pytest.fixture(scope="module")
def estimator(fsm, checker):
    return CoverageEstimator(fsm, checker=checker)


class TestBehaviour:
    def test_reset_clears(self, checker):
        assert checker.holds(parse_ctl("AG (reset -> AX (rd = 0 & wr = 0 & !wrap))"))

    def test_stall_freezes(self, checker):
        assert checker.holds(parse_ctl(
            "AG (stall & !clear & !reset & wr = 2 -> AX wr = 2)"
        ))

    def test_wrap_toggles_on_write_wraparound(self, checker):
        assert checker.holds(parse_ctl(
            "AG (!stall & !clear & !reset & push & !pop & wr = 3 & !full & !wrap "
            "-> AX wrap)"
        ))

    def test_full_blocks_push(self, checker):
        assert checker.holds(parse_ctl(
            "AG (!stall & !clear & !reset & push & !pop & full & wr = 1 "
            "-> AX wr = 1)"
        ))

    def test_empty_blocks_pop(self, checker):
        assert checker.holds(parse_ctl(
            "AG (!stall & !clear & !reset & pop & !push & empty & rd = 1 "
            "-> AX rd = 1)"
        ))

    def test_full_and_empty_mutually_exclusive(self, checker):
        assert checker.holds(parse_ctl("AG !(full & empty)"))

    def test_occupancy_invariant(self, fsm, checker):
        # wrap=0 implies rd <= wr (occupancy = wr - rd).
        assert checker.holds(parse_ctl("AG (!wrap -> rd <= wr)"))
        assert checker.holds(parse_ctl("AG (wrap -> wr <= rd)"))

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            build_circular_queue(depth=3)


class TestStagedCoverage:
    """The paper's Table 2 + Section 5 narrative for the wrap bit."""

    def test_initial_stage_verifies_but_leaves_holes(self, checker, estimator):
        props = circular_queue_wrap_properties(stage="initial")
        assert len(props) == 5  # the paper's property count
        for prop in props:
            assert checker.holds(prop)
        report = estimator.estimate(props, observed="wrap")
        # Paper: 60.08%.  Our depth-4 queue measures 70% — same shape:
        # a large wrap hole while full/empty sit at 100%.
        assert 40.0 <= report.percentage <= 80.0

    def test_extended_stage_improves_but_not_full(self, checker, estimator):
        initial = estimator.estimate(
            circular_queue_wrap_properties(stage="initial"), observed="wrap"
        )
        extended_props = circular_queue_wrap_properties(stage="extended")
        assert len(extended_props) == 8  # "three additional properties"
        report = estimator.estimate(extended_props, observed="wrap")
        assert report.percentage > initial.percentage
        assert report.percentage < 100.0

    def test_remaining_holes_are_wrapped_full_states(self, estimator, fsm):
        report = estimator.estimate(
            circular_queue_wrap_properties(stage="extended"), observed="wrap"
        )
        full = fsm.signal("full")
        assert report.uncovered.subseteq(full)

    def test_stall_property_closes_the_hole(self, checker, estimator):
        props = circular_queue_wrap_properties(stage="extended")
        props.append(circular_queue_wrap_stall_property())
        for prop in props:
            assert checker.holds(prop)
        report = estimator.estimate(props, observed="wrap")
        assert report.percentage == 100.0

    def test_full_signal_coverage(self, checker, estimator):
        props = circular_queue_full_properties()
        assert len(props) == 2  # Table 2: "# Prop" = 2
        for prop in props:
            assert checker.holds(prop)
        report = estimator.estimate(props, observed="full")
        assert report.percentage == 100.0

    def test_empty_signal_coverage(self, checker, estimator):
        props = circular_queue_empty_properties()
        assert len(props) == 2
        for prop in props:
            assert checker.holds(prop)
        report = estimator.estimate(props, observed="empty")
        assert report.percentage == 100.0
