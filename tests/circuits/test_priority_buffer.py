"""Tests for Circuit 1: the priority buffer and its escaped-bug narrative."""

import pytest

from repro.circuits import (
    build_priority_buffer,
    priority_buffer_hi_properties,
    priority_buffer_lo_augmented_properties,
    priority_buffer_lo_hole_property,
    priority_buffer_lo_properties,
)
from repro.coverage import CoverageEstimator, trace_to_uncovered
from repro.ctl import parse_ctl
from repro.expr import parse_expr
from repro.mc import ModelChecker


@pytest.fixture(scope="module")
def good():
    fsm = build_priority_buffer(buggy=False)
    return fsm, ModelChecker(fsm)


@pytest.fixture(scope="module")
def buggy():
    fsm = build_priority_buffer(buggy=True)
    return fsm, ModelChecker(fsm)


class TestInvariants:
    def test_capacity_never_exceeded(self, good, buggy):
        for fsm, checker in (good, buggy):
            assert checker.holds(parse_ctl("AG total <= 4"))

    def test_priority_wins_last_slot(self, good):
        _, checker = good
        assert checker.holds(parse_ctl(
            "AG (!clear & !deq & in_hi & in_lo & total = 3 & lo = 1 "
            "-> AX lo = 1)"
        ))

    def test_clear_empties(self, good):
        _, checker = good
        assert checker.holds(parse_ctl("AG (clear -> AX total = 0)"))

    def test_dequeue_prefers_high(self, good):
        _, checker = good
        assert checker.holds(parse_ctl(
            "AG (!clear & deq & !in_lo & hi = 2 & lo = 1 -> AX lo = 1)"
        ))


class TestSuitesVerify:
    def test_hi_suite_passes_on_both(self, good, buggy):
        for fsm, checker in (good, buggy):
            for prop in priority_buffer_hi_properties():
                assert checker.holds(prop), f"hi property failed on {fsm.name}"

    def test_initial_lo_suite_passes_on_both(self, good, buggy):
        # The bug escapes the initial suite — exactly the paper's story.
        for fsm, checker in (good, buggy):
            for prop in priority_buffer_lo_properties():
                assert checker.holds(prop), f"lo property failed on {fsm.name}"

    def test_hole_property_reveals_the_bug(self, good, buggy):
        _, good_checker = good
        _, buggy_checker = buggy
        hole_prop = priority_buffer_lo_hole_property()
        assert good_checker.holds(hole_prop)
        assert not buggy_checker.holds(hole_prop)

    def test_bug_counterexample_shows_dropped_entry(self, buggy):
        fsm, checker = buggy
        result = checker.check(priority_buffer_lo_hole_property())
        assert result.counterexample is not None
        last = result.counterexample[-1]
        # The violating state: the entry was dropped, lo stayed 0.
        lo_value = sum(
            (1 << i) for i in range(3) if last.get(f"lo{i}", False)
        )
        assert lo_value == 0


class TestCoverageNarrative:
    def test_hi_coverage_is_full(self, good):
        fsm, checker = good
        est = CoverageEstimator(fsm, checker=checker)
        report = est.estimate(priority_buffer_hi_properties(), observed="hi")
        assert report.percentage == 100.0

    def test_initial_lo_coverage_has_the_empty_hole(self, buggy):
        fsm, checker = buggy
        est = CoverageEstimator(fsm, checker=checker)
        report = est.estimate(priority_buffer_lo_properties(), observed="lo")
        assert report.percentage < 100.0
        # All holes are empty-low-buffer states.
        lo_zero = fsm.symbolize(parse_expr("lo = 0"))
        assert report.uncovered.subseteq(lo_zero)

    def test_trace_leads_to_an_empty_lo_state(self, buggy):
        fsm, checker = buggy
        est = CoverageEstimator(fsm, checker=checker)
        report = est.estimate(priority_buffer_lo_properties(), observed="lo")
        trace = trace_to_uncovered(report)
        assert trace is not None
        assert not any(trace[-1][f"lo{i}"] for i in range(3))

    def test_augmented_lo_coverage_is_full_on_fixed_design(self, good):
        fsm, checker = good
        est = CoverageEstimator(fsm, checker=checker)
        report = est.estimate(
            priority_buffer_lo_augmented_properties(), observed="lo"
        )
        assert report.percentage == 100.0

    def test_augmented_suite_fails_on_buggy_design(self, buggy):
        _, checker = buggy
        failing = [
            p
            for p in priority_buffer_lo_augmented_properties()
            if not checker.holds(p)
        ]
        assert failing  # the added properties catch the bug
