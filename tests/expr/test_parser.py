"""Tests for the propositional expression parser and printer."""

import pytest

from repro.errors import ParseError
from repro.expr import (
    And,
    Const,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    WordCmp,
    Xor,
    expr_to_str,
    parse_expr,
)


class TestAtoms:
    def test_variable(self):
        assert parse_expr("stall") == Var("stall")

    def test_constants_case_insensitive(self):
        assert parse_expr("true") == Const(True)
        assert parse_expr("FALSE") == Const(False)
        assert parse_expr("True") == Const(True)

    def test_identifier_with_underscore_and_digits(self):
        assert parse_expr("wr_ptr0") == Var("wr_ptr0")

    def test_identifier_with_prime(self):
        assert parse_expr("q'") == Var("q'")


class TestComparisons:
    def test_eq_const(self):
        assert parse_expr("count = 3") == WordCmp("==", "count", 3)

    def test_double_eq(self):
        assert parse_expr("count == 3") == WordCmp("==", "count", 3)

    def test_neq(self):
        assert parse_expr("count != 0") == WordCmp("!=", "count", 0)

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">="])
    def test_orderings(self, op):
        assert parse_expr(f"count {op} 5") == WordCmp(op, "count", 5)

    def test_word_vs_word(self):
        assert parse_expr("rd = wr") == WordCmp("==", "rd", "wr")

    def test_hex_and_binary_literals(self):
        assert parse_expr("count = 0x1f") == WordCmp("==", "count", 31)
        assert parse_expr("count = 0b101") == WordCmp("==", "count", 5)

    def test_comparison_missing_rhs(self):
        with pytest.raises(ParseError):
            parse_expr("count = &")


class TestConnectives:
    def test_precedence_and_over_or(self):
        expr = parse_expr("a | b & c")
        assert expr == Or((Var("a"), And((Var("b"), Var("c")))))

    def test_not_binds_tightest(self):
        assert parse_expr("!a & b") == And((Not(Var("a")), Var("b")))

    def test_implies_right_associative(self):
        expr = parse_expr("a -> b -> c")
        assert expr == Implies(Var("a"), Implies(Var("b"), Var("c")))

    def test_iff_lowest(self):
        expr = parse_expr("a <-> b -> c")
        assert expr == Iff(Var("a"), Implies(Var("b"), Var("c")))

    def test_xor(self):
        assert parse_expr("a ^ b") == Xor(Var("a"), Var("b"))

    def test_keyword_operators(self):
        assert parse_expr("a and b or not c") == parse_expr("a & b | !c")

    def test_nary_flattening(self):
        expr = parse_expr("a & b & c")
        assert isinstance(expr, And)
        assert len(expr.args) == 3

    def test_parentheses(self):
        expr = parse_expr("(a | b) & c")
        assert expr == And((Or((Var("a"), Var("b"))), Var("c")))


class TestErrors:
    def test_illegal_character(self):
        with pytest.raises(ParseError) as exc:
            parse_expr("a @ b")
        assert exc.value.position == 2

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expr("a b")

    def test_empty(self):
        with pytest.raises(ParseError):
            parse_expr("")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_expr("(a & b")


class TestPrinterRoundTrip:
    CASES = [
        "a",
        "!a",
        "a & b",
        "a | b & c",
        "(a | b) & c",
        "a -> b -> c",
        "a <-> b",
        "a ^ b",
        "count = 3",
        "count < 5 & !stall",
        "!(a | b)",
        "true",
        "false",
        "a & !b | c & d",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_round_trip(self, text):
        parsed = parse_expr(text)
        assert parse_expr(expr_to_str(parsed)) == parsed

    def test_operator_sugar_matches_parser(self):
        built = (~Var("stall") & ~Var("reset")).implies(Var("ready"))
        assert built == parse_expr("!stall & !reset -> ready")

    def test_atoms_collected(self):
        expr = parse_expr("a & count < 5 | rd = wr")
        assert expr.atoms() == frozenset({"a", "count", "rd", "wr"})

    def test_substitute(self):
        expr = parse_expr("a & b")
        replaced = expr.substitute({"a": Var("x")})
        assert replaced == parse_expr("x & b")
