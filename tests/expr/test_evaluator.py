"""Tests for concrete expression evaluation."""

import pytest

from repro.errors import EvaluationError
from repro.expr import evaluate, parse_expr


ENV = {"a": True, "b": False, "c": True}


class TestBasicEvaluation:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("true", True),
            ("false", False),
            ("a", True),
            ("b", False),
            ("!a", False),
            ("a & b", False),
            ("a & c", True),
            ("a | b", True),
            ("b | b", False),
            ("a ^ c", False),
            ("a ^ b", True),
            ("a -> b", False),
            ("b -> a", True),
            ("a <-> c", True),
            ("a <-> b", False),
        ],
    )
    def test_cases(self, text, expected):
        assert evaluate(parse_expr(text), ENV) is expected

    def test_missing_signal_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(parse_expr("ghost"), ENV)

    def test_word_comparison_with_words(self):
        env = {"w0": True, "w1": False}
        assert evaluate(parse_expr("w = 1"), env, {"w": ["w0", "w1"]}) is True
        assert evaluate(parse_expr("w = 2"), env, {"w": ["w0", "w1"]}) is False

    def test_word_comparison_word_vs_bool(self):
        env = {"w0": True, "w1": True, "flag": True}
        words = {"w": ["w0", "w1"]}
        assert evaluate(parse_expr("w > flag"), env, words) is True

    def test_word_missing_bits(self):
        with pytest.raises(EvaluationError):
            evaluate(parse_expr("w = 1"), {"w0": True}, {"w": ["w0", "w1"]})

    def test_unknown_word(self):
        with pytest.raises(EvaluationError):
            evaluate(parse_expr("nope = 1"), {"a": True})
