"""Property-based tests for the RTL arithmetic builders against integers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EvaluationError
from repro.expr import evaluate, int_to_bits
from repro.expr.arith import (
    add_const_bits,
    add_words_bits,
    conditional_delta_bits,
    const_bits,
    decrement_bits,
    increment_bits,
    increment_mod_bits,
    mux,
)
from repro.expr.ast import Const, Var

WIDTH = 4
BITS = [f"b{i}" for i in range(WIDTH)]


def env_for(value, extra=None):
    env = {name: bit for name, bit in zip(BITS, int_to_bits(value, WIDTH))}
    if extra:
        env.update(extra)
    return env


def eval_word(exprs, env):
    return sum((1 << i) for i, e in enumerate(exprs) if evaluate(e, env))


class TestMux:
    def test_select_true(self):
        m = mux(Var("s"), Var("a"), Var("b"))
        assert evaluate(m, {"s": True, "a": True, "b": False}) is True
        assert evaluate(m, {"s": True, "a": False, "b": True}) is False

    def test_select_false(self):
        m = mux(Var("s"), Var("a"), Var("b"))
        assert evaluate(m, {"s": False, "a": True, "b": False}) is False
        assert evaluate(m, {"s": False, "a": False, "b": True}) is True


class TestConstBits:
    def test_round_trip(self):
        for value in range(8):
            exprs = const_bits(value, 3)
            assert eval_word(exprs, {}) == value

    def test_overflow_rejected(self):
        with pytest.raises(EvaluationError):
            const_bits(8, 3)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 15))
def test_increment_wraps(value):
    exprs = increment_bits(BITS)
    assert eval_word(exprs, env_for(value)) == (value + 1) % 16


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 15))
def test_decrement_wraps(value):
    exprs = decrement_bits(BITS)
    assert eval_word(exprs, env_for(value)) == (value - 1) % 16


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 15), st.integers(0, 31))
def test_add_const(value, constant):
    exprs = add_const_bits(BITS, constant)
    assert eval_word(exprs, env_for(value)) == (value + constant) % 16


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 15), st.integers(0, 15))
def test_add_words(a, b):
    a_bits = [f"a{i}" for i in range(WIDTH)]
    b_bits = [f"c{i}" for i in range(WIDTH)]
    env = {n: v for n, v in zip(a_bits, int_to_bits(a, WIDTH))}
    env.update({n: v for n, v in zip(b_bits, int_to_bits(b, WIDTH))})
    exprs = add_words_bits(a_bits, b_bits)
    assert len(exprs) == WIDTH + 1  # no overflow
    assert eval_word(exprs, env) == a + b


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 15), st.booleans(), st.booleans())
def test_conditional_delta(value, inc, dec):
    exprs = conditional_delta_bits(
        BITS, Const(inc), Const(dec)
    )
    expected = value
    if inc and not dec:
        expected = (value + 1) % 16
    elif dec and not inc:
        expected = (value - 1) % 16
    assert eval_word(exprs, env_for(value)) == expected


class TestIncrementMod:
    @pytest.mark.parametrize("modulus", [2, 3, 5, 8])
    def test_all_values(self, modulus):
        import math

        width = max(1, math.ceil(math.log2(modulus)))
        bits = [f"m{i}" for i in range(width)]
        exprs = increment_mod_bits(bits, modulus)
        for value in range(modulus):
            env = {n: v for n, v in zip(bits, int_to_bits(value, width))}
            assert eval_word(exprs, env) == (value + 1) % modulus

    def test_bad_modulus(self):
        with pytest.raises(ValueError):
            increment_mod_bits(["x"], 3)
        with pytest.raises(ValueError):
            increment_mod_bits(["x", "y"], 1)
