"""Tests for bit-vector lowering against integer semantics."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EvaluationError
from repro.expr import (
    evaluate,
    int_to_bits,
    parse_expr,
    resolve_words,
    word_value,
)

WORDS = {"w": ["w0", "w1", "w2"]}
BITS = WORDS["w"]


def env_for(value, extra=None):
    bits = int_to_bits(value, 3)
    env = {name: bit for name, bit in zip(BITS, bits)}
    if extra:
        env.update(extra)
    return env


class TestIntToBits:
    def test_lsb_first(self):
        assert int_to_bits(5, 3) == [True, False, True]

    def test_zero(self):
        assert int_to_bits(0, 2) == [False, False]

    def test_overflow_rejected(self):
        with pytest.raises(EvaluationError):
            int_to_bits(8, 3)

    def test_negative_rejected(self):
        with pytest.raises(EvaluationError):
            int_to_bits(-1, 3)

    def test_word_value_round_trip(self):
        for value in range(8):
            assert word_value(BITS, env_for(value)) == value


class TestConstComparisons:
    @pytest.mark.parametrize("op", ["==", "!=", "<", "<=", ">", ">="])
    @pytest.mark.parametrize("const", [0, 1, 3, 5, 7])
    def test_lowering_matches_integers(self, op, const):
        lowered = resolve_words(parse_expr(f"w {op} {const}"), WORDS)
        python_op = {
            "==": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }[op]
        for value in range(8):
            assert evaluate(lowered, env_for(value)) == python_op(value, const), (
                f"w={value} {op} {const}"
            )

    def test_out_of_range_eq_is_false(self):
        lowered = resolve_words(parse_expr("w = 9"), WORDS)
        for value in range(8):
            assert evaluate(lowered, env_for(value)) is False

    def test_lt_zero_is_false(self):
        lowered = resolve_words(parse_expr("w < 0"), WORDS)
        for value in range(8):
            assert evaluate(lowered, env_for(value)) is False

    def test_ge_zero_is_true(self):
        lowered = resolve_words(parse_expr("w >= 0"), WORDS)
        for value in range(8):
            assert evaluate(lowered, env_for(value)) is True


class TestWordWordComparisons:
    WORDS2 = {"x": ["x0", "x1"], "y": ["y0", "y1"]}

    def env(self, xv, yv):
        env = {f"x{i}": b for i, b in enumerate(int_to_bits(xv, 2))}
        env.update({f"y{i}": b for i, b in enumerate(int_to_bits(yv, 2))})
        return env

    @pytest.mark.parametrize("op", ["==", "!=", "<", "<=", ">", ">="])
    def test_all_pairs(self, op):
        lowered = resolve_words(parse_expr(f"x {op} y"), self.WORDS2)
        python_op = {
            "==": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }[op]
        for xv, yv in itertools.product(range(4), range(4)):
            assert evaluate(lowered, self.env(xv, yv)) == python_op(xv, yv)

    def test_mixed_width(self):
        words = {"x": ["x0", "x1", "x2"], "y": ["y0"]}
        lowered = resolve_words(parse_expr("x == y"), words)
        env = {f"x{i}": b for i, b in enumerate(int_to_bits(1, 3))}
        env["y0"] = True
        assert evaluate(lowered, env) is True
        env["x1"] = True  # x = 3 now
        assert evaluate(lowered, env) is False


class TestSingleBitComparison:
    def test_bool_signal_as_width_one_word(self):
        lowered = resolve_words(parse_expr("flag = 1"), {})
        assert evaluate(lowered, {"flag": True}) is True
        assert evaluate(lowered, {"flag": False}) is False

    def test_unknown_name_with_strict_bools_rejected(self):
        with pytest.raises(EvaluationError):
            resolve_words(parse_expr("ghost = 1"), {}, frozenset({"real"}))


@settings(max_examples=200, deadline=None)
@given(
    st.integers(0, 15),
    st.integers(0, 20),
    st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
)
def test_property_const_comparison(value, const, op):
    words = {"v": ["v0", "v1", "v2", "v3"]}
    lowered = resolve_words(parse_expr(f"v {op} {const}"), words)
    env = {f"v{i}": b for i, b in enumerate(int_to_bits(value, 4))}
    python_op = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }[op]
    assert evaluate(lowered, env) == python_op(value, const)


@settings(max_examples=200, deadline=None)
@given(st.integers(0, 15), st.integers(0, 15),
       st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
def test_property_word_word_comparison(xv, yv, op):
    words = {"x": ["x0", "x1", "x2", "x3"], "y": ["y0", "y1", "y2", "y3"]}
    lowered = resolve_words(parse_expr(f"x {op} y"), words)
    env = {f"x{i}": b for i, b in enumerate(int_to_bits(xv, 4))}
    env.update({f"y{i}": b for i, b in enumerate(int_to_bits(yv, 4))})
    python_op = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }[op]
    assert evaluate(lowered, env) == python_op(xv, yv)
