"""EngineConfig: validation, codecs (JSON / CLI / pickle), policy compilation.

The config is the one value that carries engine knobs through the system,
so each transport it rides — argparse, JSON reports, process-pool pickling
— gets a round-trip test here.
"""

import argparse
import pickle

import pytest

from repro.bdd import ResourcePolicy
from repro.engine import DEFAULT_CONFIG, EngineConfig
from repro.errors import ConfigError


class TestValidation:
    def test_default_is_valid(self):
        assert EngineConfig().validate() == DEFAULT_CONFIG

    def test_unknown_trans_mode(self):
        with pytest.raises(ConfigError, match="unknown transition mode"):
            EngineConfig(trans="nope")

    def test_negative_gc_threshold(self):
        with pytest.raises(ConfigError, match="gc-threshold"):
            EngineConfig(gc_threshold=-1)

    def test_gc_growth_below_one(self):
        with pytest.raises(ConfigError, match="gc-growth"):
            EngineConfig(gc_growth=0.99)

    def test_negative_cache_threshold(self):
        with pytest.raises(ConfigError, match="cache-threshold"):
            EngineConfig(cache_threshold=-1)

    def test_unknown_telemetry_level(self):
        with pytest.raises(ConfigError, match="unknown telemetry level"):
            EngineConfig(telemetry="verbose")

    def test_unknown_backend(self):
        with pytest.raises(ConfigError, match="unknown BDD backend"):
            EngineConfig(backend="cudd")

    def test_config_error_is_value_error_and_repro_error(self):
        from repro.errors import ReproError

        with pytest.raises(ValueError):
            EngineConfig(trans="nope")
        with pytest.raises(ReproError):
            EngineConfig(trans="nope")

    def test_frozen(self):
        with pytest.raises(Exception):
            EngineConfig().trans = "mono"

    def test_with_replaces_and_revalidates(self):
        cfg = EngineConfig().with_(trans="mono")
        assert cfg.trans == "mono"
        with pytest.raises(ConfigError):
            cfg.with_(gc_threshold=-3)


class TestJsonCodec:
    def test_round_trip(self):
        cfg = EngineConfig(
            trans="mono", gc_threshold=1234, gc_growth=1.5,
            cache_threshold=0, auto_reorder=True, backend="array",
        )
        assert EngineConfig.from_json(cfg.to_json()) == cfg

    def test_default_round_trip(self):
        assert EngineConfig.from_json(EngineConfig().to_json()) == EngineConfig()

    def test_every_knob_explicit_in_json(self):
        payload = EngineConfig().to_json()
        assert set(payload) == {
            "trans", "gc_threshold", "gc_growth", "cache_threshold",
            "auto_reorder", "telemetry", "backend",
        }

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown engine config key"):
            EngineConfig.from_json({"trans": "mono", "warp_drive": True})

    def test_non_object_rejected(self):
        with pytest.raises(ConfigError, match="JSON object"):
            EngineConfig.from_json(["mono"])


class TestCliCodec:
    def _parser(self):
        parser = argparse.ArgumentParser()
        EngineConfig.add_cli_arguments(parser)
        return parser

    @pytest.mark.parametrize("cfg", [
        EngineConfig(),
        EngineConfig(trans="mono"),
        EngineConfig(gc_threshold=0),
        EngineConfig(gc_threshold=500, auto_reorder=True),
        EngineConfig(gc_growth=1.0, cache_threshold=10_000),
        EngineConfig(telemetry="spans"),
        EngineConfig(backend="array"),
        EngineConfig(trans="mono", gc_threshold=1, gc_growth=2.5,
                     cache_threshold=0, auto_reorder=True,
                     telemetry="counters", backend="array"),
    ])
    def test_to_cli_args_round_trips(self, cfg):
        args = self._parser().parse_args(cfg.to_cli_args())
        assert EngineConfig.from_args(args) == cfg

    def test_default_renders_no_flags(self):
        assert EngineConfig().to_cli_args() == []

    def test_from_args_tolerates_missing_attributes(self):
        # Namespaces from parsers without the engine flags (or plain
        # objects) fall back to defaults.
        assert EngineConfig.from_args(argparse.Namespace()) == EngineConfig()


class TestPolicyCompilation:
    def test_default_compiles_to_none(self):
        assert EngineConfig().policy() is None

    def test_trans_alone_compiles_to_none(self):
        # The transition mode is not a resource knob.
        assert EngineConfig(trans="mono").policy() is None

    def test_telemetry_alone_compiles_to_none(self):
        # Telemetry is observational, not a resource knob.
        assert EngineConfig(telemetry="spans").policy() is None

    def test_backend_alone_compiles_to_none(self):
        # The backend is a storage choice, not a resource knob.
        assert EngineConfig(backend="array").policy() is None

    def test_gc_threshold_sets_node_threshold(self):
        policy = EngineConfig(gc_threshold=42).policy()
        assert policy.gc_node_threshold == 42

    def test_zero_disables_gc(self):
        assert not EngineConfig(gc_threshold=0).policy().gc_enabled

    def test_aggressive_equivalent(self):
        cfg = EngineConfig(gc_threshold=1, gc_growth=1.0)
        assert cfg.policy() == ResourcePolicy.aggressive()

    def test_cache_threshold_and_auto_reorder(self):
        policy = EngineConfig(cache_threshold=7, auto_reorder=True).policy()
        assert policy.cache_entry_threshold == 7
        assert policy.auto_reorder


class TestPickle:
    def test_round_trip(self):
        cfg = EngineConfig(trans="mono", gc_threshold=9, auto_reorder=True)
        assert pickle.loads(pickle.dumps(cfg)) == cfg
