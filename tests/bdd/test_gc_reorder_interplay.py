"""Interplay of garbage collection, reordering, and live functions."""

import itertools

from repro.bdd import BDDManager, Function, set_order, sift, swap_adjacent


def _truth_table(f, mgr, names):
    ids = {v: mgr.var_id(v) for v in names}
    return [
        f.evaluate({ids[v]: b for v, b in zip(names, bits)})
        for bits in itertools.product([False, True], repeat=len(names))
    ]


def test_gc_then_reorder_then_gc():
    names = ["a", "b", "c", "d"]
    mgr = BDDManager(names)
    keep = Function(
        mgr,
        mgr.apply_or(
            mgr.apply_and(mgr.var("a"), mgr.var("d")),
            mgr.apply_and(mgr.var("b"), mgr.apply_not(mgr.var("c"))),
        ),
    )
    # Create garbage.
    for i in range(4):
        Function(mgr, mgr.apply_xor(mgr.var(names[i]), mgr.var(names[(i + 1) % 4])))
    table = _truth_table(keep, mgr, names)
    mgr.collect_garbage()
    swap_adjacent(mgr, 1)
    mgr.collect_garbage()
    assert _truth_table(keep, mgr, names) == table


def test_reorder_then_new_operations_consistent():
    names = ["a", "b", "c"]
    mgr = BDDManager(names)
    f = Function(mgr, mgr.apply_and(mgr.var("a"), mgr.var("c")))
    set_order(mgr, ["c", "b", "a"])
    # New operations after reordering must be canonical with old nodes.
    g = Function(mgr, mgr.apply_and(mgr.var("c"), mgr.var("a")))
    assert f == g
    h = f | Function(mgr, mgr.var("b"))
    assert h.satcount() == 5


def test_satcount_stable_across_reorder():
    names = ["x", "y", "z", "w"]
    mgr = BDDManager(names)
    f = Function(
        mgr,
        mgr.apply_or(
            mgr.apply_and(mgr.var("x"), mgr.var("w")),
            mgr.apply_xor(mgr.var("y"), mgr.var("z")),
        ),
    )
    before = f.satcount()
    sift(mgr)
    assert f.satcount() == before


def test_cubes_valid_after_reorder():
    names = ["x", "y", "z"]
    mgr = BDDManager(names)
    f = Function(mgr, mgr.apply_or(mgr.var("x"), mgr.apply_and(mgr.var("y"), mgr.var("z"))))
    set_order(mgr, ["z", "y", "x"])
    for cube in f.iter_cubes():
        # Each cube (extended with anything for free vars) satisfies f.
        env = {mgr.var_id(v): False for v in names}
        env.update(cube)
        assert f.evaluate(env)


def test_gc_keeps_canonicity():
    mgr = BDDManager(["a", "b"])
    f = Function(mgr, mgr.apply_implies(mgr.var("a"), mgr.var("b")))
    mgr.collect_garbage()
    g = Function(mgr, mgr.apply_implies(mgr.var("a"), mgr.var("b")))
    assert f == g


def test_created_nodes_is_monotone():
    mgr = BDDManager(["a", "b", "c"])
    checkpoints = [mgr.created_nodes]
    mgr.apply_and(mgr.var("a"), mgr.var("b"))
    checkpoints.append(mgr.created_nodes)
    mgr.collect_garbage()
    checkpoints.append(mgr.created_nodes)
    mgr.apply_or(mgr.var("a"), mgr.var("c"))
    checkpoints.append(mgr.created_nodes)
    assert checkpoints == sorted(checkpoints)


def test_to_expr_str_renders_cubes():
    mgr = BDDManager(["a", "b"])
    f = mgr.apply_and(mgr.var("a"), mgr.apply_not(mgr.var("b")))
    assert mgr.to_expr_str(f) == "a & !b"
    assert mgr.to_expr_str(0) == "FALSE"
    assert mgr.to_expr_str(1) == "TRUE"
