"""Smoke tests for DOT export."""

from repro.bdd import BDDManager, to_dot


def test_dot_contains_nodes_and_edges():
    mgr = BDDManager(["a", "b"])
    f = mgr.apply_and(mgr.var("a"), mgr.var("b"))
    dot = to_dot(mgr, [("f", f)], title="and")
    assert "digraph" in dot
    assert 'label="a"' in dot
    assert 'label="b"' in dot
    assert "style=dashed" in dot
    assert 'label="and"' in dot


def test_dot_terminals_only():
    mgr = BDDManager(["a"])
    dot = to_dot(mgr, [("t", 1), ("f", 0)])
    assert '0 [shape=box, label="0"]' in dot
    assert '1 [shape=box, label="1"]' in dot
