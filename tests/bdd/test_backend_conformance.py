"""Backend conformance: every node store obeys the same kernel contract.

The :class:`~repro.bdd.backends.base.BDDBackend` interface has exactly one
specification — the ROBDD algebra plus the engine's memoisation contract —
and this suite is that specification as code, run against every registered
backend via the ``backend`` fixture (``tests/conftest.py``):

* **Node invariants** — ordered, reduced, hash-consed: children live on
  strictly deeper levels, no redundant tests (``low != high``), one node
  id per (level, low, high) triple, canonical terminals.
* **Unique-table canonicity** — semantically equal functions built along
  different syntactic routes land on the *same* node id, so equality is
  id comparison; negation is an involution on ids.
* **Op-cache hit semantics** — repeating an operation hits the cache; a
  collection that frees nothing must *keep* the caches; one that frees
  must drop them.  Both shipped backends implement exact (never lossy)
  memoisation, so their hit/miss counters must agree run for run.
* **Counting and enumeration** — ``satcount`` / ``pick_sat`` /
  ``iter_cubes`` / ``iter_sat`` against brute-force truth tables, with
  the enumeration *order* pinned across backends (trace text depends
  on it).
* **Quantification** — ``exist`` / ``forall`` / ``and_exists`` /
  ``and_exists_chain`` / ``restrict`` / ``compose`` against a
  brute-force oracle, including the fused relational-product identity
  ``and_exists(f, g, V) == exists(f & g, V)``.

Deterministic seeded generation (no hypothesis): the point is identical
coverage on every backend, so the scenario set must not vary per run.
"""

import itertools
import random

import pytest

from repro.bdd import BDDManager, Function, ResourcePolicy
from repro.bdd.backends import BACKEND_NAMES, FALSE, TRUE, create_backend
from repro.bdd.backends.base import TERMINAL_LEVEL

VARS = ["a", "b", "c", "d", "e"]

_OPS = ("and", "or", "xor", "implies", "iff")


def _random_expr(rng, depth):
    """A nested-tuple expression tree, the idiom of ``test_properties``."""
    if depth == 0 or rng.random() < 0.2:
        if rng.random() < 0.15:
            return ("const", rng.random() < 0.5)
        return ("var", rng.choice(VARS))
    if rng.random() < 0.25:
        return ("not", _random_expr(rng, depth - 1))
    op = rng.choice(_OPS)
    return (op, _random_expr(rng, depth - 1), _random_expr(rng, depth - 1))


def _expr_pool(seed, count, depth=4):
    rng = random.Random(seed)
    return [_random_expr(rng, depth) for _ in range(count)]


def _build(mgr, expr):
    tag = expr[0]
    if tag == "var":
        return Function.var(mgr, expr[1])
    if tag == "const":
        return Function.true(mgr) if expr[1] else Function.false(mgr)
    if tag == "not":
        return ~_build(mgr, expr[1])
    lhs = _build(mgr, expr[1])
    rhs = _build(mgr, expr[2])
    if tag == "and":
        return lhs & rhs
    if tag == "or":
        return lhs | rhs
    if tag == "xor":
        return lhs ^ rhs
    if tag == "implies":
        return lhs.implies(rhs)
    return lhs.iff(rhs)


def _eval(expr, env):
    tag = expr[0]
    if tag == "var":
        return env[expr[1]]
    if tag == "const":
        return expr[1]
    if tag == "not":
        return not _eval(expr[1], env)
    lhs = _eval(expr[1], env)
    rhs = _eval(expr[2], env)
    return {
        "and": lhs and rhs,
        "or": lhs or rhs,
        "xor": lhs != rhs,
        "implies": (not lhs) or rhs,
        "iff": lhs == rhs,
    }[tag]


def _all_envs():
    for bits in itertools.product([False, True], repeat=len(VARS)):
        yield dict(zip(VARS, bits))


def _manager(backend):
    return BDDManager(VARS, policy=ResourcePolicy.disabled(), backend=backend)


def _id_envs(mgr):
    ids = [mgr.var_id(v) for v in VARS]
    return [
        dict(zip(ids, bits))
        for bits in itertools.product([False, True], repeat=len(ids))
    ]


# ----------------------------------------------------------------------
# Node / complement invariants
# ----------------------------------------------------------------------


class TestNodeInvariants:
    def test_terminals_are_canonical(self, backend):
        b = create_backend(backend)
        assert (FALSE, TRUE) == (0, 1)
        assert b.level_of(FALSE) == TERMINAL_LEVEL
        assert b.level_of(TRUE) == TERMINAL_LEVEL
        assert b.node_count() == 2

    def test_reachable_nodes_are_ordered_and_reduced(self, backend):
        mgr = _manager(backend)
        roots = [_build(mgr, e).node for e in _expr_pool(101, 30)]
        b = mgr.backend
        seen = set()
        stack = [r for r in roots if r not in (FALSE, TRUE)]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            level, low, high = b.level_of(node), b.low_of(node), b.high_of(node)
            assert level < TERMINAL_LEVEL
            assert low != high, "redundant test survived mk()"
            for child in (low, high):
                assert b.level_of(child) > level, "child above parent"
                if child not in (FALSE, TRUE):
                    stack.append(child)
        # Hash-consing: every reachable triple maps back to its node id.
        for node in seen:
            assert b.find(
                b.level_of(node), b.low_of(node), b.high_of(node)
            ) == node

    def test_mk_collapses_redundant_and_dedupes(self, backend):
        b = create_backend(backend)
        assert b.mk(3, TRUE, TRUE) == TRUE
        assert b.mk(3, FALSE, FALSE) == FALSE
        n1 = b.mk(3, FALSE, TRUE)
        n2 = b.mk(3, FALSE, TRUE)
        assert n1 == n2
        assert b.find(3, FALSE, TRUE) == n1
        assert b.find(3, TRUE, FALSE) == -1 or b.find(3, TRUE, FALSE) != n1

    def test_complement_laws_hold_on_ids(self, backend):
        mgr = _manager(backend)
        for expr in _expr_pool(202, 20):
            f = _build(mgr, expr)
            g = ~f
            assert (~g).node == f.node, "negation must be an involution"
            assert (f & g).is_false()
            assert (f | g).is_true()
            if not f.is_true() and not f.is_false():
                assert g.node != f.node


# ----------------------------------------------------------------------
# Unique-table canonicity
# ----------------------------------------------------------------------


class TestCanonicity:
    def test_equal_functions_share_node_ids(self, backend):
        """Different syntactic routes to one function: one node id."""
        mgr = _manager(backend)
        a, b_, c = (Function.var(mgr, v) for v in "abc")
        assert (a & b_).node == (~(~a | ~b_)).node  # De Morgan
        assert (a ^ b_).node == ((a | b_) & ~(a & b_)).node
        assert (a.implies(b_)).node == (~a | b_).node
        assert (a.iff(b_)).node == (~(a ^ b_)).node
        assert (a.ite(b_, c)).node == ((a & b_) | (~a & c)).node

    def test_pool_truth_table_equality_is_id_equality(self, backend):
        mgr = _manager(backend)
        envs = list(_all_envs())
        pool = [(e, _build(mgr, e)) for e in _expr_pool(303, 25)]
        tables = {}
        for expr, fn in pool:
            table = tuple(_eval(expr, env) for env in envs)
            tables.setdefault(table, set()).add(fn.node)
        for table, nodes in tables.items():
            assert len(nodes) == 1, "one truth table, multiple node ids"

    def test_node_count_tracks_unique_table(self, backend):
        b = create_backend(backend)
        assert b.node_count() == b.unique_size() + 2  # terminals
        b.mk(0, FALSE, TRUE)
        b.mk(1, FALSE, TRUE)
        assert b.node_count() == b.unique_size() + 2


# ----------------------------------------------------------------------
# Op-cache hit semantics
# ----------------------------------------------------------------------


class TestOpCacheSemantics:
    def test_repeat_operation_hits_cache(self, backend):
        b = create_backend(backend)
        x = b.mk(0, FALSE, TRUE)
        y = b.mk(1, FALSE, TRUE)
        b.apply_and(x, y)
        hits_before = b.counters()["and_hits"]
        assert b.apply_and(x, y) == b.apply_and(x, y)
        assert b.counters()["and_hits"] > hits_before

    def test_clear_caches_forgets(self, backend):
        b = create_backend(backend)
        x = b.mk(0, FALSE, TRUE)
        y = b.mk(1, FALSE, TRUE)
        b.apply_and(x, y)
        b.clear_caches()
        assert b.cache_entry_count() == 0
        misses_before = b.counters()["and_misses"]
        b.apply_and(x, y)
        assert b.counters()["and_misses"] > misses_before

    def test_collect_that_frees_nothing_keeps_caches(self, backend):
        mgr = _manager(backend)
        a, b_ = Function.var(mgr, "a"), Function.var(mgr, "b")
        f = a & b_
        entries = mgr.backend.cache_entry_count()
        assert entries > 0
        assert mgr.collect_garbage() == 0
        assert mgr.backend.cache_entry_count() == entries
        hits_before = mgr.backend.counters()["and_hits"]
        assert (a & b_).node == f.node
        assert mgr.backend.counters()["and_hits"] > hits_before

    def test_collect_that_frees_drops_caches(self, backend):
        mgr = _manager(backend)
        a, b_ = Function.var(mgr, "a"), Function.var(mgr, "b")
        f = a & b_
        del f
        assert mgr.collect_garbage() > 0
        assert mgr.backend.cache_entry_count() == 0

    def test_counter_parity_across_backends(self):
        """Same op sequence, same hit/miss/probe counters on every
        backend: both implement exact memoisation, so the *work* profile
        — not just the answers — is backend-invariant.  (This is what
        lets ``repro bench`` gate both backends on one expectation.)"""
        pool = _expr_pool(404, 40)

        def profile(name):
            mgr = _manager(name)
            fns = [_build(mgr, e) for e in pool]
            ids = [mgr.var_id(v) for v in VARS]
            acc = Function.true(mgr)
            for fn in fns[:10]:
                acc = acc.and_exists(fn, ids[:2])
            for fn in fns[10:20]:
                fn.exist(ids[1:3])
                fn.forall(ids[3:])
                fn.restrict(ids[0], True)
            counters = dict(mgr.backend.counters())
            counters.pop("created_nodes", None)  # id-space detail
            return counters

        profiles = {name: profile(name) for name in BACKEND_NAMES}
        reference = profiles["dict"]
        for name, counters in profiles.items():
            assert counters == reference, f"backend {name!r} work diverged"


# ----------------------------------------------------------------------
# Counting and enumeration
# ----------------------------------------------------------------------


class TestCountingAndEnumeration:
    def test_satcount_matches_brute_force(self, backend):
        mgr = _manager(backend)
        ids = [mgr.var_id(v) for v in VARS]
        envs = list(_all_envs())
        for expr in _expr_pool(505, 25):
            fn = _build(mgr, expr)
            expected = sum(1 for env in envs if _eval(expr, env))
            assert fn.satcount(ids) == expected

    def test_pick_sat_satisfies(self, backend):
        mgr = _manager(backend)
        ids = [mgr.var_id(v) for v in VARS]
        for expr in _expr_pool(606, 25):
            fn = _build(mgr, expr)
            picked = fn.pick_sat(ids)
            if fn.is_false():
                assert picked is None
            else:
                assert picked is not None
                assert fn.evaluate(picked)

    def test_iter_cubes_partitions_the_sat_set(self, backend):
        mgr = _manager(backend)
        envs = _id_envs(mgr)
        for expr in _expr_pool(707, 15):
            fn = _build(mgr, expr)
            cubes = list(fn.iter_cubes())
            for env in envs:
                matching = [
                    c for c in cubes
                    if all(env[v] == val for v, val in c.items())
                ]
                if fn.evaluate(env):
                    assert len(matching) == 1, "cubes must partition"
                else:
                    assert not matching

    def test_iter_sat_matches_satcount_and_order_is_canonical(self, backend):
        """Enumeration yields exactly satcount assignments, and the order
        matches the dict backend's (the reporting layer's trace text is
        enumeration-order-sensitive)."""
        mgr = _manager(backend)
        ref = _manager("dict")
        ids = [mgr.var_id(v) for v in VARS]
        for expr in _expr_pool(808, 10):
            fn = _build(mgr, expr)
            sats = list(fn.iter_sat(ids))
            assert len(sats) == fn.satcount(ids)
            assert len(sats) == len(
                set(tuple(sorted(s.items())) for s in sats)
            )
            ref_fn = _build(ref, expr)
            assert sats == list(ref_fn.iter_sat(ids))
            assert list(fn.iter_cubes()) == list(ref_fn.iter_cubes())


# ----------------------------------------------------------------------
# Quantification vs brute force
# ----------------------------------------------------------------------


class TestQuantification:
    def _brute_quant(self, expr, env, names, exists):
        combiner = any if exists else all
        return combiner(
            _eval(expr, {**env, **dict(zip(names, bits))})
            for bits in itertools.product([False, True], repeat=len(names))
        )

    @pytest.mark.parametrize("exists", [True, False], ids=["exists", "forall"])
    def test_quantifiers_match_brute_force(self, backend, exists):
        mgr = _manager(backend)
        rng = random.Random(909)
        envs = list(_all_envs())
        for expr in _expr_pool(909, 20):
            names = rng.sample(VARS, rng.randint(1, 3))
            ids = [mgr.var_id(v) for v in names]
            fn = _build(mgr, expr)
            quantified = fn.exist(ids) if exists else fn.forall(ids)
            for env in envs:
                expected = self._brute_quant(expr, env, names, exists)
                assert quantified.evaluate(
                    {mgr.var_id(v): env[v] for v in VARS}
                ) == expected

    def test_and_exists_is_fused_relational_product(self, backend):
        mgr = _manager(backend)
        rng = random.Random(111)
        pool = _expr_pool(111, 30)
        for i in range(0, len(pool) - 1, 2):
            f = _build(mgr, pool[i])
            g = _build(mgr, pool[i + 1])
            names = rng.sample(VARS, rng.randint(1, 3))
            ids = [mgr.var_id(v) for v in names]
            assert f.and_exists(g, ids).node == (f & g).exist(ids).node

    def test_and_exists_chain_matches_unfused(self, backend):
        mgr = _manager(backend)
        rng = random.Random(222)
        pool = _expr_pool(222, 24)
        for i in range(0, len(pool) - 2, 3):
            fns = [_build(mgr, pool[i + j]) for j in range(3)]
            names = rng.sample(VARS, rng.randint(1, 4))
            ids = [mgr.var_id(v) for v in names]
            # All quantification scheduled at the last conjunct — always a
            # legal schedule (no variable dies before its last mention).
            chained = fns[0].and_exists_chain([(fns[1], []), (fns[2], ids)])
            conj = fns[0] & fns[1] & fns[2]
            assert chained.node == conj.exist(ids).node

    def test_restrict_and_compose_match_brute_force(self, backend):
        mgr = _manager(backend)
        rng = random.Random(333)
        pool = _expr_pool(333, 20)
        envs = list(_all_envs())
        for i in range(0, len(pool) - 1, 2):
            expr, sub_expr = pool[i], pool[i + 1]
            fn = _build(mgr, expr)
            name = rng.choice(VARS)
            vid = mgr.var_id(name)
            for value in (False, True):
                restricted = fn.restrict(vid, value)
                for env in envs:
                    assert restricted.evaluate(
                        {mgr.var_id(v): env[v] for v in VARS}
                    ) == _eval(expr, {**env, name: value})
            composed = fn.compose({vid: _build(mgr, sub_expr)})
            for env in envs:
                expected = _eval(expr, {**env, name: _eval(sub_expr, env)})
                assert composed.evaluate(
                    {mgr.var_id(v): env[v] for v in VARS}
                ) == expected
