"""Tests for the Function wrapper (operators, set helpers, guards)."""

import pytest

from repro.bdd import BDDManager, Function
from repro.errors import BDDError


@pytest.fixture
def mgr():
    return BDDManager(["p", "q", "r"])


@pytest.fixture
def p(mgr):
    return Function.var(mgr, "p")


@pytest.fixture
def q(mgr):
    return Function.var(mgr, "q")


class TestOperators:
    def test_and_or_not(self, mgr, p, q):
        conj = p & q
        disj = p | q
        assert conj.subseteq(disj)
        assert (~conj | conj).is_true()
        assert (conj & ~conj).is_false()

    def test_xor(self, p, q):
        assert (p ^ p).is_false()
        assert (p ^ ~p).is_true()

    def test_implies_iff(self, p, q):
        assert p.implies(p).is_true()
        assert p.iff(p).is_true()
        assert (p & q).implies(p).is_true()

    def test_ite(self, mgr, p, q):
        r = Function.var(mgr, "r")
        assert p.ite(q, r) == (p & q) | (~p & r)

    def test_diff(self, p, q):
        assert (p.diff(q)) == (p & ~q)

    def test_constants(self, mgr):
        assert Function.true(mgr).is_true()
        assert Function.false(mgr).is_false()


class TestSetPredicates:
    def test_subseteq(self, p, q):
        assert (p & q).subseteq(p)
        assert not p.subseteq(p & q)

    def test_intersects(self, p, q):
        assert p.intersects(q)
        assert not p.intersects(~p)


class TestGuards:
    def test_bool_raises(self, p):
        with pytest.raises(TypeError):
            bool(p)

    def test_cross_manager_rejected(self, p):
        other = BDDManager(["p"])
        with pytest.raises(BDDError):
            _ = p & Function.var(other, "p")

    def test_non_function_rejected(self, p):
        with pytest.raises(TypeError):
            _ = p & 1


class TestIntrospection:
    def test_support_names(self, mgr, p, q):
        assert (p & q).support_names() == ["p", "q"]

    def test_satcount_default_all_vars(self, mgr, p):
        assert p.satcount() == 4  # q, r free

    def test_equality_and_hash(self, mgr, p, q):
        again = Function.var(mgr, "p")
        assert p == again
        assert hash(p) == hash(again)
        assert p != q

    def test_pick_sat_evaluates_true(self, mgr, p, q):
        f = p & ~q
        ids = [mgr.var_id(n) for n in ["p", "q", "r"]]
        assignment = f.pick_sat(ids)
        assert f.evaluate(assignment)

    def test_exist_via_wrapper(self, mgr, p, q):
        f = (p & q).exist([mgr.var_id("p")])
        assert f == q

    def test_rename_via_wrapper(self, mgr, p):
        renamed = p.rename({mgr.var_id("p"): mgr.var_id("q")})
        assert renamed == Function.var(mgr, "q")
