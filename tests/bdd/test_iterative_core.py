"""Depth-robustness of the iterative BDD core.

Every traversal in :mod:`repro.bdd.manager` runs on an explicit work stack,
so BDD depth is bounded by memory, not ``sys.getrecursionlimit()``.  These
tests drive each operation through chains well past Python's default
recursion limit (1000) — the exact shape that crashed the old recursive
engine at ~1200 levels — *without* touching the recursion limit, and
cross-check the small-case semantics against brute-force evaluation.
"""

import sys

import pytest

from repro.bdd import BDDManager, Function
from repro.bdd.manager import FALSE, TRUE

#: Comfortably past the default recursion limit (and past the ~1200-level
#: point where the recursive engine fell over).
DEEP = 1600


@pytest.fixture(scope="module")
def deep_mgr():
    assert sys.getrecursionlimit() <= 1100, (
        "these tests prove depth-independence; raising the recursion limit "
        "would mask a regression"
    )
    return BDDManager([f"x{i}" for i in range(DEEP)])


def _vars(m, count=DEEP):
    return [m.var(f"x{i}") for i in range(count)]


@pytest.fixture(scope="module")
def deep_conj(deep_mgr):
    """The depth-DEEP conjunction chain, built once (chains are O(n^2))."""
    conj = TRUE
    for node in _vars(deep_mgr):
        conj = deep_mgr.apply_and(conj, node)
    return conj


def test_deep_and_or_chain(deep_mgr, deep_conj):
    m = deep_mgr
    disj = FALSE
    for node in _vars(m):
        disj = m.apply_or(disj, node)
    assert m.satcount(deep_conj) == 1
    assert m.satcount(disj) == 2 ** DEEP - 1
    # Negation at depth: De Morgan duals of the two chains.
    assert m.satcount(m.apply_not(deep_conj)) == 2 ** DEEP - 1
    assert m.apply_not(m.apply_not(disj)) == disj


def test_deep_xor_parity(deep_mgr):
    m = deep_mgr
    parity = FALSE
    for node in _vars(m):
        parity = m.apply_xor(parity, node)
    # The parity function has exactly half of all assignments satisfying.
    assert m.satcount(parity) == 2 ** (DEEP - 1)
    # apply_not at depth, and the involution cache.
    assert m.apply_not(m.apply_not(parity)) == parity


def test_deep_ite(deep_mgr, deep_conj):
    m = deep_mgr
    top = m.var("x0")
    picked = m.ite(top, deep_conj, m.apply_not(deep_conj))
    assert m.satcount(m.apply_and(picked, top)) == 1


def test_deep_exists_forall(deep_mgr, deep_conj):
    m = deep_mgr
    evens = [m.var_id(f"x{i}") for i in range(0, DEEP, 2)]
    gone = m.exists(deep_conj, evens)
    assert m.satcount(gone) == 2 ** (DEEP // 2)
    assert m.forall(deep_conj, evens) == FALSE


def test_deep_and_exists(deep_mgr):
    m = deep_mgr
    f = TRUE
    g = TRUE
    for i in range(0, DEEP, 2):
        f = m.apply_and(f, m.var(f"x{i}"))
        g = m.apply_and(g, m.var(f"x{i + 1}"))
    everything = [m.var_id(f"x{i}") for i in range(DEEP)]
    assert m.and_exists(f, g, everything) == TRUE
    assert m.and_exists(f, m.apply_not(f), everything) == FALSE


def test_deep_restrict_compose_rename():
    m = BDDManager([f"x{i}" for i in range(DEEP)] + [f"y{i}" for i in range(DEEP)])
    conj = TRUE
    for i in range(DEEP):
        conj = m.apply_and(conj, m.var(f"x{i}"))
    fixed = m.restrict(conj, m.var_id(f"x{DEEP - 1}"), True)
    assert m.satcount(fixed, list(range(DEEP))) == 2
    assert m.restrict(conj, m.var_id("x0"), False) == FALSE
    # Rename the whole chain onto the y block (monotone fast path).
    renamed = m.rename(
        conj, {m.var_id(f"x{i}"): m.var_id(f"y{i}") for i in range(DEEP)}
    )
    y_ids = [m.var_id(f"y{i}") for i in range(DEEP)]
    assert m.satcount(renamed, y_ids) == 1
    # Compose substitutes a function for a deep variable.
    swapped = m.compose(conj, m.var_id(f"x{DEEP - 1}"), m.var("y0"))
    assert m.satcount(swapped, list(range(DEEP)) + [m.var_id("y0")]) == 2


def test_deep_iter_cubes_and_pick_sat(deep_mgr, deep_conj):
    m = deep_mgr
    conj = deep_conj
    cubes = list(m.iter_cubes(conj))
    assert len(cubes) == 1
    assert len(cubes[0]) == DEEP
    assert all(cubes[0].values())
    picked = m.pick_sat(conj, [m.var_id(f"x{i}") for i in range(DEEP)])
    assert picked == cubes[0]


def test_deep_function_wrapper_roundtrip():
    m = BDDManager([f"v{i}" for i in range(DEEP)])
    out = Function.true(m)
    for i in range(DEEP):
        out = out & Function.var(m, f"v{i}")
    assert out.satcount() == 1
    assert (~out | out).is_true()


class TestSmallCaseSemantics:
    """The iterative rewrites agree with brute-force truth tables."""

    NAMES = ["a", "b", "c", "d"]

    def _envs(self, m):
        import itertools

        ids = [m.var_id(n) for n in self.NAMES]
        for bits in itertools.product([False, True], repeat=len(ids)):
            yield dict(zip(ids, bits))

    def test_binary_ops_truth_tables(self):
        m = BDDManager(self.NAMES)
        a, b = m.var("a"), m.var("b")
        cd = m.apply_and(m.var("c"), m.var("d"))
        for env in self._envs(m):
            ev = lambda n: m.eval_node(n, env)  # noqa: E731
            assert ev(m.apply_and(a, cd)) == (ev(a) and ev(cd))
            assert ev(m.apply_or(b, cd)) == (ev(b) or ev(cd))
            assert ev(m.apply_xor(a, cd)) == (ev(a) != ev(cd))
            assert ev(m.ite(a, b, cd)) == (ev(b) if ev(a) else ev(cd))
            assert ev(m.apply_not(cd)) == (not ev(cd))

    def test_quantification_truth_tables(self):
        m = BDDManager(self.NAMES)
        f = m.apply_or(
            m.apply_and(m.var("a"), m.var("c")),
            m.apply_and(m.var("b"), m.var("d")),
        )
        b_id = m.var_id("b")
        ex = m.exists(f, [b_id])
        fa = m.forall(f, [b_id])
        for env in self._envs(m):
            lo = dict(env)
            lo[b_id] = False
            hi = dict(env)
            hi[b_id] = True
            assert m.eval_node(ex, env) == (
                m.eval_node(f, lo) or m.eval_node(f, hi)
            )
            assert m.eval_node(fa, env) == (
                m.eval_node(f, lo) and m.eval_node(f, hi)
            )
        assert m.and_exists(f, m.var("a"), [b_id]) == m.exists(
            m.apply_and(f, m.var("a")), [b_id]
        )


class TestPickSatContract:
    """pick_sat assigns exactly the requested variables (the old
    implementation leaked support variables outside ``variables``)."""

    def test_support_outside_variables_is_projected(self):
        m = BDDManager(["a", "b", "c"])
        f = m.apply_and(m.var("a"), m.var("c"))
        ids = [m.var_id("a"), m.var_id("b")]
        assignment = m.pick_sat(f, ids)
        assert set(assignment) == set(ids)
        assert assignment[m.var_id("a")] is True

    def test_dont_cares_default_false(self):
        m = BDDManager(["a", "b"])
        f = m.var("a")
        assignment = m.pick_sat(f, [m.var_id("a"), m.var_id("b")])
        assert assignment == {m.var_id("a"): True, m.var_id("b"): False}

    def test_wrapper_contract(self):
        m = BDDManager(["p", "q", "r"])
        f = Function.var(m, "p") & Function.var(m, "r")
        ids = [m.var_id("p"), m.var_id("q")]
        assignment = f.pick_sat(ids)
        assert set(assignment) == set(ids)
