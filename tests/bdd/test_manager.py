"""Unit tests for the core BDD manager operations."""

import pytest

from repro.bdd import FALSE, TRUE, BDDManager
from repro.errors import BDDError


@pytest.fixture
def mgr():
    return BDDManager(["a", "b", "c", "d"])


class TestVariables:
    def test_declaration_order_is_level_order(self, mgr):
        assert mgr.current_order() == ["a", "b", "c", "d"]
        assert mgr.var_level(mgr.var_id("a")) == 0
        assert mgr.var_level(mgr.var_id("d")) == 3

    def test_duplicate_declaration_rejected(self, mgr):
        with pytest.raises(BDDError):
            mgr.add_var("a")

    def test_unknown_variable_rejected(self, mgr):
        with pytest.raises(BDDError):
            mgr.var_id("nope")

    def test_var_creates_on_demand(self):
        m = BDDManager()
        node = m.var("x")
        assert node > TRUE
        assert m.var_name(m.var_id("x")) == "x"

    def test_nvar_is_negation_of_var(self, mgr):
        a = mgr.var("a")
        na = mgr.nvar("a")
        assert mgr.apply_not(a) == na
        assert mgr.apply_and(a, na) == FALSE
        assert mgr.apply_or(a, na) == TRUE


class TestHashConsing:
    def test_identical_expressions_share_nodes(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.apply_and(a, b)
        g = mgr.apply_and(b, a)
        assert f == g

    def test_reduction_removes_redundant_tests(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        # a & b | a & ~b == a
        f = mgr.apply_or(mgr.apply_and(a, b), mgr.apply_and(a, mgr.apply_not(b)))
        assert f == a

    def test_de_morgan(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        lhs = mgr.apply_not(mgr.apply_and(a, b))
        rhs = mgr.apply_or(mgr.apply_not(a), mgr.apply_not(b))
        assert lhs == rhs


class TestIte:
    def test_ite_terminal_cases(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.ite(TRUE, a, b) == a
        assert mgr.ite(FALSE, a, b) == b
        assert mgr.ite(a, b, b) == b
        assert mgr.ite(a, TRUE, FALSE) == a

    def test_ite_equals_composition_of_and_or(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        lhs = mgr.ite(a, b, c)
        rhs = mgr.apply_or(mgr.apply_and(a, b), mgr.apply_and(mgr.apply_not(a), c))
        assert lhs == rhs

    def test_xor_via_ite(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.apply_xor(a, b) == mgr.ite(a, mgr.apply_not(b), b)

    def test_iff_implies(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        iff = mgr.apply_iff(a, b)
        both = mgr.apply_and(mgr.apply_implies(a, b), mgr.apply_implies(b, a))
        assert iff == both


class TestQuantification:
    def test_exists_removes_variable(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.apply_and(a, b)
        g = mgr.exists(f, [mgr.var_id("a")])
        assert g == b

    def test_exists_of_tautology_pair(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.apply_or(mgr.apply_and(a, b), mgr.apply_and(mgr.apply_not(a), b))
        assert mgr.exists(f, [mgr.var_id("a")]) == b

    def test_forall_dual_of_exists(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = mgr.apply_or(mgr.apply_and(a, b), c)
        vars_ = [mgr.var_id("a"), mgr.var_id("b")]
        lhs = mgr.forall(f, vars_)
        rhs = mgr.apply_not(mgr.exists(mgr.apply_not(f), vars_))
        assert lhs == rhs

    def test_and_exists_matches_two_step(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = mgr.apply_or(a, b)
        g = mgr.apply_or(mgr.apply_not(a), c)
        vars_ = [mgr.var_id("a")]
        fused = mgr.and_exists(f, g, vars_)
        two_step = mgr.exists(mgr.apply_and(f, g), vars_)
        assert fused == two_step

    def test_empty_quantification_is_identity(self, mgr):
        a = mgr.var("a")
        assert mgr.exists(a, []) == a
        assert mgr.forall(a, []) == a


class TestRestrictComposeRename:
    def test_restrict_cofactors(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.apply_and(a, b)
        assert mgr.restrict(f, mgr.var_id("a"), True) == b
        assert mgr.restrict(f, mgr.var_id("a"), False) == FALSE

    def test_compose_substitutes_function(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = mgr.apply_and(a, b)
        g = mgr.apply_or(b, c)
        composed = mgr.compose(f, mgr.var_id("a"), g)
        expected = mgr.apply_and(g, b)
        assert composed == expected

    def test_compose_many_is_simultaneous(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.apply_and(a, mgr.apply_not(b))
        swapped = mgr.compose_many(f, {mgr.var_id("a"): b, mgr.var_id("b"): a})
        expected = mgr.apply_and(b, mgr.apply_not(a))
        assert swapped == expected

    def test_rename_monotone_fast_path(self):
        m = BDDManager(["x0", "x0n", "x1", "x1n"])
        x0, x1 = m.var("x0"), m.var("x1")
        f = m.apply_and(x0, m.apply_not(x1))
        renamed = m.rename(
            f, {m.var_id("x0"): m.var_id("x0n"), m.var_id("x1"): m.var_id("x1n")}
        )
        expected = m.apply_and(m.var("x0n"), m.apply_not(m.var("x1n")))
        assert renamed == expected

    def test_rename_swap_falls_back_to_compose(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.apply_and(a, mgr.apply_not(b))
        renamed = mgr.rename(f, {mgr.var_id("a"): mgr.var_id("b"),
                                 mgr.var_id("b"): mgr.var_id("a")})
        expected = mgr.apply_and(b, mgr.apply_not(a))
        assert renamed == expected


class TestSatcount:
    def test_satcount_terminals(self, mgr):
        assert mgr.satcount(FALSE) == 0
        assert mgr.satcount(TRUE) == 2 ** 4

    def test_satcount_single_literal(self, mgr):
        assert mgr.satcount(mgr.var("a")) == 2 ** 3

    def test_satcount_conjunction(self, mgr):
        f = mgr.apply_and(mgr.var("a"), mgr.var("b"))
        assert mgr.satcount(f) == 2 ** 2

    def test_satcount_over_subset(self, mgr):
        f = mgr.apply_and(mgr.var("a"), mgr.var("b"))
        ids = [mgr.var_id("a"), mgr.var_id("b")]
        assert mgr.satcount(f, ids) == 1

    def test_satcount_interleaved_variable_set(self):
        m = BDDManager(["s0", "n0", "s1", "n1"])
        f = m.apply_or(m.var("s0"), m.var("s1"))
        state_ids = [m.var_id("s0"), m.var_id("s1")]
        assert m.satcount(f, state_ids) == 3

    def test_satcount_support_escape_rejected(self, mgr):
        f = mgr.var("c")
        with pytest.raises(BDDError):
            mgr.satcount(f, [mgr.var_id("a")])

    def test_satcount_xor_is_half(self, mgr):
        f = mgr.apply_xor(mgr.var("a"), mgr.var("b"))
        assert mgr.satcount(f) == 2 ** 3


class TestEnumeration:
    def test_iter_cubes_of_literal(self, mgr):
        cubes = list(mgr.iter_cubes(mgr.var("a")))
        assert cubes == [{mgr.var_id("a"): True}]

    def test_iter_sat_expands_dont_cares(self, mgr):
        f = mgr.var("a")
        ids = [mgr.var_id("a"), mgr.var_id("b")]
        sats = sorted(
            tuple(sorted(s.items())) for s in mgr.iter_sat(f, ids)
        )
        assert len(sats) == 2
        assert all(dict(s)[mgr.var_id("a")] is True for s in sats)

    def test_iter_sat_rejects_support_escape(self, mgr):
        f = mgr.apply_and(mgr.var("a"), mgr.var("c"))
        with pytest.raises(BDDError):
            list(mgr.iter_sat(f, [mgr.var_id("a")]))

    def test_pick_sat_none_for_false(self, mgr):
        assert mgr.pick_sat(FALSE, [mgr.var_id("a")]) is None

    def test_pick_sat_satisfies(self, mgr):
        f = mgr.apply_and(mgr.var("a"), mgr.apply_not(mgr.var("b")))
        assignment = mgr.pick_sat(f, [mgr.var_id(n) for n in "abcd"])
        assert mgr.eval_node(f, assignment) is True

    def test_eval_node(self, mgr):
        f = mgr.apply_or(mgr.var("a"), mgr.var("b"))
        ids = {n: mgr.var_id(n) for n in "abcd"}
        assert mgr.eval_node(
            f, {ids["a"]: False, ids["b"]: True, ids["c"]: False, ids["d"]: False}
        )
        assert not mgr.eval_node(
            f, {ids["a"]: False, ids["b"]: False, ids["c"]: True, ids["d"]: True}
        )

    def test_cube_roundtrip(self, mgr):
        ids = {n: mgr.var_id(n) for n in "ab"}
        assignment = {ids["a"]: True, ids["b"]: False}
        node = mgr.cube(assignment)
        cubes = list(mgr.iter_cubes(node))
        assert cubes == [assignment]


class TestSupportAndSize:
    def test_support_names(self, mgr):
        f = mgr.apply_and(mgr.var("a"), mgr.var("c"))
        assert [mgr.var_name(v) for v in mgr.support(f)] == ["a", "c"]

    def test_support_of_terminal_empty(self, mgr):
        assert mgr.support(TRUE) == []
        assert mgr.support(FALSE) == []

    def test_size_counts_dag_nodes(self, mgr):
        a = mgr.var("a")
        assert mgr.size(a) == 3  # a node + two terminals
        assert mgr.size(TRUE) == 1


class TestGarbageCollection:
    def test_gc_reclaims_dead_nodes(self):
        m = BDDManager([f"v{i}" for i in range(8)])
        f = m.var("v0")
        for i in range(1, 8):
            f = m.apply_and(f, m.var(f"v{i}"))
        before = m.node_count()
        del f
        freed = m.collect_garbage()
        assert freed > 0
        assert m.node_count() < before

    def test_gc_preserves_live_functions(self):
        from repro.bdd import Function

        m = BDDManager(["a", "b", "c"])
        f = Function(m, m.apply_and(m.var("a"), m.var("b")))
        m.collect_garbage()
        # The function must still evaluate correctly after GC.
        ids = {n: m.var_id(n) for n in "abc"}
        assert f.evaluate({ids["a"]: True, ids["b"]: True, ids["c"]: False})

    def test_gc_reuses_slots(self):
        m = BDDManager(["a", "b"])
        g = m.apply_and(m.var("a"), m.var("b"))
        m.collect_garbage(extra_roots=[])
        # Recreate the same function: must be found or rebuilt consistently.
        g2 = m.apply_and(m.var("a"), m.var("b"))
        assert m.eval_node(
            g2, {m.var_id("a"): True, m.var_id("b"): True}
        )
