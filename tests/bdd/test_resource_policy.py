"""The automatic resource manager: policies, safe points, eviction, sifting.

Covers the :class:`~repro.bdd.policy.ResourcePolicy` knobs end to end:
auto-GC triggering and trigger growth, the compose-cache generation purge,
the cache-entry cap, the opt-in auto-sift hook, pin protection for
in-flight cube iterators, and the resource counters surfaced through
:class:`~repro.mc.stats.WorkMeter`.
"""

import itertools

import pytest

from repro.bdd import BDDManager, Function, ResourcePolicy
from repro.mc.stats import WorkMeter


def _burn(mgr, rounds=6, width=8):
    """Create garbage: transient functions that go dead immediately."""
    for r in range(rounds):
        acc = Function.false(mgr)
        for i in range(width):
            acc = acc | (
                Function.var(mgr, f"v{i}") & ~Function.var(mgr, f"v{(i + r) % width}")
            )
    return acc


@pytest.fixture
def names():
    return [f"v{i}" for i in range(8)]


class TestPolicyValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ResourcePolicy(gc_node_threshold=-1)
        with pytest.raises(ValueError):
            ResourcePolicy(gc_growth=0.5)
        with pytest.raises(ValueError):
            ResourcePolicy(compose_generations=0)
        with pytest.raises(ValueError):
            ResourcePolicy(reorder_growth=0.9)

    def test_presets(self):
        assert ResourcePolicy.aggressive().gc_growth == 1.0
        assert not ResourcePolicy.disabled().gc_enabled
        assert ResourcePolicy().gc_enabled
        assert ResourcePolicy().with_(auto_reorder=True).auto_reorder


class TestAutoGC:
    def test_triggers_at_threshold(self, names):
        mgr = BDDManager(names, policy=ResourcePolicy(gc_node_threshold=40))
        _burn(mgr)
        assert mgr.gc_runs >= 1
        # Collected garbage: far fewer live nodes than were ever created.
        assert mgr.node_count() < mgr.created_nodes

    def test_disabled_policy_never_collects(self, names):
        mgr = BDDManager(names, policy=ResourcePolicy.disabled())
        _burn(mgr)
        assert mgr.gc_runs == 0

    def test_trigger_grows_after_collection(self, names):
        mgr = BDDManager(names, policy=ResourcePolicy(gc_node_threshold=40, gc_growth=2.0))
        _burn(mgr)
        runs_first_wave = mgr.gc_runs
        assert runs_first_wave >= 1
        # The grown trigger spaces collections out: burning the same amount
        # again must not double the GC count run for run.
        _burn(mgr)
        assert mgr.gc_runs - runs_first_wave <= runs_first_wave + 1

    def test_aggressive_policy_collects_every_safe_point(self, names):
        mgr = BDDManager(names, policy=ResourcePolicy.aggressive())
        before = mgr.gc_runs
        f = Function.var(mgr, "v0") & Function.var(mgr, "v1")
        g = f | Function.var(mgr, "v2")
        assert mgr.gc_runs >= before + 2  # one per wrapper creation
        # ... and the survivors still denote the right functions.
        ids = {n: mgr.var_id(n) for n in ("v0", "v1", "v2")}
        assert g.evaluate({ids["v0"]: True, ids["v1"]: True, ids["v2"]: False})

    def test_functions_survive_forced_gc(self, names):
        mgr = BDDManager(names, policy=ResourcePolicy.aggressive())
        funcs = []
        for i in range(4):
            funcs.append(
                Function.var(mgr, f"v{i}") ^ Function.var(mgr, f"v{(i + 1) % 8}")
            )
        tables = []
        ids = [mgr.var_id(n) for n in names]
        envs = [
            dict(zip(ids, bits))
            for bits in itertools.product([False, True], repeat=len(ids))
        ]
        tables = [[f.evaluate(e) for e in envs] for f in funcs]
        _burn(mgr)  # plenty of safe points, GC at every one
        assert [[f.evaluate(e) for e in envs] for f in funcs] == tables

    def test_set_policy_rearms_triggers(self, names):
        mgr = BDDManager(names)  # default: high threshold
        _burn(mgr)
        assert mgr.gc_runs == 0
        mgr.set_policy(ResourcePolicy(gc_node_threshold=40))
        _burn(mgr)
        assert mgr.gc_runs >= 1


class TestCacheEviction:
    def test_cache_entry_cap_clears_caches(self, names):
        mgr = BDDManager(
            names,
            policy=ResourcePolicy(
                gc_node_threshold=0, cache_entry_threshold=25
            ),
        )
        _burn(mgr)
        # The cap kept the combined caches bounded (clears happen at safe
        # points, so a single large operation may briefly exceed it).
        assert mgr.cache_entry_count() <= 200

    def test_compose_cache_generation_purge(self):
        mgr = BDDManager(
            ["a", "b", "c"],
            policy=ResourcePolicy(gc_node_threshold=0, compose_generations=3),
        )
        f = mgr.apply_and(mgr.var("a"), mgr.var("b"))
        for _ in range(10):
            mgr.compose(f, mgr.var_id("b"), mgr.var("c"))
        # Stale generations were purged: the cache holds at most the last
        # `compose_generations` substitutions' entries.
        backend = mgr.backend
        assert len(backend._compose_cache) <= 3 * mgr.node_count()
        assert backend._compose_token == 10
        assert backend._compose_purged_token >= 10 - 3

    def test_compose_still_correct_across_purges(self):
        mgr = BDDManager(
            ["a", "b", "c"],
            policy=ResourcePolicy(gc_node_threshold=0, compose_generations=1),
        )
        f = mgr.apply_and(mgr.var("a"), mgr.var("b"))
        expected = mgr.apply_and(mgr.var("a"), mgr.var("c"))
        for _ in range(4):
            assert mgr.compose(f, mgr.var_id("b"), mgr.var("c")) == expected


class TestAutoSift:
    def test_auto_reorder_hook_fires(self):
        # The x0..x2/y0..y2 blocked order is exponential; interleaving is
        # linear — the classic sifting win.
        names = [f"x{i}" for i in range(3)] + [f"y{i}" for i in range(3)]
        mgr = BDDManager(
            names,
            policy=ResourcePolicy(
                gc_node_threshold=0,
                auto_reorder=True,
                reorder_node_threshold=10,
            ),
        )
        f = Function.false(mgr)
        for i in range(3):
            f = f | (Function.var(mgr, f"x{i}") & Function.var(mgr, f"y{i}"))
        assert mgr._reorder_runs >= 1
        # Sifting moved variables but the function did not change:
        # |(x0&y0) | (x1&y1) | (x2&y2)| = 2^6 - 3^3 (no pair fully true).
        assert f.satcount() == 2 ** 6 - 3 ** 3

    def test_auto_reorder_off_by_default(self, names):
        mgr = BDDManager(names)
        _burn(mgr)
        assert mgr._reorder_runs == 0


class TestExternalRootIdentity:
    def test_equal_wrappers_are_independent_roots(self):
        """Function equality is structural, so the external-root registry
        must key wrappers by identity: if it deduplicated equal wrappers
        (as a WeakSet would), dropping one would unroot the node a second,
        still-live wrapper denotes — and GC would recycle it under its
        feet.  Regression test for exactly that unsoundness."""
        mgr = BDDManager(["a", "b"], policy=ResourcePolicy.disabled())
        first = Function.var(mgr, "a") & Function.var(mgr, "b")
        second = Function.var(mgr, "a") & Function.var(mgr, "b")
        assert first == second and first is not second
        del first  # the equal twin must keep the node rooted
        mgr.collect_garbage()
        ids = {n: mgr.var_id(n) for n in "ab"}
        assert second.evaluate({ids["a"]: True, ids["b"]: True})
        assert not second.evaluate({ids["a"]: True, ids["b"]: False})
        # The node was not recycled: rebuilding the function finds it again.
        rebuilt = Function.var(mgr, "a") & Function.var(mgr, "b")
        assert rebuilt.node == second.node

    def test_dead_wrappers_leave_registry(self):
        mgr = BDDManager(["a"], policy=ResourcePolicy.disabled())
        before = len(mgr._external)
        f = Function.var(mgr, "a")
        assert len(mgr._external) == before + 1
        del f
        import gc as _pygc

        _pygc.collect()
        assert len(mgr._external) == before


class TestPins:
    def test_iter_cubes_survives_gc_between_yields(self):
        mgr = BDDManager(
            ["a", "b", "c", "d"], policy=ResourcePolicy.aggressive()
        )
        f = (Function.var(mgr, "a") & Function.var(mgr, "b")) | (
            Function.var(mgr, "c") & Function.var(mgr, "d")
        )
        node = f.node
        del f  # drop the only wrapper: the iterator's pin must keep the cone
        cubes = []
        for cube in mgr.iter_cubes(node):
            # Trigger safe points (and therefore forced GCs) mid-iteration.
            Function.var(mgr, "a")
            Function.var(mgr, "b") & Function.var(mgr, "c")
            cubes.append(cube)
        ids = {n: mgr.var_id(n) for n in "abcd"}
        # Every cube (free variables set to False where possible) satisfies
        # the original function, and the a&b path is among them.
        assert len(cubes) == 3
        assert {ids["a"]: True, ids["b"]: True} in cubes
        for cube in cubes:
            env = {ids[n]: False for n in "abcd"}
            env.update(cube)
            assert (env[ids["a"]] and env[ids["b"]]) or (
                env[ids["c"]] and env[ids["d"]]
            )
        assert not mgr._pinned  # unpinned on exhaustion


class TestCounters:
    def test_workmeter_reports_gc_and_peak(self, names):
        mgr = BDDManager(names, policy=ResourcePolicy(gc_node_threshold=40))
        with WorkMeter(mgr) as meter:
            _burn(mgr)
        stats = meter.stats
        assert stats.gc_runs == mgr.gc_runs >= 1
        assert 0.0 <= stats.gc_seconds <= stats.seconds + 1.0
        assert stats.peak_live_nodes >= stats.nodes_live
        assert stats.peak_live_nodes >= 40

    def test_stats_addition_aggregates(self):
        from repro.mc.stats import WorkStats

        a = WorkStats(seconds=1.0, gc_runs=2, gc_seconds=0.1, peak_live_nodes=50)
        b = WorkStats(seconds=2.0, gc_runs=1, gc_seconds=0.2, peak_live_nodes=80)
        total = a + b
        assert total.gc_runs == 3
        assert total.gc_seconds == pytest.approx(0.3)
        assert total.peak_live_nodes == 80

    def test_resource_stats_dict(self, names):
        mgr = BDDManager(names, policy=ResourcePolicy(gc_node_threshold=40))
        _burn(mgr)
        stats = mgr.resource_stats()
        assert stats["gc_runs"] == mgr.gc_runs
        assert stats["peak_live_nodes"] >= stats["nodes_live"]
        assert stats["gc_freed"] > 0


class TestSiftUsesLiveSizes:
    def test_sift_ignores_dead_nodes(self):
        from repro.bdd import sift

        names = [f"x{i}" for i in range(3)] + [f"y{i}" for i in range(3)]
        mgr = BDDManager(names, policy=ResourcePolicy.disabled())
        f = Function.false(mgr)
        for i in range(3):
            f = f | (Function.var(mgr, f"x{i}") & Function.var(mgr, f"y{i}"))
        # Pile up garbage so the unique table badly misrepresents live size.
        for i in range(3):
            Function(
                mgr,
                mgr.apply_xor(mgr.var(f"x{i}"), mgr.var(f"y{(i + 1) % 3}")),
            )
        table_size_before = mgr.backend.unique_size()
        live_before = mgr.live_node_count()
        assert table_size_before > live_before - 2  # garbage present
        improvement = sift(mgr)
        # Sifting measured live sizes: the blocked->interleaved win shows.
        assert improvement <= 0
        assert mgr.live_node_count() <= live_before
        # Placement used live counts, not the garbage-skewed table: the
        # interleaved optimum keeps the function linear-sized.
        assert f.size() <= 2 * 3 * 2 + 2
