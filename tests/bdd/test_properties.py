"""Property-based tests: the BDD engine against brute-force truth tables.

Strategy: generate random Boolean expression trees over a small variable set,
build them both as BDD nodes and as Python closures, and compare on every
assignment.  This pins down the entire operator surface (including the fused
``and_exists``) against an independent evaluator.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import FALSE, TRUE, BDDManager

VARS = ["a", "b", "c", "d", "e"]


# An expression is a nested tuple tree:
#   ("var", name) | ("const", bool) | ("not", e) | (op, e1, e2)
def _exprs(depth):
    leaf = st.one_of(
        st.sampled_from([("var", v) for v in VARS]),
        st.sampled_from([("const", True), ("const", False)]),
    )
    if depth == 0:
        return leaf
    sub = _exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.just("not"), sub),
        st.tuples(st.sampled_from(["and", "or", "xor", "implies", "iff"]), sub, sub),
    )


EXPR = _exprs(4)


def build_bdd(mgr, expr):
    tag = expr[0]
    if tag == "var":
        return mgr.var(expr[1])
    if tag == "const":
        return TRUE if expr[1] else FALSE
    if tag == "not":
        return mgr.apply_not(build_bdd(mgr, expr[1]))
    lhs = build_bdd(mgr, expr[1])
    rhs = build_bdd(mgr, expr[2])
    op = {
        "and": mgr.apply_and,
        "or": mgr.apply_or,
        "xor": mgr.apply_xor,
        "implies": mgr.apply_implies,
        "iff": mgr.apply_iff,
    }[tag]
    return op(lhs, rhs)


def eval_expr(expr, env):
    tag = expr[0]
    if tag == "var":
        return env[expr[1]]
    if tag == "const":
        return expr[1]
    if tag == "not":
        return not eval_expr(expr[1], env)
    lhs = eval_expr(expr[1], env)
    rhs = eval_expr(expr[2], env)
    return {
        "and": lhs and rhs,
        "or": lhs or rhs,
        "xor": lhs != rhs,
        "implies": (not lhs) or rhs,
        "iff": lhs == rhs,
    }[tag]


def all_envs():
    for bits in itertools.product([False, True], repeat=len(VARS)):
        yield dict(zip(VARS, bits))


@settings(max_examples=150, deadline=None)
@given(EXPR)
def test_bdd_matches_truth_table(expr):
    mgr = BDDManager(VARS)
    node = build_bdd(mgr, expr)
    ids = {v: mgr.var_id(v) for v in VARS}
    for env in all_envs():
        expected = eval_expr(expr, env)
        got = mgr.eval_node(node, {ids[v]: env[v] for v in VARS})
        assert got == expected, f"mismatch at {env}"


@settings(max_examples=100, deadline=None)
@given(EXPR)
def test_satcount_matches_enumeration(expr):
    mgr = BDDManager(VARS)
    node = build_bdd(mgr, expr)
    ids = {v: mgr.var_id(v) for v in VARS}
    expected = sum(
        1
        for env in all_envs()
        if mgr.eval_node(node, {ids[v]: env[v] for v in VARS})
    )
    assert mgr.satcount(node) == expected


@settings(max_examples=100, deadline=None)
@given(EXPR, st.sampled_from(VARS))
def test_exists_is_or_of_cofactors(expr, var):
    mgr = BDDManager(VARS)
    node = build_bdd(mgr, expr)
    vid = mgr.var_id(var)
    quantified = mgr.exists(node, [vid])
    cof = mgr.apply_or(
        mgr.restrict(node, vid, False), mgr.restrict(node, vid, True)
    )
    assert quantified == cof


@settings(max_examples=100, deadline=None)
@given(EXPR, st.sampled_from(VARS))
def test_forall_is_and_of_cofactors(expr, var):
    mgr = BDDManager(VARS)
    node = build_bdd(mgr, expr)
    vid = mgr.var_id(var)
    quantified = mgr.forall(node, [vid])
    cof = mgr.apply_and(
        mgr.restrict(node, vid, False), mgr.restrict(node, vid, True)
    )
    assert quantified == cof


@settings(max_examples=75, deadline=None)
@given(EXPR, EXPR, st.lists(st.sampled_from(VARS), min_size=1, max_size=3, unique=True))
def test_and_exists_equals_two_step(e1, e2, qvars):
    mgr = BDDManager(VARS)
    f = build_bdd(mgr, e1)
    g = build_bdd(mgr, e2)
    ids = [mgr.var_id(v) for v in qvars]
    assert mgr.and_exists(f, g, ids) == mgr.exists(mgr.apply_and(f, g), ids)


@settings(max_examples=75, deadline=None)
@given(EXPR, st.sampled_from(VARS), EXPR)
def test_compose_shannon(e, var, g_expr):
    # compose(f, v, g) == (g & f|v=1) | (~g & f|v=0)
    mgr = BDDManager(VARS)
    f = build_bdd(mgr, e)
    g = build_bdd(mgr, g_expr)
    vid = mgr.var_id(var)
    composed = mgr.compose(f, vid, g)
    expected = mgr.ite(
        g, mgr.restrict(f, vid, True), mgr.restrict(f, vid, False)
    )
    assert composed == expected


@settings(max_examples=75, deadline=None)
@given(EXPR)
def test_iter_cubes_covers_exactly_the_on_set(expr):
    mgr = BDDManager(VARS)
    node = build_bdd(mgr, expr)
    ids = {v: mgr.var_id(v) for v in VARS}
    covered = set()
    for cube in mgr.iter_cubes(node):
        free = [v for v in VARS if ids[v] not in cube]
        for bits in itertools.product([False, True], repeat=len(free)):
            env = {ids[v]: val for v, val in zip(free, bits)}
            env.update(cube)
            covered.add(tuple(env[ids[v]] for v in VARS))
    expected = {
        tuple(env[v] for v in VARS)
        for env in all_envs()
        if mgr.eval_node(node, {ids[v]: env[v] for v in VARS})
    }
    assert covered == expected


@settings(max_examples=50, deadline=None)
@given(EXPR)
def test_double_negation_is_identity(expr):
    mgr = BDDManager(VARS)
    node = build_bdd(mgr, expr)
    assert mgr.apply_not(mgr.apply_not(node)) == node


@settings(max_examples=50, deadline=None)
@given(EXPR, EXPR)
def test_canonical_equality_iff_semantic_equality(e1, e2):
    mgr = BDDManager(VARS)
    f = build_bdd(mgr, e1)
    g = build_bdd(mgr, e2)
    ids = {v: mgr.var_id(v) for v in VARS}
    semantically_equal = all(
        mgr.eval_node(f, {ids[v]: env[v] for v in VARS})
        == mgr.eval_node(g, {ids[v]: env[v] for v in VARS})
        for env in all_envs()
    )
    assert (f == g) == semantically_equal
