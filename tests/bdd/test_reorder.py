"""Tests for in-place variable reordering (swap, set_order, sifting)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDDManager, Function, set_order, sift, swap_adjacent


def _all_envs(mgr, names):
    ids = {v: mgr.var_id(v) for v in names}
    for bits in itertools.product([False, True], repeat=len(names)):
        yield {ids[v]: b for v, b in zip(names, bits)}


def test_swap_preserves_function():
    mgr = BDDManager(["a", "b", "c"])
    f = Function(
        mgr,
        mgr.apply_or(
            mgr.apply_and(mgr.var("a"), mgr.var("b")),
            mgr.apply_and(mgr.apply_not(mgr.var("a")), mgr.var("c")),
        ),
    )
    table_before = [f.evaluate(env) for env in _all_envs(mgr, ["a", "b", "c"])]
    swap_adjacent(mgr, 0)
    assert mgr.current_order() == ["b", "a", "c"]
    table_after = [f.evaluate(env) for env in _all_envs(mgr, ["a", "b", "c"])]
    assert table_before == table_after


def test_swap_bottom_raises():
    mgr = BDDManager(["a", "b"])
    with pytest.raises(IndexError):
        swap_adjacent(mgr, 1)


def test_set_order_reaches_requested_order():
    mgr = BDDManager(["a", "b", "c", "d"])
    f = Function(mgr, mgr.apply_xor(mgr.var("a"), mgr.var("d")))
    table = [f.evaluate(env) for env in _all_envs(mgr, list("abcd"))]
    set_order(mgr, ["d", "c", "b", "a"])
    assert mgr.current_order() == ["d", "c", "b", "a"]
    assert [f.evaluate(env) for env in _all_envs(mgr, list("abcd"))] == table


def test_set_order_requires_permutation():
    mgr = BDDManager(["a", "b"])
    with pytest.raises(ValueError):
        set_order(mgr, ["a"])
    with pytest.raises(ValueError):
        set_order(mgr, ["a", "a"])


def test_sift_shrinks_bad_order():
    # f = (x0 & y0) | (x1 & y1) | (x2 & y2) is exponential when all x's come
    # before all y's and linear when interleaved; sifting must find a small
    # order.
    names = [f"x{i}" for i in range(3)] + [f"y{i}" for i in range(3)]
    mgr = BDDManager(names)
    node = 0
    for i in range(3):
        node = mgr.apply_or(node, mgr.apply_and(mgr.var(f"x{i}"), mgr.var(f"y{i}")))
    f = Function(mgr, node)
    mgr.collect_garbage()
    before = f.size()
    table = [f.evaluate(env) for env in _all_envs(mgr, names)]
    sift(mgr)
    after = f.size()
    assert after <= before
    assert [f.evaluate(env) for env in _all_envs(mgr, names)] == table


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 2), min_size=1, max_size=8))
def test_random_swap_sequences_preserve_functions(swaps):
    names = ["a", "b", "c", "d"]
    mgr = BDDManager(names)
    f = Function(
        mgr,
        mgr.apply_xor(
            mgr.apply_and(mgr.var("a"), mgr.var("c")),
            mgr.apply_or(mgr.var("b"), mgr.var("d")),
        ),
    )
    g = Function(mgr, mgr.apply_implies(mgr.var("d"), mgr.var("a")))
    table_f = [f.evaluate(env) for env in _all_envs(mgr, names)]
    table_g = [g.evaluate(env) for env in _all_envs(mgr, names)]
    for level in swaps:
        swap_adjacent(mgr, level)
    assert [f.evaluate(env) for env in _all_envs(mgr, names)] == table_f
    assert [g.evaluate(env) for env in _all_envs(mgr, names)] == table_g
    # Canonicity must survive: rebuilding g yields the same node.
    rebuilt = mgr.apply_implies(mgr.var("d"), mgr.var("a"))
    assert rebuilt == g.node


def test_operations_after_reorder_are_consistent():
    mgr = BDDManager(["a", "b", "c"])
    f = Function(mgr, mgr.apply_and(mgr.var("a"), mgr.var("b")))
    swap_adjacent(mgr, 0)
    g = Function(mgr, mgr.apply_and(mgr.var("a"), mgr.var("b")))
    assert f == g
    h = f | Function(mgr, mgr.var("c"))
    # |a&b| = 2, |c| = 4, |a&b&c| = 1 -> |union| = 5 over three variables.
    assert h.satcount() == 5
