"""The Analysis facade: constructors, pipeline methods, result shape."""

import json
import pickle
from pathlib import Path

import pytest

from repro.analysis import Analysis, AnalysisResult
from repro.circuits import build_counter, counter_partial_properties
from repro.engine import EngineConfig
from repro.errors import ModelError, ParseError, VerificationError
from repro.suite import CoverageJob

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

COUNTER_RML = (EXAMPLES_DIR / "counter.rml").read_text()


class TestBuiltinConstructor:
    def test_full_counter(self):
        analysis = Analysis.builtin("counter")
        assert analysis.name == "counter"
        assert analysis.kind == "builtin"
        assert analysis.holds()
        assert analysis.coverage().percentage == 100.0

    def test_stage_in_name(self):
        analysis = Analysis.builtin("counter", stage="partial")
        assert analysis.name == "counter@partial"
        assert analysis.stage == "partial"
        assert analysis.coverage().percentage == pytest.approx(80.0)

    def test_unknown_target(self):
        with pytest.raises(ValueError, match="unknown target"):
            Analysis.builtin("nonsense")

    def test_invalid_stage(self):
        with pytest.raises(ValueError, match="invalid stage"):
            Analysis.builtin("counter", stage="bogus")

    def test_config_travels_to_fsm_and_result(self):
        config = EngineConfig(trans="mono", gc_threshold=50)
        analysis = Analysis.builtin("counter", config=config)
        assert analysis.fsm.trans_mode == "mono"
        result = analysis.result()
        assert result.config == config
        assert result.gc_runs >= 1  # the tiny threshold forced collections

    def test_buggy_variant_fails_augmented_suite(self):
        analysis = Analysis.builtin(
            "buffer-lo", stage="augmented", buggy=True
        )
        assert not analysis.holds()
        failing = analysis.failing()
        assert failing
        # Failing checks carry counterexamples for AG-shaped properties.
        assert any(r.counterexample for r in failing)
        with pytest.raises(VerificationError):
            analysis.coverage()
        result = analysis.result()
        assert result.status == "fail"
        assert result.failing_properties


class TestFromRml:
    def test_from_path(self):
        analysis = Analysis.from_rml(EXAMPLES_DIR / "counter.rml")
        assert analysis.kind == "rml"
        assert analysis.name == "rml:counter"
        assert analysis.path == str(EXAMPLES_DIR / "counter.rml")
        assert analysis.coverage().percentage == 100.0

    def test_from_string_path(self):
        analysis = Analysis.from_rml(str(EXAMPLES_DIR / "counter.rml"))
        assert analysis.kind == "rml"
        assert analysis.coverage().percentage == 100.0

    def test_from_text(self):
        analysis = Analysis.from_rml(COUNTER_RML)
        assert analysis.kind == "rml"
        assert analysis.path is None
        assert analysis.coverage().percentage == 100.0

    def test_text_and_path_agree(self):
        from_path = Analysis.from_rml(EXAMPLES_DIR / "counter.rml")
        from_text = Analysis.from_rml(COUNTER_RML)
        assert (
            from_path.coverage().percentage
            == from_text.coverage().percentage
        )
        assert from_path.coverage().covered_count == (
            from_text.coverage().covered_count
        )

    def test_missing_file_raises_oserror(self):
        with pytest.raises(OSError):
            Analysis.from_rml(Path("no/such/model.rml"))

    def test_parse_error_propagates(self):
        with pytest.raises(ParseError):
            Analysis.from_rml("MODULE broken\nVAR\n  x : oops;\n")

    def test_no_observed_rejected(self):
        text = ("MODULE m\nVAR\n  x : boolean;\nASSIGN\n  next(x) := !x;\n"
                "SPEC AG (x -> AX !x);\n")
        with pytest.raises(ModelError, match="OBSERVED"):
            Analysis.from_rml(text)

    def test_no_specs_rejected(self):
        text = ("MODULE m\nVAR\n  x : boolean;\nASSIGN\n  next(x) := !x;\n"
                "OBSERVED x;\n")
        with pytest.raises(ModelError, match="SPEC"):
            Analysis.from_rml(text)


class TestFromFsm:
    def test_wraps_hand_built_circuit(self):
        fsm = build_counter()
        analysis = Analysis.from_fsm(
            fsm, counter_partial_properties(), observed="count"
        )
        assert analysis.kind == "custom"
        assert analysis.name == fsm.name
        assert analysis.coverage().percentage == pytest.approx(80.0)

    def test_observed_string_normalised_to_list(self):
        analysis = Analysis.from_fsm(
            build_counter(), counter_partial_properties(), observed="count"
        )
        assert analysis.observed == ["count"]


class TestFromJob:
    def test_builtin_job(self):
        job = CoverageJob(name="counter@full", kind="builtin",
                          target="counter", stage="full")
        analysis = Analysis.from_job(job)
        assert analysis.name == "counter@full"
        assert analysis.coverage().percentage == 100.0

    def test_unknown_kind(self):
        job = CoverageJob(name="x", kind="martian")
        with pytest.raises(ValueError, match="unknown job kind"):
            Analysis.from_job(job)


class TestPipeline:
    def test_verify_is_cached(self):
        analysis = Analysis.builtin("counter")
        assert analysis.verify() is analysis.verify()

    def test_coverage_is_cached(self):
        analysis = Analysis.builtin("counter")
        assert analysis.coverage() is analysis.coverage()

    def test_checker_shared_with_estimator(self):
        analysis = Analysis.builtin("counter")
        assert analysis.estimator.checker is analysis.checker

    def test_uncovered_traces(self):
        analysis = Analysis.builtin("counter", stage="partial")
        text = analysis.uncovered_traces(1)
        assert "trace to uncovered state #1" in text

    def test_result_to_json_is_serialisable(self):
        result = Analysis.builtin("counter", stage="partial").result()
        payload = result.to_json()
        json.dumps(payload)
        assert payload["status"] == "ok"
        assert payload["percentage"] == pytest.approx(80.0)
        assert payload["config"] == EngineConfig().to_json()

    def test_result_pickles(self):
        result = Analysis.builtin("counter").result()
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result

    def test_result_meters_work(self):
        result = Analysis.builtin("counter").result()
        assert result.nodes_created > 0
        assert result.peak_live_nodes > 0
        assert result.seconds > 0

    def test_result_stats_independent_of_call_order(self):
        # Stats accumulate where the work happens — calling verify() /
        # coverage() first must not zero out the recorded cost.
        fresh = Analysis.builtin("counter").result()
        warmed_up = Analysis.builtin("counter")
        warmed_up.verify()
        warmed_up.coverage()
        result = warmed_up.result()
        assert result.nodes_created == fresh.nodes_created
        assert result.peak_live_nodes > 0
        assert result.seconds > 0


class TestAnalysisResult:
    def test_ok_property(self):
        assert AnalysisResult(name="n", kind="builtin", status="ok").ok
        assert not AnalysisResult(name="n", kind="builtin", status="fail").ok

    def test_format_line_shapes(self):
        ok = AnalysisResult(name="n", kind="builtin", status="ok",
                            percentage=100.0, covered_states=20,
                            space_states=20, properties=11)
        assert "100.00%" in ok.format_line()
        fail = AnalysisResult(name="n", kind="builtin", status="fail",
                              properties=7,
                              failing_properties=["AG x"])
        assert "FAIL" in fail.format_line()
        err = AnalysisResult(name="n", kind="rml", status="error",
                             error="boom")
        assert "ERROR" in err.format_line()
