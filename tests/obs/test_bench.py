"""`repro bench`: workloads, baseline codec, the regression gate."""

import json

import pytest

from repro.cli import main
from repro.obs import BENCH_WORKLOADS, run_workload, write_baseline
from repro.obs.bench import (
    ABS_SLACK,
    BENCH_SCHEMA,
    GATED_COUNTERS,
    baseline_path,
    compare_result,
    load_baseline,
    run_bench,
)


@pytest.fixture(scope="module")
def counter_result():
    """One real measured run, shared across this module's tests."""
    return run_workload(BENCH_WORKLOADS["counter-full"])


class TestWorkloads:
    def test_registry_names_are_filename_safe(self):
        for name in BENCH_WORKLOADS:
            assert "/" not in name and " " not in name

    def test_run_workload_captures_counters(self, counter_result):
        assert counter_result.status == "ok"
        assert counter_result.percentage == 100.0
        for key in GATED_COUNTERS:
            assert key in counter_result.counters
        assert counter_result.counters["nodes_created"] > 0
        assert counter_result.wall_seconds > 0

    def test_derived_op_aggregates(self, counter_result):
        counters = counter_result.counters
        assert counters["op_misses"] == sum(
            counters[f"{kind}_misses"]
            for kind in ("ite", "and", "or", "xor", "not",
                         "quant", "restrict", "relprod", "compose")
        )
        assert counters["op_hits"] > 0

    def test_counters_are_deterministic(self):
        a = run_workload(BENCH_WORKLOADS["counter-full"])
        b = run_workload(BENCH_WORKLOADS["counter-full"])
        assert a.counters == b.counters

    def test_gc_stress_workload_actually_collects(self):
        result = run_workload(BENCH_WORKLOADS["counter-gc-stress"])
        assert result.counters["gc_runs"] > 0
        assert result.counters["gc_freed"] > 0

    def test_serve_cache_workload_counts_exactly_one_analysis(self):
        """The cached-serving workload repeats the request 4×, but with a
        working result cache its summed counters equal one direct run —
        the property the committed baseline gates."""
        from repro.analysis import Analysis

        result = run_workload(BENCH_WORKLOADS["serve_cache"])
        assert result.status == "ok"
        direct = Analysis.builtin("queue-wrap", stage="extended")
        direct.result()
        stats = direct.fsm.manager.resource_stats()
        stats["op_misses"] = sum(
            stats[f"{kind}_misses"]
            for kind in ("ite", "and", "or", "xor", "not",
                         "quant", "restrict", "relprod", "compose")
        )
        for key in GATED_COUNTERS:
            assert result.counters[key] == stats[key], key

    def test_run_bench_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown bench workload"):
            run_bench(["counter-full", "warp-core"])


class TestBaselineCodec:
    def test_write_and_load_round_trip(self, counter_result, tmp_path):
        path = write_baseline(counter_result, tmp_path)
        assert path == baseline_path(tmp_path, "counter-full")
        data = load_baseline(path)
        assert data["schema"] == BENCH_SCHEMA
        assert data["counters"] == counter_result.counters
        assert data["gated"] == list(GATED_COUNTERS)
        assert data["config"]["trans"] == "partitioned"

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": "other/v9"}))
        with pytest.raises(ValueError, match="not a repro-bench/v1"):
            load_baseline(path)


class TestCompare:
    def test_identical_run_passes(self, counter_result, tmp_path):
        baseline = load_baseline(write_baseline(counter_result, tmp_path))
        regressions, notes = compare_result(counter_result, baseline)
        assert regressions == []
        assert any("wall" in n for n in notes)

    def test_counter_regression_detected(self, counter_result, tmp_path):
        baseline = load_baseline(write_baseline(counter_result, tmp_path))
        # Shrink the recorded baseline so the fresh run exceeds tolerance.
        shrunk = (
            counter_result.counters["nodes_created"] - ABS_SLACK
        ) / 1.2
        baseline["counters"]["nodes_created"] = int(shrunk)
        regressions, _ = compare_result(
            counter_result, baseline, tolerance=0.10
        )
        assert any("nodes_created regressed" in r for r in regressions)

    def test_small_counters_get_absolute_slack(self, counter_result, tmp_path):
        baseline = load_baseline(write_baseline(counter_result, tmp_path))
        # gc_runs 0 -> small positive would fail a purely relative gate.
        baseline["counters"]["gc_runs"] = 0
        fresh = counter_result
        fresh.counters["gc_runs"] = ABS_SLACK // 2
        regressions, _ = compare_result(fresh, baseline)
        assert regressions == []

    def test_outcome_drift_is_a_regression(self, counter_result, tmp_path):
        baseline = load_baseline(write_baseline(counter_result, tmp_path))
        baseline["percentage"] = 80.0
        regressions, _ = compare_result(counter_result, baseline)
        assert any("coverage drifted" in r for r in regressions)

    def test_missing_gated_counter_is_a_regression(
        self, counter_result, tmp_path
    ):
        baseline = load_baseline(write_baseline(counter_result, tmp_path))
        del baseline["counters"]["unique_probes"]
        regressions, _ = compare_result(counter_result, baseline)
        assert any("unique_probes" in r for r in regressions)


class TestCli:
    def test_list_names_workloads(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in BENCH_WORKLOADS:
            assert name in out

    def test_unknown_workload_is_usage_error(self, capsys):
        assert main(["bench", "no-such-workload"]) == 2
        assert "unknown bench workload" in capsys.readouterr().err

    def test_negative_tolerance_rejected(self, capsys):
        assert main(["bench", "--tolerance", "-0.5"]) == 2
        assert "--tolerance" in capsys.readouterr().err

    def test_out_then_compare_green(self, capsys, tmp_path):
        out = str(tmp_path)
        assert main(["bench", "counter-full", "--out", out]) == 0
        assert baseline_path(out, "counter-full").is_file()
        assert main(["bench", "counter-full", "--compare", out]) == 0
        assert "bench compare: OK" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, capsys, tmp_path):
        out = str(tmp_path)
        assert main(["bench", "counter-full", "--out", out]) == 0
        path = baseline_path(out, "counter-full")
        data = json.loads(path.read_text())
        data["counters"]["nodes_created"] = max(
            1, int(data["counters"]["nodes_created"] / 2) - ABS_SLACK
        )
        path.write_text(json.dumps(data))
        assert main(["bench", "counter-full", "--compare", out]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "nodes_created regressed" in captured.err

    def test_missing_baseline_fails_compare(self, capsys, tmp_path):
        assert (
            main(["bench", "counter-full", "--compare", str(tmp_path)]) == 1
        )
        assert "no committed baseline" in capsys.readouterr().err
