"""Chrome-trace export: schema validity, one-event-per-line layout."""

import json

from repro.bdd import BDDManager, Function
from repro.obs import Telemetry, chrome_trace_events, write_chrome_trace


def _recorded():
    mgr = BDDManager(["a", "b"])
    t = Telemetry("spans", manager=mgr)
    with t.span("reachability", machine="m"):
        Function.var(mgr, "a") & Function.var(mgr, "b")
        t.event("frontier", iteration=0, frontier_states=2, reached_nodes=3)
    return t


class TestEventSchema:
    def test_leading_metadata_event(self):
        events = chrome_trace_events(_recorded())
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "repro"

    def test_complete_events_carry_required_keys(self):
        events = chrome_trace_events(_recorded())
        (span,) = [e for e in events if e["ph"] == "X"]
        # The Trace Event Format's required keys for a complete event.
        assert set(span) >= {"name", "ph", "ts", "dur", "pid", "tid"}
        assert span["name"] == "reachability"
        assert span["ts"] >= 0 and span["dur"] >= 0
        # Counter deltas and attrs ride in args.
        assert span["args"]["machine"] == "m"
        assert span["args"]["nodes_created"] > 0

    def test_counter_events_for_samples(self):
        events = chrome_trace_events(_recorded())
        (counter,) = [e for e in events if e["ph"] == "C"]
        assert counter["name"] == "frontier"
        assert counter["args"] == {
            "iteration": 0, "frontier_states": 2, "reached_nodes": 3,
        }

    def test_timestamps_are_microseconds_and_ordered(self):
        t = Telemetry("spans")
        with t.span("a"):
            pass
        with t.span("b"):
            pass
        events = [e for e in chrome_trace_events(t) if e["ph"] == "X"]
        assert events[0]["ts"] <= events[1]["ts"]

    def test_fixed_pid_tid(self):
        for event in chrome_trace_events(_recorded()):
            assert event["pid"] == 1
            assert event["tid"] == 1


class TestFileLayout:
    def test_file_is_valid_json_array(self, tmp_path):
        path = tmp_path / "out.jsonl"
        count = write_chrome_trace(_recorded(), path)
        events = json.loads(path.read_text())
        assert isinstance(events, list)
        assert len(events) == count == 3  # metadata + span + sample

    def test_one_event_per_line(self, tmp_path):
        path = tmp_path / "out.jsonl"
        count = write_chrome_trace(_recorded(), path)
        lines = path.read_text().splitlines()
        assert lines[0] == "[" and lines[-1] == "]"
        body = lines[1:-1]
        assert len(body) == count
        for line in body:
            json.loads(line.rstrip(","))  # each line parses on its own

    def test_empty_recording_still_valid(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_chrome_trace(Telemetry("spans"), path)
        events = json.loads(path.read_text())
        assert [e["ph"] for e in events] == ["M"]
