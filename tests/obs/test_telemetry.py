"""`repro.obs.telemetry`: span nesting, counter deltas, levels, inertness."""

import pytest

from repro.bdd import BDDManager, Function, ResourcePolicy
from repro.errors import ConfigError
from repro.obs import (
    NULL_TELEMETRY,
    Span,
    Telemetry,
    format_profile,
)
from repro.obs.telemetry import TELEMETRY_LEVELS


class TestLevels:
    def test_unknown_level_rejected(self):
        with pytest.raises(ConfigError, match="unknown telemetry level"):
            Telemetry("verbose")

    def test_from_level_off_returns_shared_null(self):
        assert Telemetry.from_level("off") is NULL_TELEMETRY

    def test_from_level_returns_fresh_recorders(self):
        a = Telemetry.from_level("spans")
        b = Telemetry.from_level("spans")
        assert a is not b
        assert a.spans_enabled and b.spans_enabled

    def test_counters_level_records_no_spans(self):
        t = Telemetry("counters")
        with t.span("phase"):
            t.event("sample", value=1)
        assert t.enabled
        assert not t.spans_enabled
        assert t.spans == []
        assert t.events == []

    def test_levels_ordering_is_off_counters_spans(self):
        assert TELEMETRY_LEVELS == ("off", "counters", "spans")


class TestSpanNesting:
    def test_nesting_tracks_depth_and_parent(self):
        t = Telemetry("spans")
        with t.span("a"):
            with t.span("b"):
                with t.span("c"):
                    pass
            with t.span("d"):
                pass
        names = [(s.name, s.depth, s.parent) for s in t.spans]
        assert names == [
            ("a", 0, None), ("b", 1, 0), ("c", 2, 1), ("d", 1, 0),
        ]

    def test_reentrant_same_name_spans(self):
        t = Telemetry("spans")
        for _ in range(3):
            with t.span("verify", property="p"):
                pass
        assert [s.name for s in t.spans] == ["verify"] * 3
        assert all(s.depth == 0 for s in t.spans)
        # Indices are unique even though the name repeats.
        assert [s.index for s in t.spans] == [0, 1, 2]

    def test_span_closes_on_exception(self):
        t = Telemetry("spans")
        with pytest.raises(RuntimeError):
            with t.span("outer"):
                with t.span("inner"):
                    raise RuntimeError("boom")
        assert t._stack == []
        assert all(s.seconds >= 0.0 for s in t.spans)

    def test_event_binds_to_innermost_open_span(self):
        t = Telemetry("spans")
        with t.span("outer"):
            t.event("x", value=1)
            with t.span("inner"):
                t.event("y", value=2)
            t.event("z", value=3)
        spans_of = {e["name"]: e["span"] for e in t.events}
        assert spans_of == {"x": 0, "y": 1, "z": 0}

    def test_event_outside_any_span(self):
        t = Telemetry("spans")
        t.event("lonely", value=1)
        assert t.events[0]["span"] is None


class TestCounterDeltas:
    def test_span_delta_counts_only_inner_work(self):
        mgr = BDDManager(["a", "b", "c"])
        t = Telemetry("spans", manager=mgr)
        _ = mgr.var("a")  # outside any span
        with t.span("work") as span:
            Function.var(mgr, "b") & Function.var(mgr, "c")
        created = span.counters["nodes_created"]
        total = mgr.resource_stats()["nodes_created"]
        assert 0 < created < total

    def test_delta_correct_under_forced_gc(self):
        # An aggressive policy forces collections inside the span; the
        # deltas must reflect the GC runs and freed slots that happened
        # between the snapshots.
        mgr = BDDManager(
            [f"x{i}" for i in range(8)],
            policy=ResourcePolicy(gc_node_threshold=20, gc_growth=1.0),
        )
        t = Telemetry("spans", manager=mgr)
        with t.span("churn") as span:
            for r in range(6):
                f = Function.false(mgr)
                for i in range(8):
                    f = f | (
                        Function.var(mgr, f"x{i}")
                        & ~Function.var(mgr, f"x{(i + r) % 8}")
                    )
        assert span.counters["gc_runs"] == mgr.gc_runs >= 1
        assert span.counters["gc_freed"] > 0
        assert span.counters["gc_runs"] >= 0
        # A span opened after that churn sees none of it.
        with t.span("idle") as idle:
            pass
        assert idle.counters["gc_runs"] == 0
        assert idle.counters["nodes_created"] == 0

    def test_late_attach_deltas_from_zero(self):
        # The parse phase runs before any manager exists; a span that
        # closes after attach() reports the fresh manager's full counters.
        t = Telemetry("spans")
        with t.span("build") as span:
            mgr = BDDManager(["a", "b"])
            _ = Function.var(mgr, "a") & Function.var(mgr, "b")
            t.attach(mgr)
        assert span.counters["nodes_created"] == (
            mgr.resource_stats()["nodes_created"]
        )

    def test_span_without_manager_has_no_counters(self):
        t = Telemetry("spans")
        with t.span("parse") as span:
            pass
        assert span.counters == {}

    def test_first_attached_manager_wins(self):
        a = BDDManager(["x"])
        b = BDDManager(["y"])
        t = Telemetry("spans")
        t.attach(a)
        t.attach(b)
        assert t.manager is a


class TestMetrics:
    def test_metrics_schema_and_shape(self):
        mgr = BDDManager(["a"])
        t = Telemetry("spans", manager=mgr)
        with t.span("phase", label="x"):
            t.event("sample", value=3)
        data = t.metrics()
        assert data["schema"] == "repro-metrics/v1"
        assert data["level"] == "spans"
        assert data["counters"]["nodes_created"] >= 0
        (span,) = data["spans"]
        assert span["name"] == "phase"
        assert span["attrs"] == {"label": "x"}
        assert "seconds" in span and "counters" in span
        (event,) = data["events"]
        assert event["args"] == {"value": 3}

    def test_counters_level_metrics_has_no_spans_key(self):
        mgr = BDDManager(["a"])
        t = Telemetry("counters", manager=mgr)
        data = t.metrics()
        assert data["level"] == "counters"
        assert "spans" not in data and "events" not in data
        assert "nodes_created" in data["counters"]

    def test_metrics_is_json_safe(self):
        import json

        mgr = BDDManager(["a", "b"])
        t = Telemetry("spans", manager=mgr)
        with t.span("p"):
            Function.var(mgr, "a") | Function.var(mgr, "b")
        json.dumps(t.metrics())  # must not raise


class TestNullTelemetry:
    def test_records_nothing(self):
        with NULL_TELEMETRY.span("phase") as span:
            NULL_TELEMETRY.event("sample", value=1)
        assert span is None
        assert NULL_TELEMETRY.spans == []
        assert NULL_TELEMETRY.events == []

    def test_attach_is_inert(self):
        NULL_TELEMETRY.attach(BDDManager(["x"]))
        assert NULL_TELEMETRY.manager is None

    def test_metrics_minimal(self):
        assert NULL_TELEMETRY.metrics() == {
            "schema": "repro-metrics/v1", "level": "off", "counters": {},
        }

    def test_span_context_is_reused(self):
        assert NULL_TELEMETRY.span("a") is NULL_TELEMETRY.span("b")


class TestFormatProfile:
    def test_table_contains_phases_and_total(self):
        mgr = BDDManager(["a"])
        t = Telemetry("spans", manager=mgr)
        with t.span("outer"):
            with t.span("inner", property="AG p"):
                pass
        table = format_profile(t)
        lines = table.splitlines()
        assert "phase" in lines[0] and "nodes - time" in lines[0]
        assert any(line.startswith("outer") for line in lines)
        assert any("  inner [AG p]" in line for line in lines)
        assert lines[-1].startswith("total")

    def test_empty_recording_explains_itself(self):
        assert "no phase spans" in format_profile(Telemetry("counters"))

    def test_span_dataclass_label_truncates(self):
        span = Span(
            name="verify", index=0, parent=None, depth=0,
            attrs={"property": "x" * 100}, t_start=0.0,
        )
        assert len(span.label()) < 70
        assert span.label().startswith("verify [")
