"""Mono vs partitioned equivalence — the tentpole's safety net.

The two transition-relation modes must be *indistinguishable* in results:
identical reachable sets, byte-identical coverage summaries (percentages,
covered counts, per-property covered sets), and identical witness traces,
on every builtin target at every stage and on every shipped ``.rml``
model.  BDD canonicity makes this exact — both modes compute the same
state sets, hence the same nodes, hence the same enumeration order in
trace generation — so the assertions below compare rendered text, not
just counts.

Every test takes the ``backend`` fixture (``tests/conftest.py``): the
mono/partitioned guarantee must hold on every node store, and because
trace text is enumeration-order-sensitive, this doubles as a check that
the array backend's cube enumeration matches the dict backend's exactly.
"""

from pathlib import Path

import pytest

from repro.analysis import Analysis
from repro.coverage import CoverageEstimator, format_uncovered_traces
from repro.engine import EngineConfig
from repro.lang import elaborate, load_module
from repro.mc import ModelChecker
from repro.suite import BUILTIN_TARGETS, build_builtin

def _mono(backend):
    return EngineConfig(trans="mono", backend=backend)


def _partitioned(backend):
    return EngineConfig(trans="partitioned", backend=backend)


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _all_builtin_cases():
    for target in BUILTIN_TARGETS.values():
        for stage in target.stages or (None,):
            yield pytest.param(
                target.name, stage, id=f"{target.name}@{stage or 'default'}"
            )


def _estimate(fsm, props, observed, dont_care):
    checker = ModelChecker(fsm)
    failing = [str(p) for p in props if not checker.holds(p)]
    if failing:
        return ("fail", tuple(failing))
    estimator = CoverageEstimator(fsm, checker=checker)
    report = estimator.estimate(props, observed=observed, dont_care=dont_care)
    per_property = tuple(
        fsm.count_states(pc.covered) for pc in report.per_property
    )
    traces = format_uncovered_traces(report, count=3)
    # Note: report.summary() is deliberately absent — it embeds the
    # estimation *cost* (nodes/seconds), which is exactly what the two
    # modes are allowed (expected!) to differ on.
    return (
        "ok",
        report.percentage,
        report.covered_count,
        report.space_count,
        per_property,
        report.format_uncovered(limit=8),
        traces,
    )


@pytest.mark.parametrize("name,stage", _all_builtin_cases())
def test_builtin_targets_mode_equivalent(name, stage, backend):
    mono = build_builtin(name, stage=stage, config=_mono(backend))
    part = build_builtin(name, stage=stage, config=_partitioned(backend))
    fsm_m, props_m, obs_m, dc_m = mono
    fsm_p, props_p, obs_p, dc_p = part
    assert fsm_m.trans_mode == "mono"
    assert fsm_p.trans_mode == "partitioned"
    # Same model, same reachable set.
    assert fsm_m.count_states(fsm_m.reachable()) == fsm_p.count_states(
        fsm_p.reachable()
    )
    assert [fsm_m.count_states(r) for r in fsm_m.rings()] == [
        fsm_p.count_states(r) for r in fsm_p.rings()
    ]
    # Byte-identical coverage output.
    assert _estimate(fsm_m, props_m, obs_m, dc_m) == _estimate(
        fsm_p, props_p, obs_p, dc_p
    )


@pytest.mark.parametrize(
    "path", sorted(EXAMPLES.glob("*.rml")), ids=lambda p: p.stem
)
def test_rml_examples_mode_equivalent(path, backend):
    module = load_module(path)
    mono = elaborate(module, config=_mono(backend))
    part = elaborate(module, config=_partitioned(backend))
    assert mono.fsm.trans_mode == "mono"
    assert part.fsm.trans_mode == "partitioned"
    assert mono.fsm.count_states(mono.fsm.reachable()) == part.fsm.count_states(
        part.fsm.reachable()
    )
    assert _estimate(
        mono.fsm, mono.specs, mono.observed, mono.dont_care
    ) == _estimate(part.fsm, part.specs, part.observed, part.dont_care)


def test_counterexample_traces_mode_equivalent(backend):
    """Failing properties produce the same counterexample trace in both
    modes (the buggy priority buffer from the paper's narrative; the
    augmented suite is the one that catches the planted bug)."""
    results = {}
    for trans in ("mono", "partitioned"):
        fsm, props, _obs, _dc = build_builtin(
            "buffer-lo", stage="augmented", buggy=True,
            config=EngineConfig(trans=trans, backend=backend),
        )
        checker = ModelChecker(fsm)
        traces = []
        for prop in props:
            result = checker.check(prop)
            if not result.holds:
                traces.append(
                    [fsm.format_state(s) for s in result.counterexample or []]
                )
        results[trans] = (len(props), traces)
    assert results["mono"] == results["partitioned"]
    # The narrative needs at least one failing property to compare.
    assert any(results["mono"][1])


def test_lazy_mono_transition_matches_eager(backend):
    """Accessing ``transition`` on a partitioned FSM conjoins the same
    relation the mono build produced eagerly."""
    fsm_m, _, _, _ = build_builtin("queue-wrap", config=_mono(backend))
    fsm_p, _, _, _ = build_builtin("queue-wrap", config=_partitioned(backend))
    # Different managers — compare via satcount over all variables.
    all_vars = list(range(fsm_m.manager.num_vars))
    assert fsm_m.transition.satcount(all_vars) == fsm_p.transition.satcount(
        list(range(fsm_p.manager.num_vars))
    )


# ----------------------------------------------------------------------
# Facade equivalence — the API redesign's own safety net: driving the
# pipeline through Analysis must reproduce the hand-wired
# ModelChecker + CoverageEstimator flow byte for byte, in both modes.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("trans", ["mono", "partitioned"])
@pytest.mark.parametrize("name,stage", _all_builtin_cases())
def test_facade_matches_hand_wired_pipeline(name, stage, trans, backend):
    config = EngineConfig(trans=trans, backend=backend)
    manual = _estimate(*build_builtin(name, stage=stage, config=config))
    analysis = Analysis.builtin(name, stage=stage, config=config)
    if not analysis.holds():
        facade = ("fail", tuple(str(r.formula) for r in analysis.failing()))
    else:
        report = analysis.coverage()
        fsm = analysis.fsm
        facade = (
            "ok",
            report.percentage,
            report.covered_count,
            report.space_count,
            tuple(fsm.count_states(pc.covered) for pc in report.per_property),
            report.format_uncovered(limit=8),
            analysis.uncovered_traces(3),
        )
    assert facade == manual


@pytest.mark.parametrize("trans", ["mono", "partitioned"])
@pytest.mark.parametrize(
    "path", sorted(EXAMPLES.glob("*.rml")), ids=lambda p: p.stem
)
def test_facade_matches_hand_wired_rml(path, trans, backend):
    config = EngineConfig(trans=trans, backend=backend)
    model = elaborate(load_module(path), config=config)
    manual = _estimate(model.fsm, model.specs, model.observed, model.dont_care)
    analysis = Analysis.from_rml(path, config=config)
    assert analysis.holds()
    report = analysis.coverage()
    facade = (
        "ok",
        report.percentage,
        report.covered_count,
        report.space_count,
        tuple(
            analysis.fsm.count_states(pc.covered)
            for pc in report.per_property
        ),
        report.format_uncovered(limit=8),
        analysis.uncovered_traces(3),
    )
    assert facade == manual
