"""Tests for CircuitBuilder compilation."""

import pytest

from repro.errors import ModelError
from repro.expr import parse_expr
from repro.expr.arith import increment_mod_bits
from repro.fsm import CircuitBuilder


def build_toggle():
    b = CircuitBuilder("toggle")
    b.input("en")
    b.latch("t", init=False, next_="t ^ en")
    return b.build()


def build_mod3_counter():
    b = CircuitBuilder("mod3")
    bits = [f"c{i}" for i in range(2)]
    nxt = increment_mod_bits(bits, 3)
    b.latch("c0", init=False, next_=nxt[0])
    b.latch("c1", init=False, next_=nxt[1])
    b.word("c", bits)
    b.define("at_top", "c = 2")
    return b.build()


class TestDeclarations:
    def test_duplicate_name_rejected(self):
        b = CircuitBuilder("x")
        b.input("a")
        with pytest.raises(ModelError):
            b.latch("a", init=False, next_="a")

    def test_reserved_suffix_rejected(self):
        b = CircuitBuilder("x")
        with pytest.raises(ModelError):
            b.input("a#next")

    def test_empty_circuit_rejected(self):
        with pytest.raises(ModelError):
            CircuitBuilder("empty").build()

    def test_word_latch_width_mismatch(self):
        b = CircuitBuilder("x")
        with pytest.raises(ModelError):
            b.word_latch("w", width=2, init=0, next_=["w0"])

    def test_unknown_signal_in_next_rejected_at_build(self):
        b = CircuitBuilder("x")
        b.latch("a", init=False, next_="ghost")
        with pytest.raises(ModelError):
            b.build()

    def test_combinational_cycle_rejected(self):
        b = CircuitBuilder("x")
        b.latch("a", init=False, next_="a")
        b.define("d1", "d2")
        b.define("d2", "d1")
        with pytest.raises(ModelError):
            b.build()

    def test_define_chain_resolves(self):
        b = CircuitBuilder("x")
        b.latch("a", init=True, next_="a")
        b.define("d1", "a")
        b.define("d2", "!d1")
        fsm = b.build()
        assert fsm.signal("d2") == ~fsm.signal("a")


class TestCompiledStructure:
    def test_interleaved_variable_order(self):
        fsm = build_toggle()
        order = fsm.manager.current_order()
        assert order == ["t", "t#next", "en", "en#next"]

    def test_state_vars_latches_inputs(self):
        fsm = build_toggle()
        assert fsm.state_vars == ["t", "en"]
        assert fsm.latches == ["t"]
        assert fsm.inputs == ["en"]

    def test_init_constrains_latches_only(self):
        fsm = build_toggle()
        # init: t=0, en free -> 2 states
        assert fsm.count_states(fsm.init) == 2

    def test_transition_semantics_of_toggle(self):
        fsm = build_toggle()
        # From t=0,en=1 the only latch successor is t=1 (en' free).
        start = fsm.state_cube({"t": False, "en": True})
        succ = fsm.image(start)
        expected = fsm.signal("t")  # t=1, en free
        assert succ == expected

    def test_stalled_toggle_keeps_value(self):
        fsm = build_toggle()
        start = fsm.state_cube({"t": True, "en": False})
        succ = fsm.image(start)
        assert succ == fsm.signal("t")


class TestModCounter:
    def test_reachable_excludes_unused_encoding(self):
        fsm = build_mod3_counter()
        # Counter counts 0,1,2: value 3 is unreachable.
        reach = fsm.reachable()
        assert fsm.count_states(reach) == 3
        three = fsm.symbolize(parse_expr("c = 3"))
        assert not reach.intersects(three)

    def test_counting_sequence(self):
        fsm = build_mod3_counter()
        zero = fsm.symbolize(parse_expr("c = 0"))
        one = fsm.symbolize(parse_expr("c = 1"))
        two = fsm.symbolize(parse_expr("c = 2"))
        # Image of {0} is {1}, of {1} is {2}, of {2} wraps to {0}.
        assert fsm.image(zero).subseteq(one)
        assert fsm.image(one).subseteq(two)
        assert fsm.image(two).subseteq(zero)

    def test_define_signal(self):
        fsm = build_mod3_counter()
        assert fsm.signal("at_top") == fsm.symbolize(parse_expr("c = 2"))


class TestFairness:
    def test_fairness_symbolized(self):
        b = CircuitBuilder("f")
        b.input("stall")
        b.latch("x", init=False, next_="x | !stall")
        b.fairness("!stall")
        fsm = b.build()
        assert len(fsm.fairness) == 1
        assert fsm.fairness[0] == ~fsm.signal("stall")
