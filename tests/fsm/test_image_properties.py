"""Property-based structural invariants of the symbolic image operators."""

from hypothesis import given, settings, strategies as st

from repro.fsm import ExplicitGraph

LABELS = ["p", "q"]


@st.composite
def graphs(draw, max_states=5):
    n = draw(st.integers(2, max_states))
    succs = [
        draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=3))
        for _ in range(n)
    ]
    labels = [draw(st.sets(st.sampled_from(LABELS))) for _ in range(n)]
    g = ExplicitGraph("random", signals=LABELS)
    for i in range(n):
        g.state(f"s{i}", labels=labels[i], initial=(i == 0))
    for i, outs in enumerate(succs):
        for j in set(outs):
            g.edge(f"s{i}", f"s{j}")
    return g


@st.composite
def graph_and_subsets(draw):
    g = draw(graphs())
    n = len(g._names)
    x = draw(st.sets(st.integers(0, n - 1)))
    y = draw(st.sets(st.integers(0, n - 1)))
    return g, x, y


@settings(max_examples=80, deadline=None)
@given(graph_and_subsets())
def test_image_preimage_galois_connection(data):
    """image(X) intersects Y  iff  X intersects preimage(Y)."""
    g, x_idx, y_idx = data
    fsm = g.to_fsm()
    x = g.states_to_set(fsm, [g._names[i] for i in x_idx])
    y = g.states_to_set(fsm, [g._names[i] for i in y_idx])
    assert fsm.image(x).intersects(y) == x.intersects(fsm.preimage(y))


@settings(max_examples=60, deadline=None)
@given(graph_and_subsets())
def test_image_matches_explicit_adjacency(data):
    g, x_idx, _ = data
    model = g.to_model()
    fsm = g.to_fsm()
    x = g.states_to_set(fsm, [g._names[i] for i in x_idx])
    symbolic = g.set_to_states(fsm, fsm.image(x))
    explicit = {
        g._names[j] for i in x_idx for j in model.successors[i]
    }
    assert symbolic == explicit


@settings(max_examples=60, deadline=None)
@given(graph_and_subsets())
def test_preimage_matches_explicit_adjacency(data):
    g, x_idx, _ = data
    model = g.to_model()
    fsm = g.to_fsm()
    x = g.states_to_set(fsm, [g._names[i] for i in x_idx])
    symbolic = g.set_to_states(fsm, fsm.preimage(x))
    explicit = {
        g._names[j] for i in x_idx for j in model.predecessors[i]
    }
    assert symbolic == explicit


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_reachable_from_init_matches_explicit_bfs(g):
    from repro.coverage import reachable_indices

    model = g.to_model()
    fsm = g.to_fsm()
    symbolic = g.set_to_states(fsm, fsm.reachable())
    explicit = {model.state_names[i] for i in reachable_indices(model)}
    assert symbolic == explicit


@settings(max_examples=40, deadline=None)
@given(graph_and_subsets())
def test_reachable_from_is_reflexive_transitive(data):
    g, x_idx, _ = data
    fsm = g.to_fsm()
    x = g.states_to_set(fsm, [g._names[i] for i in x_idx])
    reach = fsm.reachable_from(x)
    # Reflexive: includes the start set; transitive: closed under image.
    assert x.subseteq(reach)
    assert fsm.image(reach).subseteq(reach)
