"""Tests for FSM image operators, reachability, traces, and formatting."""

import pytest

from repro.errors import ModelError
from repro.expr import parse_expr
from repro.fsm import CircuitBuilder


def build_chain(length=4):
    """A one-hot-ish chain: counter that saturates at `length`."""
    import math

    width = max(1, math.ceil(math.log2(length + 1)))
    b = CircuitBuilder("chain")
    bits = [f"p{i}" for i in range(width)]
    from repro.expr.arith import increment_bits, mux
    from repro.expr import Var, parse_expr as pe

    at_end = pe(f"p = {length}")
    inc = increment_bits(bits)
    for i, bit in enumerate(bits):
        b.latch(bit, init=False, next_=mux(at_end, Var(bit), inc[i]))
    b.word("p", bits)
    return b.build()


class TestImageOperators:
    def test_image_preimage_adjoint(self):
        fsm = build_chain(3)
        one = fsm.symbolize(parse_expr("p = 1"))
        two = fsm.symbolize(parse_expr("p = 2"))
        assert fsm.image(one) == two
        assert fsm.preimage(two) == one

    def test_image_of_empty_is_empty(self):
        fsm = build_chain(3)
        assert fsm.image(fsm.empty_set()).is_false()

    def test_forward_alias(self):
        fsm = build_chain(3)
        s = fsm.symbolize(parse_expr("p = 0"))
        assert fsm.forward(s) == fsm.image(s)


class TestReachability:
    def test_reachable_counts(self):
        fsm = build_chain(3)
        assert fsm.count_states(fsm.reachable()) == 4  # 0..3

    def test_reachable_from_midpoint(self):
        fsm = build_chain(3)
        two = fsm.symbolize(parse_expr("p = 2"))
        reach = fsm.reachable_from(two)
        # From 2: {2, 3} (saturating).
        assert fsm.count_states(reach) == 2
        assert two.subseteq(reach)

    def test_reachable_from_includes_start_even_without_selfloop(self):
        fsm = build_chain(3)
        zero = fsm.symbolize(parse_expr("p = 0"))
        assert zero.subseteq(fsm.reachable_from(zero))

    def test_rings_partition_reachable(self):
        fsm = build_chain(3)
        rings = fsm.rings()
        union = fsm.empty_set()
        for i, ring in enumerate(rings):
            for j in range(i):
                assert not ring.intersects(rings[j]), "rings must be disjoint"
            union = union | ring
        assert union == fsm.reachable()

    def test_ring_k_is_distance_k(self):
        fsm = build_chain(3)
        rings = fsm.rings()
        for value, ring in enumerate(rings):
            assert ring == fsm.symbolize(parse_expr(f"p = {value}"))


class TestTraces:
    def test_shortest_trace_length(self):
        fsm = build_chain(3)
        target = fsm.symbolize(parse_expr("p = 3"))
        trace = fsm.shortest_trace(target)
        assert trace is not None
        assert len(trace) == 4  # 0 -> 1 -> 2 -> 3
        values = [sum((1 << i) for i in range(2) if s[f"p{i}"]) for s in trace]
        assert values == [0, 1, 2, 3]

    def test_trace_to_unreachable_is_none(self):
        fsm = build_chain(3)
        # Need a wider word to express 5; use raw cube: p=5 needs 3 bits, so
        # instead pick an unreachable-but-encodable value via state_cube.
        unreachable = fsm.state_cube({"p0": False, "p1": False}) & fsm.symbolize(
            parse_expr("p = 2")
        )
        assert unreachable.is_false()
        assert fsm.shortest_trace(unreachable) is None

    def test_trace_steps_follow_transition(self):
        fsm = build_chain(3)
        target = fsm.symbolize(parse_expr("p = 2"))
        trace = fsm.shortest_trace(target)
        for a, b in zip(trace, trace[1:]):
            step = fsm.image(fsm.state_cube(a))
            assert fsm.state_cube(b).subseteq(step)


class TestStateHelpers:
    def test_state_cube_roundtrip(self):
        fsm = build_chain(3)
        cube = fsm.state_cube({"p0": True, "p1": False})
        states = list(fsm.iter_states(cube))
        assert states == [{"p0": True, "p1": False}]

    def test_state_cube_missing_var_rejected(self):
        fsm = build_chain(3)
        with pytest.raises(ModelError):
            fsm.state_cube({"p0": True})

    def test_format_state_recomposes_words(self):
        fsm = build_chain(3)
        text = fsm.format_state({"p0": True, "p1": True})
        assert "p=3" in text

    def test_unknown_signal_raises(self):
        fsm = build_chain(3)
        with pytest.raises(ModelError):
            fsm.signal("nope")

    def test_count_states(self):
        fsm = build_chain(3)
        assert fsm.count_states(fsm.true_set()) == 4
        assert fsm.count_states(fsm.empty_set()) == 0


class TestSymbolizeFlip:
    def test_flip_negates_signal_occurrences(self):
        fsm = build_chain(3)
        b = parse_expr("p0 & p1")
        flipped = fsm.symbolize(b, flip=frozenset({"p0"}))
        assert flipped == fsm.symbolize(parse_expr("!p0 & p1"))

    def test_flip_does_not_touch_other_signals(self):
        fsm = build_chain(3)
        b = parse_expr("p1")
        assert fsm.symbolize(b, flip=frozenset({"p0"})) == fsm.signal("p1")
