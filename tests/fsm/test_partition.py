"""Unit and property tests for :mod:`repro.fsm.partition`.

Three layers:

* schedule construction — every quantified variable placed exactly once, at
  the earliest legal step (the last scheduled conjunct mentioning it), with
  unmentioned variables pre-quantified;
* degenerate shapes — single conjunct, a variable shared by every
  conjunct, empty quantification sets;
* ``TransitionPartition.relprod`` against the ground truth
  ``exists V . (S & T1 & ... & Tk)`` computed monolithically, both on
  random function sets (hypothesis) and on real circuits.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDDManager, Function
from repro.circuits import build_circular_queue, build_counter
from repro.errors import ModelError
from repro.fsm import TransitionPartition, early_quantification_schedule
from repro.fsm.partition import validate_trans_mode


# ----------------------------------------------------------------------
# Schedule construction
# ----------------------------------------------------------------------


def _check_schedule(supports, quantify, schedule):
    """The invariants every legal early-quantification schedule satisfies."""
    supports = [frozenset(s) for s in supports]
    quantify = frozenset(quantify)
    # Permutation: every conjunct appears exactly once.
    assert sorted(step.conjunct for step in schedule.steps) == list(
        range(len(supports))
    )
    # Exactness: every quantified variable is quantified exactly once.
    placed = list(schedule.prequantify)
    for step in schedule.steps:
        placed.extend(step.quantify)
    assert sorted(placed) == sorted(quantify)
    # Pre-quantified variables are mentioned by no conjunct.
    mentioned = frozenset().union(*supports) if supports else frozenset()
    assert frozenset(schedule.prequantify) == quantify - mentioned
    # Earliest-legal placement: a variable is quantified at the LAST step
    # whose conjunct mentions it — earlier would be illegal (the variable
    # still occurs downstream), later would keep it alive needlessly.
    for i, step in enumerate(schedule.steps):
        for var in step.quantify:
            # Legal: no later conjunct mentions it ...
            for later in schedule.steps[i + 1:]:
                assert var not in supports[later.conjunct], (
                    f"variable {var} quantified at step {i} but mentioned "
                    f"by later conjunct {later.conjunct}"
                )
            # ... and earliest: it is mentioned AT its own step.
            assert var in supports[step.conjunct]


def test_schedule_places_each_variable_at_last_mention():
    supports = [frozenset({0, 1, 10}), frozenset({1, 2, 11}), frozenset({2, 12})]
    quantify = [0, 1, 2, 3]
    schedule = early_quantification_schedule(supports, quantify)
    _check_schedule(supports, quantify, schedule)
    # Variable 3 is mentioned nowhere: quantified straight out of the set.
    assert schedule.prequantify == (3,)
    # Whatever the order, variable 0 (only in conjunct 0) leaves at
    # conjunct 0's step, and 2 at the later of conjuncts 1/2.
    step_of = {step.conjunct: step for step in schedule.steps}
    assert 0 in step_of[0].quantify
    position = {step.conjunct: i for i, step in enumerate(schedule.steps)}
    assert 2 in schedule.steps[max(position[1], position[2])].quantify


def test_schedule_single_conjunct():
    """Degenerate: one latch — the whole quantification happens in one step."""
    supports = [frozenset({0, 1, 2})]
    schedule = early_quantification_schedule(supports, [0, 1])
    _check_schedule(supports, [0, 1], schedule)
    assert len(schedule.steps) == 1
    assert schedule.steps[0].quantify == (0, 1)
    assert schedule.prequantify == ()


def test_schedule_variable_shared_by_all_conjuncts():
    """Degenerate: a variable in every support can only leave at the end."""
    supports = [frozenset({0, 5}), frozenset({0, 6}), frozenset({0, 7})]
    schedule = early_quantification_schedule(supports, [0])
    _check_schedule(supports, [0], schedule)
    assert schedule.steps[-1].quantify == (0,)
    for step in schedule.steps[:-1]:
        assert step.quantify == ()


def test_schedule_empty_quantification():
    supports = [frozenset({0}), frozenset({1})]
    schedule = early_quantification_schedule(supports, [])
    assert schedule.prequantify == ()
    assert all(step.quantify == () for step in schedule.steps)
    assert schedule.quantified_vars() == frozenset()


def test_schedule_disjoint_supports_quantify_immediately():
    """With disjoint conjuncts every variable retires at its own step —
    the live quantified set never exceeds one conjunct's variables."""
    supports = [frozenset({i, 10 + i}) for i in range(6)]
    quantify = list(range(6))
    schedule = early_quantification_schedule(supports, quantify)
    _check_schedule(supports, quantify, schedule)
    for step in schedule.steps:
        assert step.quantify == (step.conjunct,)


@settings(max_examples=200, deadline=None)
@given(
    supports=st.lists(
        st.frozensets(st.integers(min_value=0, max_value=9), max_size=5),
        min_size=1,
        max_size=6,
    ),
    quantify=st.frozensets(st.integers(min_value=0, max_value=9), max_size=8),
)
def test_schedule_invariants_random(supports, quantify):
    schedule = early_quantification_schedule(supports, sorted(quantify))
    _check_schedule(supports, quantify, schedule)


# ----------------------------------------------------------------------
# TransitionPartition.relprod vs monolithic ground truth
# ----------------------------------------------------------------------


def _random_function(manager, rng, names):
    """A random function as OR of random cubes."""
    out = Function.false(manager)
    for _ in range(rng.randint(1, 4)):
        cube = Function.true(manager)
        for name in names:
            choice = rng.randint(0, 2)
            if choice == 0:
                cube = cube & Function.var(manager, name)
            elif choice == 1:
                cube = cube & ~Function.var(manager, name)
        out = out | cube
    return out


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_relprod_matches_monolithic_random(seed):
    import random

    rng = random.Random(seed)
    names = ["a", "b", "c", "d", "e", "f"]
    manager = BDDManager(names)
    conjuncts = [
        _random_function(manager, rng, rng.sample(names, rng.randint(1, 4)))
        for _ in range(rng.randint(1, 4))
    ]
    states = _random_function(manager, rng, rng.sample(names, 3))
    quantify = [
        manager.var_id(n) for n in rng.sample(names, rng.randint(0, 6))
    ]

    partition = TransitionPartition(conjuncts)
    via_chain = partition.relprod(states, quantify)

    mono = states
    for conjunct in conjuncts:
        mono = mono & conjunct
    ground_truth = mono.exist(quantify)
    assert via_chain == ground_truth


@pytest.mark.parametrize(
    "build", [build_counter, build_circular_queue], ids=["counter", "queue"]
)
def test_relprod_matches_monolithic_on_circuits(build):
    fsm = build()
    assert fsm.partition is not None
    mono = fsm.transition  # lazily conjoined from the partition
    for states in (fsm.init, fsm.true_set(), fsm.image(fsm.init)):
        direct = mono.and_exists(states, fsm.current_var_ids)
        chained = fsm.partition.relprod(states, fsm.current_var_ids)
        assert direct == chained


def test_partition_schedule_cached_per_variable_set():
    fsm = build_counter()
    s1 = fsm.partition.schedule(fsm.current_var_ids)
    s2 = fsm.partition.schedule(list(reversed(fsm.current_var_ids)))
    assert s1 is s2  # keyed by frozenset, not order
    s3 = fsm.partition.schedule(fsm.next_var_ids)
    assert s3 is not s1


def test_preimage_schedule_retires_one_next_var_per_step():
    """Functional circuits: conjunct i mentions exactly one next variable,
    so the preimage schedule quantifies exactly it at that step and the
    free inputs' next copies up front."""
    fsm = build_circular_queue()
    schedule = fsm.partition.schedule(fsm.next_var_ids)
    input_nexts = sorted(fsm.next_ids[v] for v in fsm.inputs)
    assert sorted(schedule.prequantify) == input_nexts
    for step in schedule.steps:
        assert len(step.quantify) == 1


# ----------------------------------------------------------------------
# Validation / errors
# ----------------------------------------------------------------------


def test_partition_rejects_empty():
    with pytest.raises(ModelError):
        TransitionPartition([])


def test_partition_rejects_mixed_managers():
    m1, m2 = BDDManager(["x"]), BDDManager(["x"])
    with pytest.raises(ModelError):
        TransitionPartition([Function.var(m1, "x"), Function.var(m2, "x")])


def test_partition_rejects_label_mismatch():
    manager = BDDManager(["x"])
    with pytest.raises(ModelError):
        TransitionPartition([Function.var(manager, "x")], labels=["a", "b"])


def test_validate_trans_mode():
    assert validate_trans_mode("mono") == "mono"
    assert validate_trans_mode("partitioned") == "partitioned"
    with pytest.raises(ModelError):
        validate_trans_mode("magic")


def test_builder_rejects_unknown_trans_mode():
    from repro.engine import EngineConfig
    from repro.errors import ConfigError

    # The mode is validated where it now lives: on the config itself.
    with pytest.raises(ConfigError):
        EngineConfig(trans="nope")


def test_partition_labels_are_latch_names():
    fsm = build_counter()
    assert fsm.partition.labels == fsm.latches
