"""Tests for explicit models, toy graphs, and the explicit<->symbolic bridge."""

import pytest

from repro.errors import ModelError
from repro.expr import parse_expr
from repro.expr.arith import increment_mod_bits
from repro.fsm import CircuitBuilder, ExplicitGraph, enumerate_model


def diamond_graph():
    g = ExplicitGraph("diamond")
    g.state("s0", labels={"p"}, initial=True)
    g.state("s1", labels={"p"})
    g.state("s2", labels={"q"})
    g.state("s3", labels={"p", "q"})
    g.edge("s0", "s1")
    g.edge("s0", "s2")
    g.edge("s1", "s3")
    g.edge("s2", "s3")
    g.self_loop_terminal_states()
    return g


class TestExplicitGraph:
    def test_duplicate_state_rejected(self):
        g = ExplicitGraph()
        g.state("a")
        with pytest.raises(ModelError):
            g.state("a")

    def test_edge_to_unknown_state_rejected(self):
        g = ExplicitGraph()
        g.state("a")
        with pytest.raises(ModelError):
            g.edge("a", "b")

    def test_model_requires_initial(self):
        g = ExplicitGraph()
        g.state("a")
        g.edge("a", "a")
        with pytest.raises(ModelError):
            g.to_model()

    def test_model_requires_total_relation(self):
        g = ExplicitGraph()
        g.state("a", initial=True)
        with pytest.raises(ModelError):
            g.to_model()

    def test_self_loop_totalises(self):
        g = ExplicitGraph()
        g.state("a", initial=True)
        g.self_loop_terminal_states()
        model = g.to_model()
        assert model.successors[0] == [0]

    def test_model_structure(self):
        model = diamond_graph().to_model()
        assert model.n == 4
        assert model.initial == {0}
        assert sorted(model.successors[0]) == [1, 2]
        # s3 has a self-loop added by self_loop_terminal_states().
        assert sorted(model.predecessors[3]) == [1, 2, 3]

    def test_states_satisfying(self):
        model = diamond_graph().to_model()
        p_states = model.states_satisfying(parse_expr("p"))
        assert p_states == {0, 1, 3}
        pq = model.states_satisfying(parse_expr("p & q"))
        assert pq == {3}

    def test_eval_atom_with_override(self):
        model = diamond_graph().to_model()
        q_prime = model.signal_vector("q")
        q_prime[2] = not q_prime[2]
        assert model.eval_atom(
            parse_expr("q'"), 2, overrides={"q'": q_prime}
        ) is False
        assert model.eval_atom(
            parse_expr("q'"), 3, overrides={"q'": q_prime}
        ) is True


class TestSymbolicBridge:
    def test_fsm_reachability_matches_graph(self):
        g = diamond_graph()
        fsm = g.to_fsm()
        reach_names = g.set_to_states(fsm, fsm.reachable())
        assert reach_names == {"s0", "s1", "s2", "s3"}

    def test_signals_match_labels(self):
        g = diamond_graph()
        fsm = g.to_fsm()
        p_states = g.set_to_states(fsm, fsm.signal("p"))
        assert p_states == {"s0", "s1", "s3"}

    def test_image_matches_edges(self):
        g = diamond_graph()
        fsm = g.to_fsm()
        s0 = g.states_to_set(fsm, ["s0"])
        succ = g.set_to_states(fsm, fsm.image(s0))
        assert succ == {"s1", "s2"}

    def test_roundtrip_states_to_set(self):
        g = diamond_graph()
        fsm = g.to_fsm()
        subset = g.states_to_set(fsm, ["s1", "s3"])
        assert g.set_to_states(fsm, subset) == {"s1", "s3"}

    def test_unused_encodings_unreachable(self):
        g = ExplicitGraph("three")
        g.state("a", initial=True)
        g.state("b")
        g.state("c")
        g.edge("a", "b")
        g.edge("b", "c")
        g.edge("c", "a")
        fsm = g.to_fsm()
        # 2-bit encoding has 4 codes; only 3 states reachable.
        assert fsm.count_states(fsm.reachable()) == 3


class TestEnumerateModel:
    def build_counter(self):
        b = CircuitBuilder("mod3")
        bits = ["c0", "c1"]
        nxt = increment_mod_bits(bits, 3)
        b.input("stall")
        from repro.expr import Var
        from repro.expr.arith import mux

        b.latch("c0", init=False, next_=mux(Var("stall"), Var("c0"), nxt[0]))
        b.latch("c1", init=False, next_=mux(Var("stall"), Var("c1"), nxt[1]))
        b.word("c", bits)
        b.define("top", "c = 2")
        return b.build()

    def test_enumeration_matches_symbolic_reachability(self):
        fsm = self.build_counter()
        model = enumerate_model(fsm)
        assert model.n == fsm.count_states(fsm.reachable())

    def test_initial_states(self):
        fsm = self.build_counter()
        model = enumerate_model(fsm)
        # c=0 with stall free -> 2 initial states
        assert len(model.initial) == 2

    def test_defines_labelled(self):
        fsm = self.build_counter()
        model = enumerate_model(fsm)
        top = model.states_satisfying(parse_expr("top"))
        c2 = model.states_satisfying(parse_expr("c = 2"))
        assert top == c2
        assert len(top) == 2  # stall free

    def test_successor_structure_matches_symbolic_image(self):
        fsm = self.build_counter()
        model = enumerate_model(fsm)
        # For every explicit state, the symbolic image of its cube must be
        # exactly its successor set.
        for i in range(model.n):
            state = {v: model.signal_values[i][v] for v in fsm.state_vars}
            symbolic = fsm.image(fsm.state_cube(state))
            explicit = set()
            for j in model.successors[i]:
                explicit.add(tuple(model.signal_values[j][v] for v in fsm.state_vars))
            symbolic_states = {
                tuple(s[v] for v in fsm.state_vars)
                for s in fsm.iter_states(symbolic)
            }
            assert symbolic_states == explicit

    def test_limit_enforced(self):
        fsm = self.build_counter()
        with pytest.raises(ModelError):
            enumerate_model(fsm, limit=2)

    def test_relation_fsm_rejected(self):
        g = diamond_graph()
        fsm = g.to_fsm()
        with pytest.raises(ModelError):
            enumerate_model(fsm)
