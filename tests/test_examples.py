"""Integration tests: every example script must run to completion.

The examples double as executable documentation of the paper's narratives;
running them in-process (not via subprocess) keeps them cheap and lets
their internal assertions fire under pytest.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    # At least two domain-specific scenarios beyond the quickstart.
    assert len(names) >= 3


def test_quickstart_reaches_full_coverage(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "100.00% coverage" in out


def test_bug_hunt_finds_the_bug(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "escaped_bug_hunt.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "FAIL" in out
    assert "counterexample" in out
    assert "100.00%" in out
