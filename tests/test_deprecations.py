"""Every deprecated shim: warns exactly once, still produces the old result.

The test suite runs with ``repro``-prefixed DeprecationWarnings escalated
to errors (see ``filterwarnings`` in pyproject.toml), so internal code can
never silently depend on a deprecated path — the shims are exercised only
here, under ``pytest.warns``.
"""

import warnings

import pytest

from repro.circuits import (
    build_circular_queue,
    build_counter,
    build_pipeline,
    build_priority_buffer,
)
from repro.engine import EngineConfig
from repro.errors import ConfigError, ModelError
from repro.fsm import CircuitBuilder
from repro.lang import elaborate, parse_module
from repro.suite import (
    CoverageJob,
    build_builtin,
    builtin_jobs,
    default_jobs,
    rml_job,
)

RML = "MODULE m\nVAR\n  x : boolean;\nASSIGN\n  next(x) := !x;\n"


def _exactly_one_repro_warning(record):
    messages = [str(w.message) for w in record]
    assert len(messages) == 1, messages
    assert messages[0].startswith("repro: "), messages


class TestBuilderShims:
    @pytest.mark.parametrize("build", [
        build_counter, build_circular_queue, build_priority_buffer,
        build_pipeline,
    ])
    def test_circuit_builder_trans_kwarg_warns_once(self, build):
        with pytest.warns(DeprecationWarning) as record:
            fsm = build(trans="mono")
        _exactly_one_repro_warning(record)
        assert fsm.trans_mode == "mono"

    def test_circuit_builders_match_config_path(self):
        with pytest.warns(DeprecationWarning):
            legacy = build_counter(trans="mono")
        fresh = build_counter(config=EngineConfig(trans="mono"))
        assert legacy.count_states(legacy.reachable()) == fresh.count_states(
            fresh.reachable()
        )

    def test_circuitbuilder_build_trans_warns_once(self):
        b = CircuitBuilder("t")
        b.latch("x", init=False, next_="!x")
        with pytest.warns(DeprecationWarning) as record:
            fsm = b.build(trans="mono")
        _exactly_one_repro_warning(record)
        assert fsm.trans_mode == "mono"

    def test_circuitbuilder_build_bad_legacy_trans_keeps_model_error(self):
        # The legacy keyword preserves its legacy error type.
        b = CircuitBuilder("t")
        b.latch("x", init=False, next_="!x")
        with pytest.raises(ModelError):
            b.build(trans="nope")

    def test_elaborate_trans_warns_once(self):
        module = parse_module(RML + "SPEC AG (x -> AX !x);\nOBSERVED x;\n")
        with pytest.warns(DeprecationWarning) as record:
            model = elaborate(module, trans="mono")
        _exactly_one_repro_warning(record)
        assert model.fsm.trans_mode == "mono"

    def test_trans_and_config_conflict(self):
        with pytest.raises(ConfigError, match="not both"):
            build_counter(trans="mono", config=EngineConfig())


class TestBuildBuiltinShims:
    def test_trans_kwarg_warns_once(self):
        with pytest.warns(DeprecationWarning) as record:
            fsm, props, observed, dont_care = build_builtin(
                "counter", trans="mono"
            )
        _exactly_one_repro_warning(record)
        assert fsm.trans_mode == "mono"
        assert observed == "count"

    def test_policy_kwarg_warns_once_and_applies(self):
        from repro.bdd import ResourcePolicy

        with pytest.warns(DeprecationWarning) as record:
            fsm, *_ = build_builtin(
                "counter", policy=ResourcePolicy(gc_node_threshold=1,
                                                 gc_growth=1.0)
            )
        _exactly_one_repro_warning(record)
        assert fsm.manager.gc_runs > 0

    def test_bad_legacy_trans_still_value_error(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="unknown transition mode"):
                build_builtin("counter", trans="bogus")


class TestJobShims:
    def test_flat_constructor_kwargs_warn_once(self):
        with pytest.warns(DeprecationWarning) as record:
            job = CoverageJob(name="c", kind="builtin", target="counter",
                              trans="mono", gc_threshold=7,
                              auto_reorder=True)
        _exactly_one_repro_warning(record)
        assert job.config == EngineConfig(trans="mono", gc_threshold=7,
                                          auto_reorder=True)

    @pytest.mark.parametrize("attr", ["trans", "gc_threshold", "auto_reorder"])
    def test_flat_attribute_reads_warn_once(self, attr):
        job = CoverageJob(
            name="c", kind="builtin", target="counter",
            config=EngineConfig(trans="mono", gc_threshold=7,
                                auto_reorder=True),
        )
        with pytest.warns(DeprecationWarning) as record:
            value = getattr(job, attr)
        _exactly_one_repro_warning(record)
        assert value == getattr(job.config, attr)

    @pytest.mark.parametrize("factory,args", [
        (builtin_jobs, ()),
        (default_jobs, ()),
    ])
    def test_job_factories_warn_once(self, factory, args):
        with pytest.warns(DeprecationWarning) as record:
            jobs = factory(*args, trans="mono", gc_threshold=11)
        _exactly_one_repro_warning(record)
        assert jobs
        assert all(
            j.config == EngineConfig(trans="mono", gc_threshold=11)
            for j in jobs
        )

    def test_rml_job_factory_warns_once(self, tmp_path):
        path = tmp_path / "m.rml"
        path.write_text(RML)
        with pytest.warns(DeprecationWarning) as record:
            job = rml_job(path, trans="mono")
        _exactly_one_repro_warning(record)
        assert job.config == EngineConfig(trans="mono")

    def test_legacy_job_still_executes(self):
        from repro.suite import execute_job

        with pytest.warns(DeprecationWarning):
            job = CoverageJob(name="counter@full", kind="builtin",
                              target="counter", stage="full",
                              gc_threshold=50)
        result = execute_job(job)
        assert result.status == "ok"
        assert result.percentage == 100.0
        assert result.config == EngineConfig(gc_threshold=50)

    def test_result_trans_property_warns_once(self):
        from repro.analysis import AnalysisResult

        result = AnalysisResult(name="n", kind="builtin", status="ok",
                                config=EngineConfig(trans="mono"))
        with pytest.warns(DeprecationWarning) as record:
            assert result.trans == "mono"
        _exactly_one_repro_warning(record)

    def test_result_flat_trans_constructor_warns_once(self):
        # The former JobResult dataclass had a flat trans field; the alias
        # still accepts it, folding into config.
        from repro.suite import JobResult

        with pytest.warns(DeprecationWarning) as record:
            result = JobResult(name="n", kind="builtin", status="ok",
                               trans="mono")
        _exactly_one_repro_warning(record)
        assert result.config == EngineConfig(trans="mono")


class TestNewPathsDoNotWarn:
    """The config-based paths must be warning-free (the suite runs with
    repro DeprecationWarnings as errors, so these double as the guarantee
    that internal code uses only new paths)."""

    def test_config_paths_are_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            build_counter(config=EngineConfig(trans="mono"))
            build_builtin("counter", config=EngineConfig())
            CoverageJob(name="c", kind="builtin", target="counter",
                        config=EngineConfig())
            builtin_jobs(config=EngineConfig())

    def test_uninformative_legacy_values_are_silent(self):
        # Explicitly spelling the old defaults (trans=None, policy=None,
        # gc_threshold=None, auto_reorder=False) carries no information
        # and must not trip the shims — callers forward maybe-None vars.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            build_builtin("counter", trans=None, policy=None)
            job = CoverageJob(name="c", kind="builtin", target="counter",
                              trans=None, gc_threshold=None,
                              auto_reorder=False)
            assert job.config == EngineConfig()
            builtin_jobs(trans=None, gc_threshold=None, auto_reorder=False)
