"""Differential-oracle behaviour on healthy and broken inputs."""

import pytest

from repro.engine import EngineConfig
from repro.errors import ConfigError
from repro.gen import (
    AXIS_CONFIGS,
    AXIS_EXPLICIT,
    AXIS_ROUNDTRIP,
    DEFAULT_AXES,
    Disagreement,
    check_module,
    comparable_result,
    generate,
    validate_axes,
)
from repro.lang import parse_module


class TestAgreement:
    @pytest.mark.parametrize("index", range(10))
    def test_generated_scenarios_agree_on_every_axis(self, index):
        gm = generate(f"oracle:{index}")
        assert check_module(gm.module, text=gm.text) is None

    def test_paper_counter_module_agrees(self):
        # The shipped example exercises the same oracle path as generated
        # scenarios — builtin circuits cross-check too, not just fuzz fare.
        from pathlib import Path

        source = (
            Path(__file__).resolve().parents[2]
            / "examples" / "counter.rml"
        ).read_text()
        module = parse_module(source, filename="counter.rml")
        assert check_module(module) is None


class TestComparableProjection:
    def test_cost_fields_are_stripped(self):
        gm = generate("oracle:0")
        data = comparable_result(gm.analysis(EngineConfig()))
        for cost in ("seconds", "nodes_created", "gc_runs", "gc_seconds",
                     "peak_live_nodes", "config"):
            assert cost not in data

    def test_verdicts_and_traces_are_included(self):
        gm = generate("oracle:0")
        data = comparable_result(gm.analysis(EngineConfig()))
        assert data["verdicts"]
        assert all(isinstance(v[1], bool) for v in data["verdicts"])
        if data["status"] == "ok":
            assert "uncovered_trace_text" in data

    def test_projection_identical_across_engine_configs(self):
        gm = generate("oracle:1")
        reference = comparable_result(gm.analysis(EngineConfig()))
        for config in AXIS_CONFIGS.values():
            assert comparable_result(gm.analysis(config)) == reference


class TestAxisValidation:
    def test_default_axes_validate(self):
        assert validate_axes(DEFAULT_AXES) == DEFAULT_AXES

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError, match="unknown oracle axis"):
            validate_axes(("mono", "bogus"))

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigError, match="at least one"):
            validate_axes(())

    def test_axes_subset_runs(self):
        gm = generate("oracle:2")
        assert check_module(gm.module, axes=(AXIS_ROUNDTRIP,)) is None
        assert check_module(gm.module, axes=(AXIS_EXPLICIT,)) is None


class TestDisagreementRendering:
    def test_describe_names_axis_and_field(self):
        d = Disagreement("mono", "percentage", "80.0", "100.0")
        text = d.describe()
        assert "mono" in text and "percentage" in text
        assert "80.0" in text and "100.0" in text


class TestBrokenEngineIsCaught:
    def test_flipped_and_polarity_is_detected(self, monkeypatch):
        # A deliberately wrong apply_and: the explicit axis must notice,
        # because the pure-Python oracle shares no code with the BDD core.
        from repro.bdd.manager import BDDManager

        original = BDDManager.apply_and

        def flipped(self, f, g):
            return self.apply_not(original(self, f, g))

        gm = generate("oracle:3")
        monkeypatch.setattr(BDDManager, "apply_and", flipped)
        disagreement = check_module(gm.module, text=gm.text)
        assert disagreement is not None
        monkeypatch.undo()
        assert check_module(gm.module, text=gm.text) is None
