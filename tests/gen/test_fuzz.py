"""Fuzz campaign driver: budgets, parallelism, reports, CLI contract."""

import json
import os

from repro.cli import main
from repro.gen import FUZZ_SCHEMA_ID, GenParams, case_key, run_fuzz
from repro.gen import fuzz as fuzz_mod
from repro.obs.counters import counter_delta

#: The unpatched worker, captured so the crash-injection wrapper can
#: delegate for every non-sabotaged case.
_REAL_RUN_ONE = fuzz_mod._run_one


def _crashy_run_one(args):
    """Kill the worker process outright on case index 3 — the bug class
    (segfaults, OOM kills) a fuzz campaign must survive, not report."""
    _seed, index, _params, _axes = args
    if index == 3:
        os._exit(29)
    return _REAL_RUN_ONE(args)


def _normalised(result):
    data = result.to_json()
    data["totals"].pop("seconds", None)
    return data


class TestRunFuzz:
    def test_small_budget_agrees(self):
        result = run_fuzz(budget=5, seed=11)
        assert result.ok
        assert result.cases == 5
        assert not result.findings and not result.errors

    def test_report_is_schema_tagged_and_json_safe(self):
        result = run_fuzz(budget=3, seed=11)
        data = result.to_json()
        assert data["schema"] == FUZZ_SCHEMA_ID
        assert data["totals"]["cases"] == 3
        json.dumps(data)  # must be serialisable as-is

    def test_campaign_is_deterministic(self):
        assert _normalised(run_fuzz(budget=4, seed=5)) == _normalised(
            run_fuzz(budget=4, seed=5)
        )

    def test_parallel_matches_serial(self):
        serial = run_fuzz(budget=6, seed=3, jobs=1)
        parallel = run_fuzz(budget=6, seed=3, jobs=2)
        assert _normalised(serial) == _normalised(parallel)

    def test_offset_selects_case_window(self):
        result = run_fuzz(budget=2, seed=9, offset=40)
        assert result.offset == 40
        assert result.ok

    def test_case_key_shape(self):
        assert case_key(3, 17) == "3:17"


class TestCrashResilience:
    def test_worker_crash_keeps_completed_verdicts(self, monkeypatch):
        """A worker dying mid-campaign (the old ``pool.map`` raised
        ``BrokenProcessPool`` and lost everything) now costs exactly the
        crashed case: every other verdict survives, and the dead case
        becomes an error entry that keeps its seed-key handle."""
        monkeypatch.setattr(fuzz_mod, "_run_one", _crashy_run_one)
        result = run_fuzz(budget=6, seed=11, jobs=2, shrink=False)
        assert result.cases == 6
        assert not result.findings
        assert len(result.errors) == 1
        error = result.errors[0]
        assert error["seed_key"] == case_key(11, 3)
        assert "crashed" in error["error"]
        assert not result.ok
        assert result.to_json()["totals"]["agreed"] == 5

    def test_parallel_campaign_feeds_fuzz_shard_counters(self):
        with counter_delta("fuzz.shards.runs") as runs:
            result = run_fuzz(budget=4, seed=11, jobs=2)
        assert result.ok
        assert runs() == 4  # one shard per case at this budget


class TestFuzzCli:
    def test_green_run_exits_zero(self, capsys, tmp_path):
        report = tmp_path / "fuzz.json"
        code = main([
            "fuzz", "--budget", "4", "--seed", "2",
            "--json", str(report), "--corpus", str(tmp_path / "corpus"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 disagreement(s)" in out
        data = json.loads(report.read_text())
        assert data["schema"] == FUZZ_SCHEMA_ID
        assert data["totals"]["agreed"] == 4
        # No disagreements -> no reproducers written.
        assert not (tmp_path / "corpus").exists()

    def test_unknown_axis_is_usage_error(self, capsys):
        assert main(["fuzz", "--budget", "1", "--axes", "nope"]) == 2
        assert "unknown oracle axis" in capsys.readouterr().err

    def test_bad_budget_is_usage_error(self, capsys):
        assert main(["fuzz", "--budget", "0"]) == 2

    def test_bad_generator_params_are_usage_errors(self, capsys):
        assert main(["fuzz", "--budget", "1", "--max-latches", "0"]) == 2
        assert "max_bool_latches" in capsys.readouterr().err

    def test_param_flags_reach_the_generator(self, capsys, tmp_path):
        code = main([
            "fuzz", "--budget", "2", "--seed", "0",
            "--max-latches", "1", "--max-inputs", "0",
            "--corpus", str(tmp_path),
        ])
        assert code == 0

    def test_params_flow_into_report(self, tmp_path):
        report = tmp_path / "fuzz.json"
        main([
            "fuzz", "--budget", "1", "--max-latches", "2",
            "--json", str(report), "--corpus", str(tmp_path / "c"),
        ])
        data = json.loads(report.read_text())
        assert GenParams.from_json(data["params"]).max_bool_latches == 2
