"""Greedy shrinker: minimises while preserving validity and interest."""

from repro.gen import generate, latch_bits, shrink_module
from repro.lang import elaborate, module_to_str, parse_module


def _mentions_word_spec(module) -> bool:
    """Interestingness stand-in: some SPEC mentions the word register."""
    from repro.ctl.ast import formula_atoms

    return any("w0" in formula_atoms(s.formula) for s in module.specs)


class TestShrink:
    def test_result_is_smaller_valid_and_still_interesting(self):
        for index in range(6):
            gm = generate(f"shrink:{index}")
            interesting = lambda m, t: len(m.specs) >= 1  # noqa: E731
            shrunk = shrink_module(gm.module, interesting)
            text = module_to_str(shrunk)
            assert len(text) <= len(gm.text)
            reparsed = parse_module(text, filename=shrunk.name)
            assert reparsed == shrunk
            elaborate(reparsed)  # still well-formed
            assert interesting(shrunk, text)

    def test_trivial_predicate_shrinks_to_near_nothing(self):
        gm = generate("shrink:0")
        shrunk = shrink_module(gm.module, lambda m, t: True)
        # Everything optional is gone; one latch, one spec remain.
        assert latch_bits(shrunk) <= latch_bits(gm.module)
        assert latch_bits(shrunk) >= 1
        assert len(shrunk.specs) == 1
        assert not shrunk.fairness
        assert shrunk.dont_care is None
        assert len(module_to_str(shrunk)) < len(gm.text)

    def test_word_mentions_are_preserved_when_required(self):
        for index in range(20):
            gm = generate(f"shrink:{index}")
            if not _mentions_word_spec(gm.module):
                continue
            shrunk = shrink_module(gm.module, lambda m, t: _mentions_word_spec(m))
            assert _mentions_word_spec(shrunk)
            # The word register itself must survive (specs reference it).
            assert any(v.is_word for v in shrunk.vars)
            return
        raise AssertionError("no seed produced a word-mentioning spec")

    def test_shrink_is_deterministic(self):
        gm = generate("shrink:1")
        predicate = lambda m, t: len(m.specs) >= 1  # noqa: E731
        first = shrink_module(gm.module, predicate)
        second = shrink_module(gm.module, predicate)
        assert first == second

    def test_uninteresting_module_is_returned_unchanged(self):
        gm = generate("shrink:2")
        assert shrink_module(gm.module, lambda m, t: False) == gm.module


class TestLatchBits:
    def test_counts_words_per_bit(self):
        module = parse_module(
            "MODULE m\n"
            "VAR\n  a : boolean;\n  i : boolean;\n  w : word[3];\n"
            "ASSIGN\n  next(a) := a;\n  next(w) := w;\n"
            "SPEC a;\nOBSERVED a;\n"
        )
        # a (1 bit) + w (3 bits); the free input i contributes nothing.
        assert latch_bits(module) == 4
