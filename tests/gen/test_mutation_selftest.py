"""The harness self-test: an injected engine bug must be caught and shrunk.

This is the acceptance gate of the fuzzing subsystem (ISSUE 5): flip the
polarity of ``BDDManager.apply_xor`` — the kernel every word increment's
ripple-carry lowering passes through — and demand that

1. the differential oracle catches the mutation within a small budget
   (the explicit-state axis shares no code with the BDD core);
2. the greedy shrinker minimises a disagreeing scenario to a reproducer
   of at most 6 latch bits;
3. the written ``.rml`` reproducer parses, still witnesses the bug while
   the mutation is active, and passes once the engine is restored.
"""

import pytest

from repro.bdd.manager import BDDManager
from repro.gen import check_module, generate, latch_bits, run_fuzz
from repro.lang import parse_module

ORIGINAL_XOR = BDDManager.apply_xor


def _flipped_xor(self, f, g):
    return self.apply_not(ORIGINAL_XOR(self, f, g))


@pytest.fixture
def mutated_engine(monkeypatch):
    monkeypatch.setattr(BDDManager, "apply_xor", _flipped_xor)
    yield
    monkeypatch.undo()


class TestInjectedMutationIsCaught:
    def test_fuzz_catches_and_shrinks_the_mutation(
        self, mutated_engine, monkeypatch, tmp_path
    ):
        corpus = tmp_path / "corpus"
        # jobs=1 keeps every case in this (patched) process.
        result = run_fuzz(budget=8, seed=0, jobs=1, corpus_dir=corpus)
        assert not result.ok
        assert result.findings, "the flipped apply_xor must be detected"

        finding = result.findings[0]
        assert finding.shrunk_latches <= 6
        assert finding.reproducer_path is not None

        # The reproducer is a self-contained .rml witness: the header
        # carries the seed line, the body still triggers the bug ...
        reproducer = (corpus / f"fuzz-0-{finding.index}.rml").read_text()
        assert finding.seed_line() in reproducer
        module = parse_module(reproducer, filename="reproducer")
        assert latch_bits(module) <= 6
        assert check_module(module) is not None

        # ... and once the engine is fixed, every axis agrees again.
        monkeypatch.undo()
        assert check_module(module) is None

    def test_reference_run_survives_the_mutation(self, mutated_engine):
        # The oracle must report a *disagreement*, not crash: the mutated
        # engine still completes analyses, it just computes wrong answers.
        gm = generate("selftest:0")
        disagreement = check_module(gm.module, text=gm.text)
        assert disagreement is not None
        assert disagreement.axis in ("explicit", "reference", "roundtrip")

    def test_clean_engine_silences_the_selftest_seeds(self):
        gm = generate("selftest:0")
        assert check_module(gm.module, text=gm.text) is None
