"""Generator invariants: determinism, validity, canonical round-tripping.

The differential oracle's soundness rests on these properties — a
generated scenario must be a pure function of its seed, must elaborate
without errors, and must already be in the parser's canonical form.
"""

import random

import pytest

from repro.ctl.actl import normalize_for_coverage
from repro.engine import EngineConfig
from repro.errors import ConfigError
from repro.expr import parse_expr
from repro.gen import (
    GenParams,
    generate,
    random_actl,
    random_ctl,
    random_expr,
    random_graph,
    random_module,
)
from repro.lang import elaborate, module_to_str, parse_module

SEEDS = [f"t:{i}" for i in range(25)]


class TestDeterminism:
    def test_same_seed_same_scenario(self):
        for key in SEEDS[:8]:
            first = generate(key)
            second = generate(key)
            assert first.text == second.text
            assert first.module == second.module

    def test_seeds_produce_distinct_scenarios(self):
        texts = {generate(key).text for key in SEEDS}
        assert len(texts) > len(SEEDS) // 2

    def test_int_and_str_seeds_coincide(self):
        assert generate(7).text == generate("7").text

    def test_primitives_are_seed_functions(self):
        atoms = [parse_expr("p"), parse_expr("q & !p")]
        assert random_expr(random.Random("x"), atoms, 3) == random_expr(
            random.Random("x"), atoms, 3
        )
        for builder in (random_actl, random_ctl):
            assert builder(random.Random("x"), atoms, 3) == builder(
                random.Random("x"), atoms, 3
            )


class TestValidity:
    @pytest.mark.parametrize("key", SEEDS)
    def test_canonical_round_trip(self, key):
        gm = generate(key)
        reparsed = parse_module(gm.text, filename=gm.module.name)
        assert reparsed == gm.module
        assert module_to_str(reparsed) == gm.text

    @pytest.mark.parametrize("key", SEEDS)
    def test_elaborates_and_declares_coverage_inputs(self, key):
        gm = generate(key)
        model = elaborate(gm.module)
        assert model.observed, "generated modules always observe something"
        assert model.specs, "generated modules always carry properties"

    @pytest.mark.parametrize("key", SEEDS)
    def test_specs_stay_in_acceptable_subset(self, key):
        for spec in generate(key).module.specs:
            normalize_for_coverage(spec.formula)  # must not raise

    def test_suites_biased_toward_holding(self):
        # The generator verifies candidate properties and prefers holding
        # ones; with these fixed seeds the bias is deterministic.
        ok = sum(
            1
            for key in SEEDS
            if generate(key).analysis(EngineConfig()).result().status == "ok"
        )
        assert ok >= len(SEEDS) // 2


class TestParams:
    def test_defaults_validate(self):
        GenParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_bool_latches": 0},
            {"max_specs": 0},
            {"min_word_width": 3, "max_word_width": 2},
            {"p_word": 1.5},
            {"atom_depth": -1},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            GenParams(**kwargs)

    def test_json_round_trip(self):
        params = GenParams(max_bool_latches=2, p_word=0.0)
        assert GenParams.from_json(params.to_json()) == params

    def test_json_unknown_key_rejected(self):
        with pytest.raises(ConfigError):
            GenParams.from_json({"max_bool_latches": 2, "bogus": 1})

    def test_bounds_are_respected(self):
        params = GenParams(
            max_bool_latches=1, max_inputs=0, p_word=0.0,
            max_defines=0, max_specs=1, p_fairness=0.0, p_dontcare=0.0,
        )
        for key in SEEDS[:10]:
            module = random_module(random.Random(key), params)
            latches = [v for v in module.vars if v.name.startswith("b")]
            assert len(latches) == 1
            assert not module.defines
            assert not module.fairness
            assert module.dont_care is None
            assert len(module.specs) == 1


class TestGraphs:
    def test_graph_is_total_and_deterministic(self):
        first = random_graph(random.Random("g:1"))
        second = random_graph(random.Random("g:1"))
        model = first.to_model()  # raises if any state lacks successors
        assert model.n >= 2
        assert first.to_model().initial == second.to_model().initial

    def test_graph_bridges_to_symbolic(self):
        graph = random_graph(random.Random("g:2"), max_states=4)
        fsm = graph.to_fsm()
        assert fsm.count_states(fsm.reachable()) >= 1
