"""Backend invariance: node storage must be invisible in results.

The acceptance bar for a second BDD backend is not "mostly agrees" — it
is byte-identical verdicts, coverage numbers, counterexamples, and
uncovered-trace text on every builtin target at every stage and every
shipped ``.rml`` model, in both transition-relation modes.  BDD
canonicity makes this exact: both backends hash-cons the same logical
nodes, so every enumeration the reporting layer performs (cube order,
trace states) must come out in the same order.

:func:`repro.gen.oracle.comparable_result` is the comparison surface —
the same one the differential fuzzer's ``backend`` axis uses on random
models; here it runs on the curated corpus.
"""

from pathlib import Path

import pytest

from repro.analysis import Analysis
from repro.bdd import BACKEND_NAMES
from repro.engine import EngineConfig
from repro.gen.oracle import comparable_result
from repro.suite import BUILTIN_TARGETS

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

#: Backends compared against the reference ``dict`` backend.
OTHER_BACKENDS = tuple(b for b in BACKEND_NAMES if b != "dict")


def _all_builtin_cases():
    for target in BUILTIN_TARGETS.values():
        for stage in target.stages or (None,):
            yield pytest.param(
                target.name, stage, id=f"{target.name}@{stage or 'default'}"
            )


def _builtin_result(name, stage, trans, backend):
    analysis = Analysis.builtin(
        name, stage=stage, config=EngineConfig(trans=trans, backend=backend)
    )
    return comparable_result(analysis)


def _rml_result(path, trans, backend):
    analysis = Analysis.from_rml(
        path, config=EngineConfig(trans=trans, backend=backend)
    )
    return comparable_result(analysis)


@pytest.mark.parametrize("trans", ["partitioned", "mono"])
@pytest.mark.parametrize("name,stage", _all_builtin_cases())
def test_builtin_results_identical_across_backends(name, stage, trans):
    reference = _builtin_result(name, stage, trans, "dict")
    for backend in OTHER_BACKENDS:
        assert _builtin_result(name, stage, trans, backend) == reference


@pytest.mark.parametrize("trans", ["partitioned", "mono"])
@pytest.mark.parametrize(
    "path", sorted(EXAMPLES.glob("*.rml")), ids=lambda p: p.stem
)
def test_rml_results_identical_across_backends(path, trans):
    reference = _rml_result(path, trans, "dict")
    for backend in OTHER_BACKENDS:
        assert _rml_result(path, trans, backend) == reference
