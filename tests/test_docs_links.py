"""The docs stay navigable: every relative link in README.md and docs/*.md
resolves, via the same checker CI runs (``tools/check_links.py``)."""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_links", ROOT / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_tree_exists():
    for page in ("api.md", "architecture.md", "paper-map.md",
                 "rml-reference.md", "performance.md", "serving.md"):
        assert (ROOT / "docs" / page).is_file(), f"missing docs/{page}"


def test_readme_links_to_every_docs_page():
    readme = (ROOT / "README.md").read_text()
    for page in ("api.md", "architecture.md", "paper-map.md",
                 "rml-reference.md", "performance.md", "serving.md"):
        assert f"docs/{page}" in readme, f"README does not link docs/{page}"


def test_no_broken_relative_links():
    checker = _load_checker()
    failures = {}
    for path in checker.default_files(ROOT):
        links = checker.broken_links(path)
        if links:
            failures[str(path.relative_to(ROOT))] = links
    assert not failures, f"broken links: {failures}"


def test_checker_flags_broken_links(tmp_path):
    checker = _load_checker()
    page = tmp_path / "page.md"
    page.write_text(
        "[ok](page.md) [gone](missing.md) [web](https://example.com) "
        "[anchor](#here) [frag](page.md#sec) [gone-frag](nope.md#sec)\n"
    )
    broken = checker.broken_links(page)
    assert [target for _, target in broken] == ["missing.md", "nope.md#sec"]
    assert checker.main([str(page)]) == 1
    page.write_text("[ok](page.md)\n")
    assert checker.main([str(page)]) == 0
