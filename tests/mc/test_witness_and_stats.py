"""Tests for trace formatting, input-sequence extraction, and work stats."""


from repro.bdd import BDDManager
from repro.circuits import build_counter
from repro.expr import parse_expr
from repro.mc import ModelChecker, WorkMeter, WorkStats, format_trace, input_sequence


class TestInputSequence:
    def test_extracts_inputs_per_cycle(self):
        fsm = build_counter()
        target = fsm.symbolize(parse_expr("count = 2"))
        trace = fsm.shortest_trace(target)
        stimulus = input_sequence(fsm, trace)
        assert len(stimulus) == len(trace) - 1
        for step in stimulus:
            assert set(step) == {"stall", "reset"}
            # Reaching count=2 fastest requires free-running cycles.
            assert step["stall"] is False
            assert step["reset"] is False


class TestFormatTrace:
    def test_contains_cycles_and_inputs(self):
        fsm = build_counter()
        target = fsm.symbolize(parse_expr("count = 2"))
        trace = fsm.shortest_trace(target)
        text = format_trace(fsm, trace, title="demo")
        assert text.startswith("demo")
        assert "cycle 0" in text
        assert "inputs:" in text
        assert "count=2" in text

    def test_none_trace(self):
        fsm = build_counter()
        assert "unreachable" in format_trace(fsm, None)

    def test_final_cycle_has_no_inputs(self):
        fsm = build_counter()
        target = fsm.symbolize(parse_expr("count = 1"))
        trace = fsm.shortest_trace(target)
        text = format_trace(fsm, trace)
        last_line = text.splitlines()[-1]
        assert "inputs:" not in last_line


class TestWorkStats:
    def test_meter_measures_nodes_and_time(self):
        mgr = BDDManager([f"v{i}" for i in range(8)])
        with WorkMeter(mgr) as meter:
            f = mgr.var("v0")
            for i in range(1, 8):
                f = mgr.apply_xor(f, mgr.var(f"v{i}"))
        assert meter.stats.nodes_created > 0
        assert meter.stats.seconds >= 0
        assert meter.stats.nodes_live == mgr.node_count()

    def test_stats_addition(self):
        a = WorkStats(seconds=1.0, nodes_created=10, nodes_live=100)
        b = WorkStats(seconds=2.0, nodes_created=5, nodes_live=50)
        total = a + b
        assert total.seconds == 3.0
        assert total.nodes_created == 15
        assert total.nodes_live == 100  # max, not sum

    def test_format_small_and_large(self):
        assert WorkStats(seconds=1.5, nodes_created=500).format() == "500 - 1.50s"
        assert "k" in WorkStats(seconds=0.1, nodes_created=124_000).format()


class TestCheckerStats:
    def test_check_reports_cost(self):
        fsm = build_counter()
        checker = ModelChecker(fsm)
        from repro.ctl import parse_ctl

        result = checker.check(parse_ctl("AG count < 5"))
        assert result.holds
        assert result.stats.nodes_created >= 0
        assert result.stats.nodes_live > 0
