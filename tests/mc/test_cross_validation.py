"""Property-based cross-validation: symbolic checker vs explicit oracle.

Random small Kripke structures and random CTL formulas; the two independent
implementations must agree on the satisfaction set and on fairness handling.
This is the backbone guarantee that the symbolic engine computes real CTL
semantics.
"""

from hypothesis import given, settings, strategies as st

from repro.expr import parse_expr
from repro.mc import ExplicitModelChecker, ModelChecker
from tests.strategies import ctl_formulas, graphs

ATOMS = [parse_expr("p"), parse_expr("q"), parse_expr("p & !q")]

FORMULA = ctl_formulas(ATOMS, depth=3)


@settings(max_examples=120, deadline=None)
@given(graphs(), FORMULA)
def test_symbolic_matches_explicit(graph, formula):
    model = graph.to_model()
    fsm = graph.to_fsm()
    explicit = ExplicitModelChecker(model).sat(formula)
    explicit_names = {model.state_names[i] for i in explicit}
    symbolic = ModelChecker(fsm).sat(formula)
    symbolic_names = graph.set_to_states(fsm, symbolic)
    assert symbolic_names == explicit_names, f"disagree on {formula}"


@settings(max_examples=80, deadline=None)
@given(graphs(), FORMULA, st.sampled_from(["p", "q"]))
def test_symbolic_matches_explicit_under_fairness(graph, formula, fair_label):
    model = graph.to_model()
    fsm = graph.to_fsm()
    fair_expr = parse_expr(fair_label)
    fsm.fairness = [fsm.signal(fair_label)]
    explicit = ExplicitModelChecker(model, fairness=[fair_expr]).sat(formula)
    explicit_names = {model.state_names[i] for i in explicit}
    symbolic = ModelChecker(fsm).sat(formula)
    symbolic_names = graph.set_to_states(fsm, symbolic)
    assert symbolic_names == explicit_names, f"fairness disagree on {formula}"


@settings(max_examples=60, deadline=None)
@given(graphs(), FORMULA)
def test_holds_agrees(graph, formula):
    model = graph.to_model()
    fsm = graph.to_fsm()
    assert ModelChecker(fsm).holds(formula) == ExplicitModelChecker(model).holds(
        formula
    )
