"""Property-based cross-validation: symbolic checker vs explicit oracle.

Random small Kripke structures and random CTL formulas; the two independent
implementations must agree on the satisfaction set and on fairness handling.
This is the backbone guarantee that the symbolic engine computes real CTL
semantics.
"""

from hypothesis import given, settings, strategies as st

from repro.ctl.ast import (
    AF,
    AG,
    AU,
    AX,
    Atom,
    CtlAnd,
    CtlNot,
    CtlOr,
    EF,
    EG,
    EU,
    EX,
)
from repro.expr import Var, parse_expr
from repro.fsm import ExplicitGraph
from repro.mc import ExplicitModelChecker, ModelChecker

LABELS = ["p", "q"]


@st.composite
def graphs(draw, max_states=5):
    n = draw(st.integers(2, max_states))
    # Each state: a non-empty successor list and a label subset.
    succs = [
        draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=3))
        for _ in range(n)
    ]
    labels = [draw(st.sets(st.sampled_from(LABELS))) for _ in range(n)]
    initial = draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=2))
    g = ExplicitGraph("random", signals=LABELS)
    for i in range(n):
        g.state(f"s{i}", labels=labels[i], initial=(i in initial))
    for i, outs in enumerate(succs):
        for j in set(outs):
            g.edge(f"s{i}", f"s{j}")
    return g


def formulas(depth):
    leaf = st.sampled_from(
        [Atom(Var("p")), Atom(Var("q")), Atom(parse_expr("p & !q"))]
    )
    if depth == 0:
        return leaf
    sub = formulas(depth - 1)
    return st.one_of(
        leaf,
        sub.map(CtlNot),
        sub.map(AX),
        sub.map(AG),
        sub.map(AF),
        sub.map(EX),
        sub.map(EG),
        sub.map(EF),
        st.tuples(sub, sub).map(lambda t: CtlAnd(t)),
        st.tuples(sub, sub).map(lambda t: CtlOr(t)),
        st.tuples(sub, sub).map(lambda t: AU(*t)),
        st.tuples(sub, sub).map(lambda t: EU(*t)),
    )


FORMULA = formulas(3)


@settings(max_examples=120, deadline=None)
@given(graphs(), FORMULA)
def test_symbolic_matches_explicit(graph, formula):
    model = graph.to_model()
    fsm = graph.to_fsm()
    explicit = ExplicitModelChecker(model).sat(formula)
    explicit_names = {model.state_names[i] for i in explicit}
    symbolic = ModelChecker(fsm).sat(formula)
    symbolic_names = graph.set_to_states(fsm, symbolic)
    assert symbolic_names == explicit_names, f"disagree on {formula}"


@settings(max_examples=80, deadline=None)
@given(graphs(), FORMULA, st.sampled_from(["p", "q"]))
def test_symbolic_matches_explicit_under_fairness(graph, formula, fair_label):
    model = graph.to_model()
    fsm = graph.to_fsm()
    fair_expr = parse_expr(fair_label)
    fsm.fairness = [fsm.signal(fair_label)]
    explicit = ExplicitModelChecker(model, fairness=[fair_expr]).sat(formula)
    explicit_names = {model.state_names[i] for i in explicit}
    symbolic = ModelChecker(fsm).sat(formula)
    symbolic_names = graph.set_to_states(fsm, symbolic)
    assert symbolic_names == explicit_names, f"fairness disagree on {formula}"


@settings(max_examples=60, deadline=None)
@given(graphs(), FORMULA)
def test_holds_agrees(graph, formula):
    model = graph.to_model()
    fsm = graph.to_fsm()
    assert ModelChecker(fsm).holds(formula) == ExplicitModelChecker(model).holds(
        formula
    )
