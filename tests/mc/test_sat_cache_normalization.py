"""Satisfaction-set memoisation across formula spellings.

The checker memoises on a *normalized* formula (propositional subtrees
collapsed, ``AF`` desugared to ``A[true U .]``), so the exact fixpoints
computed during verification are found again when the coverage estimator
queries ``normalize_for_coverage(formula)`` — previously ``AF ack`` and
``A[true U ack]`` hashed differently and the top-level fixpoint was
recomputed from scratch, undercutting the paper's reuse remark.
"""

from repro.coverage import CoverageEstimator
from repro.ctl import parse_ctl
from repro.ctl.actl import normalize_for_coverage
from repro.fsm import ExplicitGraph
from repro.mc import ModelChecker


def _machine():
    g = ExplicitGraph("chain", signals=["req", "ack"])
    g.state("s0", labels={"req"}, initial=True)
    g.state("s1", labels=set())
    g.state("s2", labels={"ack"})
    g.edge("s0", "s1")
    g.edge("s1", "s2")
    g.self_loop_terminal_states()
    return g.to_fsm()


class TestNormalizedMemoisation:
    def test_af_and_desugared_until_share_one_entry(self):
        mc = ModelChecker(_machine())
        sugar = parse_ctl("AF ack")
        desugared = parse_ctl("A [true U ack]")
        first = mc.sat(sugar)
        nodes_before = mc.fsm.manager.created_nodes
        second = mc.sat(desugared)
        assert first == second
        # Pure cache hit: not a single BDD node allocated.
        assert mc.fsm.manager.created_nodes == nodes_before
        # One entry per distinct normalized (sub)formula — the two
        # spellings share the single AU entry.
        au_keys = [k for k in mc._sat_cache if type(k).__name__ == "AU"]
        assert len(au_keys) == 1

    def test_collapsed_propositional_spellings_share_entries(self):
        mc = ModelChecker(_machine())
        a = parse_ctl("AG (req -> AF ack)")
        # Same formula, re-parsed: distinct objects, equal normal forms.
        b = parse_ctl("AG (req -> A [true U ack])")
        mc.sat(a)
        nodes_before = mc.fsm.manager.created_nodes
        mc.sat(b)
        assert mc.fsm.manager.created_nodes == nodes_before

    def test_verification_then_estimation_reuses_fixpoints(self):
        """The cross-component path the fix is about: holds() during
        verification, then the estimator querying the normalized form."""
        fsm = _machine()
        mc = ModelChecker(fsm)
        prop = parse_ctl("AG (req -> AF ack)")
        assert mc.holds(prop)
        entries_after_verify = len(mc._sat_cache)
        nodes_before = fsm.manager.created_nodes
        # What the estimator asks for internally:
        normalized = normalize_for_coverage(prop)
        mc.sat(normalized)
        assert fsm.manager.created_nodes == nodes_before
        assert len(mc._sat_cache) == entries_after_verify
        # And the full estimation flow re-verifies through the same cache.
        estimator = CoverageEstimator(fsm, checker=mc)
        estimator.covered_set(prop, "ack")
        assert mc._sat_cache  # still populated, not rebuilt elsewhere

    def test_results_unchanged_by_normalization(self):
        fsm = _machine()
        assert ModelChecker(fsm).holds(parse_ctl("AF ack"))
        assert ModelChecker(fsm).holds(parse_ctl("A [true U ack]"))
        assert not ModelChecker(fsm).holds(parse_ctl("AX ack"))

    def test_memoize_disabled_still_normalizes_consistently(self):
        fsm = _machine()
        mc = ModelChecker(fsm, memoize=False)
        assert mc.sat(parse_ctl("AF ack")) == mc.sat(parse_ctl("A [true U ack]"))
        assert not mc._sat_cache
