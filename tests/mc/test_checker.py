"""Unit tests for the symbolic CTL model checker on known structures."""


from repro.ctl import parse_ctl
from repro.expr import Var
from repro.expr.arith import increment_mod_bits, mux
from repro.fsm import CircuitBuilder, ExplicitGraph
from repro.mc import ModelChecker


def chain_graph():
    """s0 -> s1 -> s2 -> s3 (self-loop), labels: p on s0-s2, q on s3."""
    g = ExplicitGraph("chain")
    g.state("s0", labels={"p"}, initial=True)
    g.state("s1", labels={"p"})
    g.state("s2", labels={"p"})
    g.state("s3", labels={"q"})
    g.edge("s0", "s1")
    g.edge("s1", "s2")
    g.edge("s2", "s3")
    g.self_loop_terminal_states()
    return g


def branch_graph():
    """s0 branches to a q-path and a !q lasso."""
    g = ExplicitGraph("branch")
    g.state("s0", labels={"p"}, initial=True)
    g.state("s1", labels={"p"})
    g.state("s2", labels={"q"})
    g.state("s3", labels=set())
    g.edge("s0", "s1")
    g.edge("s1", "s2")
    g.edge("s0", "s3")
    g.edge("s3", "s3")
    g.self_loop_terminal_states()
    return g


class TestBasicOperators:
    def test_atom_sat(self):
        g = chain_graph()
        fsm = g.to_fsm()
        mc = ModelChecker(fsm)
        sat = mc.sat(parse_ctl("p"))
        assert g.set_to_states(fsm, sat) == {"s0", "s1", "s2"}

    def test_ax(self):
        g = chain_graph()
        fsm = g.to_fsm()
        mc = ModelChecker(fsm)
        sat = mc.sat(parse_ctl("AX p"))
        # Successors: s0->s1(p), s1->s2(p), s2->s3(!p), s3->s3(!p)
        assert g.set_to_states(fsm, sat) >= {"s0", "s1"}
        assert "s2" not in g.set_to_states(fsm, sat)

    def test_ag(self):
        g = chain_graph()
        fsm = g.to_fsm()
        mc = ModelChecker(fsm)
        sat = mc.sat(parse_ctl("AG q"))
        assert g.set_to_states(fsm, sat) == {"s3"}

    def test_af(self):
        g = chain_graph()
        fsm = g.to_fsm()
        mc = ModelChecker(fsm)
        assert mc.holds(parse_ctl("AF q"))

    def test_af_fails_on_branch(self):
        g = branch_graph()
        fsm = g.to_fsm()
        mc = ModelChecker(fsm)
        # The s3 lasso never reaches q.
        assert not mc.holds(parse_ctl("AF q"))

    def test_au(self):
        g = chain_graph()
        fsm = g.to_fsm()
        mc = ModelChecker(fsm)
        assert mc.holds(parse_ctl("A [p U q]"))

    def test_au_fails_when_p_drops(self):
        g = branch_graph()
        fsm = g.to_fsm()
        mc = ModelChecker(fsm)
        assert not mc.holds(parse_ctl("A [p U q]"))

    def test_ef_eg_ex(self):
        g = branch_graph()
        fsm = g.to_fsm()
        mc = ModelChecker(fsm)
        assert mc.holds(parse_ctl("EF q"))
        assert mc.holds(parse_ctl("EG !q"))
        assert mc.holds(parse_ctl("EX p"))

    def test_eu(self):
        g = branch_graph()
        fsm = g.to_fsm()
        mc = ModelChecker(fsm)
        assert mc.holds(parse_ctl("E [p U q]"))

    def test_nested_temporal(self):
        g = chain_graph()
        fsm = g.to_fsm()
        mc = ModelChecker(fsm)
        assert mc.holds(parse_ctl("AX AX AX q"))
        assert mc.holds(parse_ctl("AG (q -> AX q)"))


class TestVacuityAndEdgeCases:
    def test_true_false(self):
        fsm = chain_graph().to_fsm()
        mc = ModelChecker(fsm)
        assert mc.holds(parse_ctl("true"))
        assert not mc.holds(parse_ctl("false"))
        assert mc.holds(parse_ctl("AG true"))

    def test_implication_vacuous(self):
        fsm = chain_graph().to_fsm()
        mc = ModelChecker(fsm)
        assert mc.holds(parse_ctl("AG (q & p -> AX false)"))  # q&p empty

    def test_memoization_shares_subformulas(self):
        fsm = chain_graph().to_fsm()
        mc = ModelChecker(fsm)
        f = parse_ctl("AG (p -> AX p | AX q)")
        first = mc.sat(f)
        nodes_before = fsm.manager.created_nodes
        second = mc.sat(f)
        assert first == second
        assert fsm.manager.created_nodes == nodes_before  # pure cache hit

    def test_memoize_disabled(self):
        fsm = chain_graph().to_fsm()
        mc = ModelChecker(fsm, memoize=False)
        f = parse_ctl("AF q")
        assert mc.sat(f) == mc.sat(f)
        assert not mc._sat_cache


class TestCheckResult:
    def test_passing_check(self):
        fsm = chain_graph().to_fsm()
        mc = ModelChecker(fsm)
        result = mc.check(parse_ctl("AF q"))
        assert result.holds
        assert result.counterexample is None
        assert result.stats.seconds >= 0

    def test_failing_ag_has_trace(self):
        g = chain_graph()
        fsm = g.to_fsm()
        mc = ModelChecker(fsm)
        result = mc.check(parse_ctl("AG p"))
        assert not result.holds
        assert result.counterexample is not None
        # Trace must end in the !p state (s3) and start at the initial state.
        last = result.counterexample[-1]
        assert g.set_to_states(
            fsm, fsm.state_cube(last)
        ) == {"s3"}
        assert len(result.counterexample) == 4

    def test_failing_non_ag_reports_initial_state(self):
        fsm = branch_graph().to_fsm()
        mc = ModelChecker(fsm)
        result = mc.check(parse_ctl("AX q"))
        assert not result.holds
        assert len(result.counterexample) == 1

    def test_check_all(self):
        fsm = chain_graph().to_fsm()
        mc = ModelChecker(fsm)
        results = mc.check_all([parse_ctl("AF q"), parse_ctl("AG p")])
        assert [r.holds for r in results] == [True, False]


class TestOnCircuit:
    def build(self):
        b = CircuitBuilder("counter")
        b.input("stall")
        bits = ["c0", "c1"]
        nxt = increment_mod_bits(bits, 3)
        b.latch("c0", init=False, next_=mux(Var("stall"), Var("c0"), nxt[0]))
        b.latch("c1", init=False, next_=mux(Var("stall"), Var("c1"), nxt[1]))
        b.word("c", bits)
        return b.build()

    def test_counter_increments(self):
        fsm = self.build()
        mc = ModelChecker(fsm)
        assert mc.holds(parse_ctl("AG (!stall & c = 0 -> AX c = 1)"))
        assert mc.holds(parse_ctl("AG (!stall & c = 2 -> AX c = 0)"))
        assert mc.holds(parse_ctl("AG (stall & c = 1 -> AX c = 1)"))
        assert not mc.holds(parse_ctl("AG (c = 0 -> AX c = 1)"))  # stall!

    def test_counter_never_three(self):
        fsm = self.build()
        mc = ModelChecker(fsm)
        assert mc.holds(parse_ctl("AG c != 3"))

    def test_counter_af_needs_fairness(self):
        fsm = self.build()
        mc = ModelChecker(fsm)
        # Without fairness the counter can stall forever.
        assert not mc.holds(parse_ctl("AF c = 2"))


class TestFairness:
    def build_fair_counter(self):
        b = CircuitBuilder("counter")
        b.input("stall")
        bits = ["c0", "c1"]
        nxt = increment_mod_bits(bits, 3)
        b.latch("c0", init=False, next_=mux(Var("stall"), Var("c0"), nxt[0]))
        b.latch("c1", init=False, next_=mux(Var("stall"), Var("c1"), nxt[1]))
        b.word("c", bits)
        b.fairness("!stall")
        return b.build()

    def test_af_holds_under_fairness(self):
        fsm = self.build_fair_counter()
        mc = ModelChecker(fsm)
        assert mc.holds(parse_ctl("AF c = 2"))

    def test_fairness_can_be_ignored(self):
        fsm = self.build_fair_counter()
        mc = ModelChecker(fsm, use_fairness=False)
        assert not mc.holds(parse_ctl("AF c = 2"))

    def test_fair_states_all_here(self):
        fsm = self.build_fair_counter()
        mc = ModelChecker(fsm)
        # Every state can continue with infinitely many !stall steps.
        assert mc.fair_states().is_true()

    def test_eg_fair_excludes_unfair_lassos(self):
        # A graph where the only way to satisfy EG p is an unfair loop.
        g = ExplicitGraph("unfair")
        g.state("a", labels={"p"}, initial=True)
        g.state("b", labels={"p", "f"})
        g.edge("a", "a")       # p-loop but never fair
        g.edge("a", "b")
        g.edge("b", "b")       # fair p-loop
        fsm = g.to_fsm()
        fsm.fairness = [fsm.signal("f")]
        mc = ModelChecker(fsm)
        sat = mc.sat(parse_ctl("EG p"))
        assert g.set_to_states(fsm, sat) == {"a", "b"}
        # Now make b not-p: a's only fair continuation leaves p.
        g2 = ExplicitGraph("unfair2")
        g2.state("a", labels={"p"}, initial=True)
        g2.state("b", labels={"f"})
        g2.edge("a", "a")
        g2.edge("a", "b")
        g2.edge("b", "b")
        fsm2 = g2.to_fsm()
        fsm2.fairness = [fsm2.signal("f")]
        mc2 = ModelChecker(fsm2)
        sat2 = mc2.sat(parse_ctl("EG p"))
        assert g2.set_to_states(fsm2, sat2) == set()
