"""`Analysis` facade error paths and their CLI exit-code contracts.

One test module for the failure surface: unknown builtin targets, invalid
stages, malformed ``.rml`` text, bad observed signals, coverage of failing
suites, and invalid engine/generator configuration reaching exit code 2
through every subcommand.
"""

from pathlib import Path

import pytest

from repro.analysis import Analysis
from repro.cli import main
from repro.engine import EngineConfig
from repro.errors import (
    ConfigError,
    CoverageError,
    ParseError,
    VerificationError,
)
from repro.suite import CoverageJob, execute_job


class TestFacadeErrors:
    def test_unknown_builtin_target(self):
        with pytest.raises(ValueError, match="unknown target 'nope'"):
            Analysis.builtin("nope")

    def test_invalid_stage_names_valid_ones(self):
        with pytest.raises(ValueError, match="valid stages: full, partial"):
            Analysis.builtin("counter", stage="bogus")

    def test_malformed_rml_text_raises_located_parse_error(self):
        bad = "MODULE m\nVAR\n  b : boolean\nSPEC b;\nOBSERVED b;\n"
        with pytest.raises(ParseError) as exc_info:
            Analysis.from_rml(bad, filename="bad.rml")
        assert exc_info.value.line is not None
        assert "bad.rml" in str(exc_info.value)

    def test_invalid_config_rejected_before_any_work(self):
        with pytest.raises(ConfigError):
            EngineConfig(trans="sideways")
        with pytest.raises(ConfigError):
            EngineConfig(gc_threshold=-5)

    def test_unknown_observed_signal_is_a_coverage_error(self):
        donor = Analysis.builtin("counter")
        analysis = Analysis.from_fsm(
            donor.fsm, donor.properties, observed="not_a_signal"
        )
        with pytest.raises(CoverageError, match="unknown observed signal"):
            analysis.coverage()

    def test_coverage_of_failing_suite_is_a_verification_error(self):
        analysis = Analysis.builtin("buffer-lo", stage="augmented", buggy=True)
        assert not analysis.holds()
        with pytest.raises(VerificationError):
            analysis.coverage()
        with pytest.raises(VerificationError):
            analysis.uncovered_traces()


class TestJobErrorCapture:
    def test_parse_error_becomes_error_status(self):
        job = CoverageJob(
            name="rml:broken", kind="rml", path="broken.rml",
            source="MODULE m\nVAR b : boolean\n",
        )
        result = execute_job(job)
        assert result.status == "error"
        assert result.error

    def test_missing_declarations_become_error_status(self):
        job = CoverageJob(
            name="rml:nospec", kind="rml", path="nospec.rml",
            source="MODULE m\nVAR\n  b : boolean;\nASSIGN\n"
                   "  next(b) := b;\nOBSERVED b;\n",
        )
        result = execute_job(job)
        assert result.status == "error"
        assert "SPEC" in result.error


class TestConfigErrorsExitTwo:
    """ConfigError maps to exit code 2 in exactly one place (main)."""

    def test_target_subcommand(self, capsys):
        assert main(["counter", "--gc-threshold", "-1"]) == 2
        assert "--gc-threshold" in capsys.readouterr().err

    def test_run_subcommand(self, capsys):
        example = str(
            Path(__file__).resolve().parents[1] / "examples" / "counter.rml"
        )
        assert main(["run", example, "--gc-growth", "0.5"]) == 2
        assert "--gc-growth" in capsys.readouterr().err

    def test_suite_subcommand(self, capsys):
        assert main(["suite", "--cache-threshold", "-2"]) == 2

    def test_fuzz_subcommand(self, capsys):
        assert main(["fuzz", "--budget", "1", "--max-word-width", "0"]) == 2


class TestUsageErrorsExitTwo:
    def test_unknown_target_exits_two(self, capsys):
        assert main(["definitely-not-a-target"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_invalid_stage_exits_two(self, capsys):
        assert main(["counter", "--stage", "bogus"]) == 2
        assert "valid stages" in capsys.readouterr().err

    def test_malformed_rml_file_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.rml"
        bad.write_text("MODULE m\nVAR\n  b : boolean\nOBSERVED b;\n")
        assert main(["run", str(bad)]) == 2
        assert "bad.rml" in capsys.readouterr().err
