"""Public API surface tests: the top-level namespace is complete and lazy."""

import pytest

import repro


def test_version_available():
    assert repro.__version__


def test_every_public_name_resolves():
    from repro import _api

    for name in _api.__all__:
        assert getattr(repro, name) is getattr(_api, name)


def test_dir_lists_public_names():
    names = dir(repro)
    for expected in ("CoverageEstimator", "ModelChecker", "BDDManager",
                     "parse_ctl", "build_counter"):
        assert expected in names


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.not_a_real_symbol


def test_private_attribute_access_raises():
    with pytest.raises(AttributeError):
        repro._not_exported


def test_error_hierarchy_rooted():
    from repro import (BDDError, CoverageError, EvaluationError, ModelError,
                       NotInSubsetError, ParseError, ReproError,
                       VerificationError)

    for exc in (BDDError, ParseError, EvaluationError, ModelError,
                NotInSubsetError, VerificationError, CoverageError):
        assert issubclass(exc, ReproError)


def test_console_script_entry_point():
    from repro.cli import main

    assert callable(main)
