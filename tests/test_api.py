"""Public API surface tests: the top-level namespace is complete and lazy."""

import pytest

import repro


def test_version_available():
    assert repro.__version__


def test_every_public_name_resolves():
    from repro import _api

    for name in _api.__all__:
        assert getattr(repro, name) is getattr(_api, name)


def test_dir_lists_public_names():
    names = dir(repro)
    for expected in ("CoverageEstimator", "ModelChecker", "BDDManager",
                     "parse_ctl", "build_counter"):
        assert expected in names


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.not_a_real_symbol


def test_private_attribute_access_raises():
    with pytest.raises(AttributeError):
        repro._not_exported


def test_error_hierarchy_rooted():
    from repro import (BDDError, CoverageError, EvaluationError, ModelError,
                       NotInSubsetError, ParseError, ReproError,
                       VerificationError)

    for exc in (BDDError, ParseError, EvaluationError, ModelError,
                NotInSubsetError, VerificationError, CoverageError):
        assert issubclass(exc, ReproError)


def test_console_script_entry_point():
    from repro.cli import main

    assert callable(main)


def test_module_entry_point():
    # python -m repro must resolve (the module exists and targets cli.main).
    import importlib

    module = importlib.import_module("repro.__main__")
    from repro.cli import main

    assert module.main is main


def test_all_imports_cleanly_and_matches_dir():
    """Snapshot of the API surface: every name in ``repro.__all__``
    resolves, and ``__all__`` and ``dir()`` agree on the public names."""
    public = repro.__all__
    assert "Analysis" in public
    assert "EngineConfig" in public
    for name in public:
        assert getattr(repro, name) is not None, name
    # dir() == __all__ plus module internals; every public name is listed
    # and nothing public is missing from __all__ (submodules hang off the
    # package as a side effect of imports and are not part of the surface).
    import types

    listed = set(dir(repro))
    assert set(public) <= listed
    underscoreless = {
        n for n in listed
        if not n.startswith("_")
        and not isinstance(getattr(repro, n), types.ModuleType)
    }
    assert underscoreless <= set(public), (
        f"public names missing from __all__: "
        f"{sorted(underscoreless - set(public))}"
    )


def test_star_import_exposes_facade():
    namespace = {}
    exec("from repro import *", namespace)
    for expected in ("Analysis", "AnalysisResult", "EngineConfig",
                     "ConfigError", "read_report", "__version__"):
        assert expected in namespace


def test_facade_and_config_errors_exported():
    from repro import Analysis, AnalysisResult, ConfigError, EngineConfig, ReportError

    assert issubclass(ConfigError, repro.ReproError)
    assert issubclass(ConfigError, ValueError)
    assert issubclass(ReportError, repro.ReproError)
    assert Analysis.builtin and AnalysisResult and EngineConfig
