"""Shared fixtures: the ``backend`` axis for backend-generic suites.

Any test that takes a ``backend`` argument runs once per BDD backend
(``dict`` and ``array`` by default).  ``pytest --backend array`` (or a
comma-separated list) narrows the axis — the CI matrix uses this to give
each backend its own tier-1 job without doubling every suite in one run.
"""

import pytest

from repro.bdd import BACKEND_NAMES


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        default="all",
        help=(
            "comma-separated BDD backends for backend-parametrized tests "
            f"(default: all = {','.join(BACKEND_NAMES)})"
        ),
    )


def pytest_generate_tests(metafunc):
    if "backend" in metafunc.fixturenames:
        option = metafunc.config.getoption("--backend")
        if option == "all":
            names = list(BACKEND_NAMES)
        else:
            names = [b for b in option.split(",") if b]
            unknown = sorted(set(names) - set(BACKEND_NAMES))
            if unknown or not names:
                raise pytest.UsageError(
                    f"--backend: unknown BDD backend(s) "
                    f"{', '.join(unknown) or '<none>'} "
                    f"(known: {', '.join(BACKEND_NAMES)})"
                )
        metafunc.parametrize("backend", names)
