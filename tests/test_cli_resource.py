"""The CLI's resource-management surface: --gc-threshold / --auto-reorder.

The flags are cost knobs, never result knobs: every combination must
produce the same coverage numbers as the default policy, while the suite
JSON exposes the GC/peak counters the policy controls.
"""

import json
from pathlib import Path


from repro.cli import main
from repro.engine import EngineConfig
from repro.suite import CoverageJob, default_jobs, execute_job

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _without_costs(text: str) -> str:
    """Coverage output minus the cost line — the one thing GC schedules
    are allowed (expected!) to change."""
    return "\n".join(
        line for line in text.splitlines() if "estimation cost" not in line
    )


class TestTargetMode:
    def test_gc_threshold_accepted_and_result_unchanged(self, capsys):
        assert main(["counter"]) == 0
        default_out = capsys.readouterr().out
        assert main(["counter", "--gc-threshold", "1"]) == 0
        forced_out = capsys.readouterr().out
        assert _without_costs(forced_out) == _without_costs(default_out)
        assert "100.00%" in forced_out

    def test_gc_threshold_zero_disables(self, capsys):
        assert main(["counter", "--gc-threshold", "0"]) == 0
        assert "100.00%" in capsys.readouterr().out

    def test_negative_threshold_rejected(self, capsys):
        # ConfigError maps to exit code 2 in main — no SystemExit from
        # helpers any more.
        assert main(["counter", "--gc-threshold", "-5"]) == 2
        assert "--gc-threshold must be >= 0" in capsys.readouterr().err

    def test_bad_gc_growth_rejected(self, capsys):
        assert main(["counter", "--gc-growth", "0.5"]) == 2
        assert "--gc-growth must be >= 1.0" in capsys.readouterr().err

    def test_auto_reorder_accepted(self, capsys):
        assert main(["counter", "--auto-reorder"]) == 0
        assert "100.00%" in capsys.readouterr().out


class TestRunMode:
    def test_rml_with_resource_flags(self, capsys):
        path = str(EXAMPLES_DIR / "counter.rml")
        assert main(["run", path]) == 0
        default_out = capsys.readouterr().out
        assert main(["run", path, "--gc-threshold", "1"]) == 0
        assert _without_costs(capsys.readouterr().out) == _without_costs(
            default_out
        )


class TestSuiteMode:
    def test_flags_reach_jobs(self):
        config = EngineConfig(gc_threshold=12345, auto_reorder=True)
        jobs = default_jobs(config=config)
        assert jobs
        assert all(j.config == config for j in jobs)
        assert "--gc-threshold 12345" in jobs[0].describe()
        assert "--auto-reorder" in jobs[0].describe()

    def test_json_report_carries_gc_counters(self, capsys, tmp_path):
        out = tmp_path / "suite.json"
        assert (
            main(
                [
                    "suite",
                    "--no-builtins",
                    str(EXAMPLES_DIR),
                    "--json",
                    str(out),
                    "--gc-threshold",
                    "5000",
                ]
            )
            == 0
        )
        capsys.readouterr()
        report = json.loads(out.read_text())
        for job in report["jobs"]:
            assert "gc_runs" in job
            assert "gc_seconds" in job
            assert job["peak_live_nodes"] > 0
        totals = report["totals"]
        assert totals["gc_runs"] == sum(j["gc_runs"] for j in report["jobs"])
        assert totals["peak_live_nodes"] == max(
            j["peak_live_nodes"] for j in report["jobs"]
        )

    def test_forced_gc_percentages_match_default(self, capsys, tmp_path):
        default_json = tmp_path / "default.json"
        forced_json = tmp_path / "forced.json"
        argv = ["suite", "--no-builtins", str(EXAMPLES_DIR)]
        assert main(argv + ["--json", str(default_json)]) == 0
        assert main(argv + ["--json", str(forced_json), "--gc-threshold", "2000"]) == 0
        capsys.readouterr()

        def percentages(path):
            return {
                j["name"]: (j["percentage"], j["covered_states"], j["space_states"])
                for j in json.loads(path.read_text())["jobs"]
            }

        assert percentages(forced_json) == percentages(default_json)


class TestJobExecution:
    def test_builtin_job_with_policy_fields(self):
        job = CoverageJob(
            name="counter@full",
            kind="builtin",
            target="counter",
            stage="full",
            # Tiny threshold: the counter's live set is a few hundred
            # nodes, so this forces collections to actually happen.
            config=EngineConfig(gc_threshold=50),
        )
        result = execute_job(job)
        assert result.status == "ok"
        assert result.gc_runs >= 1
        assert result.peak_live_nodes > 0
        payload = result.to_json()
        assert payload["gc_runs"] == result.gc_runs

    def test_jobs_pickle_roundtrip(self):
        import pickle

        job = CoverageJob(
            name="x", kind="builtin", target="counter",
            config=EngineConfig(gc_threshold=7, auto_reorder=True),
        )
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job
