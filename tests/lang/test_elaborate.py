"""Tests for module elaboration (repro.lang.elaborate)."""

import pytest

from repro.coverage import CoverageEstimator
from repro.errors import ParseError
from repro.lang import elaborate, parse_module
from repro.mc import ModelChecker

COUNTER = """
MODULE counter_mod5
VAR
  stall : boolean;
  reset : boolean;
  count : word[3];
ASSIGN
  init(count) := 0;
  next(count) := case
    reset : 0;
    stall : count;
    count = 4 : 0;
    TRUE : count + 1;
  esac;
OBSERVED count;
"""


class TestStructure:
    def test_vars_partition_into_latches_and_inputs(self):
        model = elaborate(parse_module(COUNTER))
        fsm = model.fsm
        assert set(fsm.inputs) == {"stall", "reset"}
        assert set(fsm.latches) == {"count0", "count1", "count2"}
        assert fsm.words["count"] == ["count0", "count1", "count2"]
        assert model.observed == ["count"]

    def test_word_input(self):
        source = (
            "MODULE m\nVAR\n  sel : word[2];\n  x : boolean;\n"
            "ASSIGN\n  next(x) := sel = 3;\n"
        )
        fsm = elaborate(parse_module(source)).fsm
        assert set(fsm.inputs) == {"sel0", "sel1"}

    def test_defines_and_word_sum(self):
        source = """
MODULE m
VAR
  a : word[2];
  b : word[2];
  x : boolean;
ASSIGN
  next(a) := a;
  next(b) := b;
  next(x) := total = 6;
DEFINE
  total := a + b;
  maxed := total = 6;
"""
        fsm = elaborate(parse_module(source)).fsm
        # a + b needs one extra bit beyond the widest operand
        assert fsm.words["total"] == ["total0", "total1", "total2"]
        assert "maxed" in fsm.signals

    def test_fairness_and_dontcare_pass_through(self):
        source = (
            "MODULE m\nVAR\n  s : boolean;\n  x : boolean;\n"
            "ASSIGN\n  next(x) := !s;\nFAIRNESS !s;\nDONTCARE x;\n"
        )
        model = elaborate(parse_module(source))
        assert len(model.fsm.fairness) == 1
        assert model.dont_care is not None


class TestSemantics:
    def test_counter_behaviour_matches_python_builder(self):
        from repro.circuits import build_counter, counter_properties

        model = elaborate(parse_module(COUNTER))
        props = counter_properties()
        checker = ModelChecker(model.fsm)
        assert all(checker.holds(p) for p in props)
        report = CoverageEstimator(model.fsm, checker=checker).estimate(
            props, observed="count"
        )
        reference = CoverageEstimator(build_counter()).estimate(
            props, observed="count"
        )
        assert report.percentage == reference.percentage == 100.0
        assert report.space_count == reference.space_count

    def test_init_defaults_to_zero(self):
        source = (
            "MODULE m\nVAR\n  w : word[2];\n  x : boolean;\n"
            "ASSIGN\n  next(w) := w + 1;\n  next(x) := !x;\n"
        )
        fsm = elaborate(parse_module(source)).fsm
        states = list(fsm.iter_states(fsm.init))
        assert len(states) == 1
        assert all(not value for value in states[0].values())

    def test_case_priority_is_first_match_wins(self):
        source = """
MODULE m
VAR
  a : boolean;
  w : word[2];
ASSIGN
  init(w) := 0;
  next(w) := case
    a : 1;
    TRUE : 2;
  esac;
"""
        fsm = elaborate(parse_module(source)).fsm
        image = fsm.image(fsm.init & fsm.signal("a"))
        values = {
            (state["w0"], state["w1"]) for state in fsm.iter_states(image)
        }
        # a held in the start state, so the first arm fires: w' = 1
        assert values == {(True, False)}

    def test_word_offset_wraps(self):
        source = (
            "MODULE m\nVAR\n  u : boolean;\n  w : word[2];\n"
            "ASSIGN\n  init(w) := 0;\n  next(w) := w - 1;\n"
        )
        fsm = elaborate(parse_module(source)).fsm
        image = fsm.image(fsm.init)
        values = {
            (state["w0"], state["w1"]) for state in fsm.iter_states(image)
        }
        assert values == {(True, True)}  # 0 - 1 wraps to 3


class TestValidation:
    def err(self, source):
        with pytest.raises(ParseError) as info:
            elaborate(parse_module(source))
        return info.value

    def test_unknown_signal_in_next(self):
        err = self.err(
            "MODULE m\nVAR\n  x : boolean;\nASSIGN\n  next(x) := zz;\n"
        )
        assert "unknown signal 'zz'" in str(err)
        assert err.line == 5

    def test_unknown_observed(self):
        err = self.err(
            "MODULE m\nVAR\n  x : boolean;\nASSIGN\n  next(x) := x;\n"
            "OBSERVED nope;\n"
        )
        assert "unknown OBSERVED signal 'nope'" in str(err)

    def test_unknown_signal_in_spec(self):
        err = self.err(
            "MODULE m\nVAR\n  x : boolean;\nASSIGN\n  next(x) := x;\n"
            "SPEC AG (ghost -> AX x);\n"
        )
        assert "unknown signal 'ghost' in SPEC" in str(err)
        assert err.line == 6

    def test_init_on_free_input(self):
        err = self.err(
            "MODULE m\nVAR\n  x : boolean;\n  y : boolean;\n"
            "ASSIGN\n  init(x) := TRUE;\n  next(y) := x;\n"
        )
        assert "free inputs take no reset value" in str(err)

    def test_non_exhaustive_case(self):
        err = self.err(
            "MODULE m\nVAR\n  w : word[2];\nASSIGN\n"
            "  next(w) := case\n    w = 0 : 1;\n  esac;\n"
        )
        assert "not exhaustive" in str(err)

    def test_word_constant_out_of_range(self):
        err = self.err(
            "MODULE m\nVAR\n  u : boolean;\n  w : word[2];\nASSIGN\n"
            "  next(w) := case u : 7; TRUE : w; esac;\n"
        )
        assert "out of range" in str(err)

    def test_offset_width_mismatch(self):
        err = self.err(
            "MODULE m\nVAR\n  a : word[2];\n  w : word[3];\nASSIGN\n"
            "  next(a) := a;\n  next(w) := a + 1;\n"
        )
        assert "matching widths" in str(err)

    def test_word_sum_outside_define(self):
        err = self.err(
            "MODULE m\nVAR\n  a : word[2];\nASSIGN\n  next(a) := a + a;\n"
        )
        # `a + a` parses as an offset target error: the parser sees
        # ident + ident and rejects it as a word value.
        assert "constant" in str(err) or "word" in str(err)

    def test_word_sum_unknown_operand(self):
        err = self.err(
            "MODULE m\nVAR\n  a : word[2];\nASSIGN\n  next(a) := a;\n"
            "DEFINE\n  t := a + ghost;\n"
        )
        assert "not a known word" in str(err)
