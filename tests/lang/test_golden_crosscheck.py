"""Golden cross-checks: each builtin circuit's .rml re-expression matches
the Python builder — same coverage percentage, same coverage space, same
covered-state count.

This is the acceptance gate for the .rml language: the textual models are
drop-in equivalents of the hand-built circuits, not approximations.
"""

from pathlib import Path

import pytest

from repro.coverage import CoverageEstimator
from repro.lang import elaborate, load_module
from repro.mc import ModelChecker
from repro.suite import build_builtin

EXAMPLES_DIR = Path(__file__).resolve().parent.parent.parent / "examples"

#: .rml file -> the (target, stage) it re-expresses.
GOLDEN = [
    ("counter.rml", "counter", "full"),
    ("priority_buffer.rml", "buffer-lo", "augmented"),
    ("circular_queue.rml", "queue-wrap", "final"),
    ("pipeline.rml", "pipeline", "augmented"),
]


@pytest.mark.parametrize(
    "rml_name, target, stage", GOLDEN, ids=[g[0] for g in GOLDEN]
)
def test_rml_matches_python_builder(rml_name, target, stage):
    model = elaborate(load_module(EXAMPLES_DIR / rml_name))
    checker = ModelChecker(model.fsm)
    failing = [p for p in model.specs if not checker.holds(p)]
    assert not failing, f"{rml_name}: {failing}"
    rml_report = CoverageEstimator(model.fsm, checker=checker).estimate(
        model.specs, observed=model.observed, dont_care=model.dont_care
    )

    fsm, props, observed, dont_care = build_builtin(target, stage=stage)
    ref_report = CoverageEstimator(fsm).estimate(
        props, observed=observed, dont_care=dont_care
    )

    assert rml_report.space_count == ref_report.space_count
    assert rml_report.covered_count == ref_report.covered_count
    assert rml_report.percentage == ref_report.percentage


@pytest.mark.parametrize(
    "rml_name, target, stage", GOLDEN, ids=[g[0] for g in GOLDEN]
)
def test_rml_transition_structure_matches(rml_name, target, stage):
    """Beyond the percentage: same reachable-state count and fairness."""
    model = elaborate(load_module(EXAMPLES_DIR / rml_name))
    fsm, *_ = build_builtin(target, stage=stage)
    assert model.fsm.count_states(model.fsm.reachable()) == fsm.count_states(
        fsm.reachable()
    )
    assert len(model.fsm.fairness) == len(fsm.fairness)


@pytest.mark.parametrize(
    "rml_name", ["traffic_light.rml", "arbiter.rml"]
)
def test_new_models_verify_and_reach_full_coverage(rml_name):
    model = elaborate(load_module(EXAMPLES_DIR / rml_name))
    checker = ModelChecker(model.fsm)
    assert all(checker.holds(p) for p in model.specs)
    report = CoverageEstimator(model.fsm, checker=checker).estimate(
        model.specs, observed=model.observed, dont_care=model.dont_care
    )
    assert report.percentage == 100.0
