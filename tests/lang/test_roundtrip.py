"""Round-trip property: parse -> print -> parse is the identity.

Covers every shipped ``.rml`` example (an acceptance criterion of the
language) plus synthetic modules exercising each construct.
"""

from pathlib import Path

import pytest

from repro.coverage import CoverageEstimator
from repro.lang import elaborate, load_module, module_to_str, parse_module
from repro.mc import ModelChecker

EXAMPLES_DIR = Path(__file__).resolve().parent.parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.rml"))


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    # The four paper circuits re-expressed plus at least two new models.
    assert {"counter", "priority_buffer", "circular_queue", "pipeline",
            "traffic_light", "arbiter"} <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_round_trips(path):
    module = load_module(path)
    printed = module_to_str(module)
    reparsed = parse_module(printed)
    assert reparsed == module
    # And printing is a fixpoint: print(parse(print(m))) == print(m).
    assert module_to_str(reparsed) == printed


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_round_tripped_module_elaborates_identically(path):
    module = load_module(path)
    reparsed = parse_module(module_to_str(module))
    original = elaborate(module)
    round_tripped = elaborate(reparsed)
    checker = ModelChecker(original.fsm)
    assert all(checker.holds(p) for p in original.specs)
    report_a = CoverageEstimator(original.fsm, checker=checker).estimate(
        original.specs, observed=original.observed,
        dont_care=original.dont_care,
    )
    report_b = CoverageEstimator(round_tripped.fsm).estimate(
        round_tripped.specs, observed=round_tripped.observed,
        dont_care=round_tripped.dont_care,
    )
    assert report_a.percentage == report_b.percentage
    assert report_a.space_count == report_b.space_count
    assert report_a.covered_count == report_b.covered_count


SYNTHETIC = """
MODULE synthetic
VAR
  a : boolean;
  b : word[2];
  c : word[2];
ASSIGN
  init(a) := TRUE;
  next(a) := case
    b = 0 : !a;
    TRUE : a;
  esac;
  init(b) := 2;
  next(b) := case
    a : b + 1;
    b = 3 : 0;
    TRUE : b - 1;
  esac;
DEFINE
  t := b + c;
  busy := t > 2 | a;
FAIRNESS !a;
SPEC AG (a -> AX b = 3);
SPEC AG (busy -> A [a U b = 0]);
OBSERVED b, a;
DONTCARE b = 3 & !a;
"""


def test_synthetic_module_round_trips():
    module = parse_module(SYNTHETIC)
    assert parse_module(module_to_str(module)) == module


def test_printer_is_parseable_canonical_form():
    module = parse_module(SYNTHETIC)
    printed = module_to_str(module)
    assert printed.startswith("MODULE synthetic\n")
    assert "init(a) := TRUE;" in printed
    assert "esac;" in printed
    assert "OBSERVED b, a;" in printed
    assert "DONTCARE" in printed
