"""Tests for the .rml tokenizer and module parser (repro.lang.parser)."""

import pytest

from repro.errors import ParseError
from repro.expr.ast import And, Const, Not, Var, WordCmp
from repro.lang import parse_module
from repro.lang.ast import (
    Case,
    WordConst,
    WordOffset,
    WordRef,
    WordSum,
)
from repro.lang.parser import tokenize_module


class TestTokenizer:
    def test_tracks_lines_and_columns(self):
        tokens = tokenize_module("MODULE m\nVAR\n  x : boolean;\n")
        kinds = [(t.text, t.line, t.column) for t in tokens[:6]]
        assert kinds == [
            ("MODULE", 1, 1), ("m", 1, 8), ("VAR", 2, 1),
            ("x", 3, 3), (":", 3, 5), ("boolean", 3, 7),
        ]

    def test_comments_are_dropped(self):
        tokens = tokenize_module("MODULE m -- trailing words & symbols ;;\nVAR\n")
        assert [t.text for t in tokens if t.kind != "eof"] == ["MODULE", "m", "VAR"]

    def test_illegal_character_reports_location(self):
        with pytest.raises(ParseError) as info:
            tokenize_module("MODULE m\n  @\n")
        assert info.value.line == 2
        assert info.value.column == 3

    def test_assignment_and_comparison_ops_tokenize(self):
        tokens = tokenize_module(":= == != <= >= <-> -> + -")
        assert [t.text for t in tokens if t.kind == "op"] == [
            ":=", "==", "!=", "<=", ">=", "<->", "->", "+", "-",
        ]


MINIMAL = """
MODULE m
VAR
  x : boolean;
  w : word[2];
ASSIGN
  init(w) := 0;
  next(w) := w + 1;
OBSERVED w;
"""


class TestModuleStructure:
    def test_minimal_module(self):
        module = parse_module(MINIMAL)
        assert module.name == "m"
        assert [v.name for v in module.vars] == ["x", "w"]
        assert module.vars[0].width is None
        assert module.vars[1].width == 2
        assert module.observed == ("w",)
        assert module.latch_names() == ("w",)
        assert module.input_names() == ("x",)

    def test_missing_module_keyword(self):
        with pytest.raises(ParseError, match="expected 'MODULE'"):
            parse_module("VAR x : boolean;")

    def test_duplicate_variable(self):
        with pytest.raises(ParseError, match="duplicate variable 'x'"):
            parse_module("MODULE m\nVAR\n  x : boolean;\n  x : word[2];\n")

    def test_undeclared_next_target_is_located(self):
        with pytest.raises(ParseError) as info:
            parse_module("MODULE m\nVAR\n  x : boolean;\nASSIGN\n  next(y) := x;\n")
        assert "undeclared variable 'y'" in str(info.value)
        assert info.value.line == 5

    def test_duplicate_next(self):
        source = (
            "MODULE m\nVAR\n  x : boolean;\nASSIGN\n"
            "  next(x) := x;\n  next(x) := !x;\n"
        )
        with pytest.raises(ParseError, match="duplicate next"):
            parse_module(source)

    def test_init_value_range_checked(self):
        source = "MODULE m\nVAR\n  w : word[2];\nASSIGN\n  init(w) := 4;\n  next(w) := w;\n"
        with pytest.raises(ParseError, match="out of range"):
            parse_module(source)

    def test_filename_appears_in_errors(self):
        with pytest.raises(ParseError, match=r"boom\.rml:1:1"):
            parse_module("nonsense", filename="boom.rml")


class TestValues:
    def test_word_value_forms(self):
        source = """
MODULE m
VAR
  sel : boolean;
  w : word[2];
ASSIGN
  next(w) := case
    sel : 3;
    w = 1 : w - 1;
    w = 2 : w + 1;
    TRUE : w;
  esac;
"""
        module = parse_module(source)
        case = module.nexts[0].value
        assert isinstance(case, Case)
        values = [arm.value for arm in case.arms]
        assert values == [
            WordConst(3), WordOffset("w", -1), WordOffset("w", 1), WordRef("w"),
        ]

    def test_boolean_case_values_are_expressions(self):
        source = """
MODULE m
VAR
  a : boolean;
  x : boolean;
ASSIGN
  next(x) := case
    a : !x;
    TRUE : x & a;
  esac;
"""
        case = parse_module(source).nexts[0].value
        assert case.arms[0].value == Not(Var("x"))
        assert case.arms[1].value == And((Var("x"), Var("a")))
        assert case.arms[1].condition == Const(True)

    def test_word_sum_define(self):
        source = """
MODULE m
VAR
  a : word[2];
  b : word[2];
DEFINE
  total := a + b;
  some := a = 1 & b = 2;
"""
        module = parse_module(source)
        assert module.defines[0].value == WordSum("a", "b")
        assert module.defines[1].value == And(
            (WordCmp("==", "a", 1), WordCmp("==", "b", 2))
        )

    def test_unterminated_case(self):
        source = "MODULE m\nVAR\n  x : boolean;\nASSIGN\n  next(x) := case\n    TRUE : x;\n"
        with pytest.raises(ParseError, match="unterminated case|unterminated"):
            parse_module(source)


class TestEmbeddedErrors:
    def test_expression_error_maps_to_source_location(self):
        source = "MODULE m\nVAR\n  x : boolean;\nASSIGN\n  next(x) := x & & x;\n"
        with pytest.raises(ParseError) as info:
            parse_module(source)
        assert info.value.line == 5
        assert info.value.column == 18

    def test_ctl_error_maps_to_source_location(self):
        source = "MODULE m\nVAR\n  x : boolean;\nSPEC AG (x -> AX );\n"
        with pytest.raises(ParseError) as info:
            parse_module(source)
        assert info.value.line == 4
        assert info.value.column == 18

    def test_spec_parses_nested_until(self):
        source = (
            "MODULE m\nVAR\n  x : boolean;\n"
            "SPEC AG (x -> A [x U A [x U !x]]);\n"
        )
        module = parse_module(source)
        assert len(module.specs) == 1

    def test_dontcare_and_fairness(self):
        source = (
            "MODULE m\nVAR\n  x : boolean;\n"
            "FAIRNESS !x;\nDONTCARE x & x;\n"
        )
        module = parse_module(source)
        assert module.fairness[0].expr == Not(Var("x"))
        assert module.dont_care is not None

    def test_duplicate_dontcare_rejected(self):
        source = (
            "MODULE m\nVAR\n  x : boolean;\n"
            "DONTCARE x;\nDONTCARE !x;\n"
        )
        with pytest.raises(ParseError, match="duplicate DONTCARE"):
            parse_module(source)
