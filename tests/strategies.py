"""Shared hypothesis strategies, built on the :mod:`repro.gen` primitives.

Before the fuzzing subsystem existed, four test modules each carried their
own copy of a random-graph composite and a recursive CTL formula
strategy.  They now all delegate to the deterministic seed-driven
generators in :mod:`repro.gen` — the same primitives ``repro fuzz`` uses —
so the fuzzer and the property-based tests explore the same scenario
space and a fix to one generator fixes all consumers.

Each strategy draws an integer seed and maps it through the pure
generator; shrinking therefore happens in seed space (hypothesis walks
toward small seeds), while *structural* minimisation of interesting cases
is the job of ``repro.gen.shrink``.
"""

import random

from hypothesis import strategies as st

from repro.expr.ast import Expr
from repro.gen import generate, random_actl, random_ctl, random_graph

#: The label universe the graph-based tests historically used.
LABELS = ["p", "q"]

_SEEDS = st.integers(0, 2**32 - 1)


def graphs(max_states: int = 5, labels=tuple(LABELS)):
    """Random explicit Kripke structures (total, >= 1 initial state)."""
    return _SEEDS.map(
        lambda seed: random_graph(
            random.Random(f"graph:{seed}"),
            max_states=max_states,
            labels=list(labels),
        )
    )


def ctl_formulas(atoms, depth: int = 3):
    """Random full-CTL formulas (both path quantifiers) over ``atoms``."""
    pool = _as_exprs(atoms)
    return _SEEDS.map(
        lambda seed: random_ctl(random.Random(f"ctl:{seed}"), pool, depth)
    )


def acceptable_formulas(atoms, depth: int = 3):
    """Random members of the paper's acceptable ACTL subset."""
    pool = _as_exprs(atoms)
    return _SEEDS.map(
        lambda seed: random_actl(random.Random(f"actl:{seed}"), pool, depth)
    )


def modules(params=None):
    """Random generated models (:class:`repro.gen.GeneratedModel`).

    Each value carries both the rendered ``.rml`` source (``.text``) and
    its parsed AST (``.module``) — what the serve-key invariance tests
    need to relate concrete syntax to canonical identity.
    """
    return _SEEDS.map(lambda seed: generate(f"module:{seed}", params))


def _as_exprs(atoms):
    pool = list(atoms)
    if not all(isinstance(a, Expr) for a in pool):
        raise TypeError("atom pools are plain expressions (repro.expr.Expr)")
    return pool
