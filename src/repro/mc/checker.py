"""Symbolic CTL model checking over an :class:`~repro.fsm.fsm.FSM`.

The checker computes satisfaction sets bottom-up with the classic EX/EU/EG
core; universal operators go through duality.  Fairness constraints (paper
Section 4.3) relativise every path quantifier to *fair paths* — paths along
which each constraint holds infinitely often — via the Emerson-Lei fixpoint
for fair ``EG`` and target-strengthening for ``EX``/``EU``.

Satisfaction sets are memoised per formula object; the coverage estimator
shares a checker instance, which implements the paper's remark that results
computed during verification can be reused during coverage estimation
(Section 3, complexity paragraph).

Every path quantifier bottoms out in :meth:`FSM.preimage`, so the checker
transparently inherits the FSM's transition-relation mode: on a
partitioned machine (the default) each ``EX`` step runs the scheduled
early-quantification chain instead of one product against a monolithic
relation BDD — see :mod:`repro.fsm.partition` and ``docs/performance.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..bdd import Function
from ..ctl.actl import desugar_af
from ..ctl.ast import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    Atom,
    CtlAnd,
    CtlFormula,
    CtlIff,
    CtlImplies,
    CtlNot,
    CtlOr,
    CtlXor,
    collapse,
)
from ..fsm.fsm import FSM
from .stats import WorkMeter, WorkStats

__all__ = ["ModelChecker", "CheckResult"]


@dataclass
class CheckResult:
    """Outcome of checking one property.

    Attributes
    ----------
    formula:
        The checked formula.
    holds:
        Whether every initial state satisfies it.
    sat:
        The full satisfaction set (over all states, not just reachable).
    stats:
        Time/BDD work spent on this check.
    counterexample:
        For failing properties: a trace (list of state assignments) from an
        initial state to a violation witness where one can be derived (AG
        bodies); otherwise a single violating initial state.
    """

    formula: CtlFormula
    holds: bool
    sat: Function
    stats: WorkStats
    counterexample: Optional[List[Dict[str, bool]]] = None


class ModelChecker:
    """CTL model checker bound to one FSM.

    Parameters
    ----------
    fsm:
        The machine to check.
    use_fairness:
        Honour the FSM's fairness constraints (default) or ignore them.
    memoize:
        Cache satisfaction sets per (sub)formula.  The coverage estimator
        relies on this cache being shared; disable only for the memoisation
        ablation benchmark.
    """

    def __init__(self, fsm: FSM, use_fairness: bool = True, memoize: bool = True):
        self.fsm = fsm
        self.fairness = list(fsm.fairness) if use_fairness else []
        self.memoize = memoize
        self._sat_cache: Dict[CtlFormula, Function] = {}
        self._norm_cache: Dict[CtlFormula, CtlFormula] = {}
        self._fair_states: Optional[Function] = None

    def _normalized(self, formula: CtlFormula) -> CtlFormula:
        """The canonical cache key: collapsed propositional subtrees, ``AF``
        desugared to ``A[true U .]``.

        This is the same rewrite :func:`~repro.ctl.actl.normalize_for_coverage`
        applies (minus the acceptable-subset validation, which the checker
        does not impose), so satisfaction sets memoised while *verifying*
        ``AF ack`` are found again when the coverage estimator asks for
        ``A[true U ack]`` — the paper's reuse remark would otherwise be lost
        to a hash mismatch between equivalent spellings.
        """
        cached = self._norm_cache.get(formula)
        if cached is None:
            cached = desugar_af(collapse(formula))
            self._norm_cache[formula] = cached
        return cached

    # ------------------------------------------------------------------
    # Fairness machinery
    # ------------------------------------------------------------------

    def fair_states(self) -> Function:
        """States from which some fair path starts (``EG_fair true``).

        Without fairness constraints this is the whole state space.
        """
        if self._fair_states is None:
            if not self.fairness:
                self._fair_states = self.fsm.true_set()
            else:
                self._fair_states = self._eg_fair(self.fsm.true_set())
        return self._fair_states

    def _ex_plain(self, states: Function) -> Function:
        return self.fsm.preimage(states)

    def _eu_plain(self, constraint: Function, target: Function) -> Function:
        reached = target
        frontier = target
        while not frontier.is_false():
            new = (self._ex_plain(frontier) & constraint).diff(reached)
            reached = reached | new
            frontier = new
        return reached

    def _eg_plain(self, states: Function) -> Function:
        current = states
        while True:
            new = states & self._ex_plain(current)
            if new == current:
                return current
            current = new

    def _eg_fair(self, states: Function) -> Function:
        """Emerson-Lei: ``EG_fair p = nu Z. p & AND_i EX E[p U Z & p & c_i]``."""
        current = states
        while True:
            new = states
            for constraint in self.fairness:
                target = current & states & constraint
                new = new & self._ex_plain(self._eu_plain(states, target))
            if new == current:
                return current
            current = new

    # ------------------------------------------------------------------
    # Fair path quantifiers (the checker's EX/EU/EG)
    # ------------------------------------------------------------------

    def _ex(self, states: Function) -> Function:
        if not self.fairness:
            return self._ex_plain(states)
        return self._ex_plain(states & self.fair_states())

    def _eu(self, constraint: Function, target: Function) -> Function:
        if not self.fairness:
            return self._eu_plain(constraint, target)
        return self._eu_plain(constraint, target & self.fair_states())

    def _eg(self, states: Function) -> Function:
        if not self.fairness:
            return self._eg_plain(states)
        return self._eg_fair(states)

    # ------------------------------------------------------------------
    # Satisfaction sets
    # ------------------------------------------------------------------

    def sat(self, formula: CtlFormula) -> Function:
        """The set of states satisfying ``formula`` (fair semantics).

        Memoised on the *normalized* formula, so syntactically different but
        equivalent spellings (``AF ack`` vs ``A[true U ack]``, re-parsed vs
        collapsed propositional subtrees) share one cache entry.
        """
        formula = self._normalized(formula)
        if self.memoize:
            cached = self._sat_cache.get(formula)
            if cached is not None:
                return cached
        result = self._sat_rec(formula)
        if self.memoize:
            self._sat_cache[formula] = result
        return result

    def _sat_rec(self, f: CtlFormula) -> Function:
        fsm = self.fsm
        if isinstance(f, Atom):
            return fsm.symbolize(f.expr)
        if isinstance(f, CtlNot):
            return ~self.sat(f.operand)
        if isinstance(f, CtlAnd):
            out = fsm.true_set()
            for arg in f.args:
                out = out & self.sat(arg)
            return out
        if isinstance(f, CtlOr):
            out = fsm.empty_set()
            for arg in f.args:
                out = out | self.sat(arg)
            return out
        if isinstance(f, CtlImplies):
            return self.sat(f.lhs).implies(self.sat(f.rhs))
        if isinstance(f, CtlIff):
            return self.sat(f.lhs).iff(self.sat(f.rhs))
        if isinstance(f, CtlXor):
            return self.sat(f.lhs) ^ self.sat(f.rhs)
        if isinstance(f, EX):
            return self._ex(self.sat(f.operand))
        if isinstance(f, EF):
            return self._eu(fsm.true_set(), self.sat(f.operand))
        if isinstance(f, EU):
            return self._eu(self.sat(f.lhs), self.sat(f.rhs))
        if isinstance(f, EG):
            return self._eg(self.sat(f.operand))
        if isinstance(f, AX):
            return ~self._ex(~self.sat(f.operand))
        if isinstance(f, AG):
            return ~self._eu(fsm.true_set(), ~self.sat(f.operand))
        if isinstance(f, AF):
            return ~self._eg(~self.sat(f.operand))
        if isinstance(f, AU):
            p = self.sat(f.lhs)
            q = self.sat(f.rhs)
            not_q = ~q
            # A[p U q] = !( E[!q U (!p & !q)] | EG !q )
            return ~(self._eu(not_q, ~p & not_q) | self._eg(not_q))
        raise TypeError(f"unknown CTL node {type(f).__name__}")

    # ------------------------------------------------------------------
    # Top-level checks
    # ------------------------------------------------------------------

    def holds(self, formula: CtlFormula) -> bool:
        """Whether every initial state satisfies ``formula`` — ``M, SI |= f``."""
        return self.fsm.init.subseteq(self.sat(formula))

    def check(self, formula: CtlFormula) -> CheckResult:
        """Check ``formula``, measuring cost and deriving a counterexample."""
        span = self.fsm.telemetry.span("verify", property=str(formula))
        with span, WorkMeter(self.fsm.manager) as meter:
            sat = self.sat(formula)
            holds = self.fsm.init.subseteq(sat)
            counterexample = None
            if not holds:
                counterexample = self._counterexample(formula, sat)
        return CheckResult(
            formula=formula,
            holds=holds,
            sat=sat,
            stats=meter.stats,
            counterexample=counterexample,
        )

    def check_all(self, formulas) -> List[CheckResult]:
        """Check a property suite; memoisation is shared across properties."""
        return [self.check(f) for f in formulas]

    def _counterexample(
        self, formula: CtlFormula, sat: Function
    ) -> List[Dict[str, bool]]:
        """A best-effort failure witness.

        For ``AG f`` the witness is a shortest trace from an initial state to
        a reachable state violating ``f`` — the classic invariant
        counterexample.  For other shapes, the violating initial state is
        reported (a full tree-shaped CTL counterexample is out of scope).
        """
        if isinstance(formula, AG):
            violation = ~self.sat(formula.operand) & self.fsm.reachable()
            trace = self.fsm.shortest_trace(violation)
            if trace is not None:
                return trace
        bad_init = self.fsm.init.diff(sat)
        return [self.fsm._pick(bad_init)]
