"""Model checking: symbolic CTL checker, explicit oracle, stats, witnesses."""

from .checker import CheckResult, ModelChecker
from .explicit_checker import ExplicitModelChecker
from .stats import WorkMeter, WorkStats
from .witness import format_trace, input_sequence

__all__ = [
    "ModelChecker",
    "CheckResult",
    "ExplicitModelChecker",
    "WorkMeter",
    "WorkStats",
    "format_trace",
    "input_sequence",
]
