"""Work measurement for verification and coverage runs.

Table 2 of the paper reports, per signal, the cost of model checking and of
coverage estimation as "BDD nodes - time".  :class:`WorkMeter` captures the
same two quantities against our engine: wall-clock seconds and the number of
BDD nodes created while the measured block ran (a machine-independent work
measure), plus the manager's live node count at the end.

Since the engine gained an automatic resource manager
(:class:`~repro.bdd.policy.ResourcePolicy`), the meter also records its
footprint: garbage collections that ran during the phase, the wall-clock
time they cost, the nodes they recycled, reordering passes, and the
manager's peak live-node count — the number that actually bounds memory on
large designs.

The meter deltas :meth:`~repro.bdd.manager.BDDManager.resource_stats`
between its enter and exit snapshots, so its field names *are* the
manager's counter schema (``nodes_created``, ``gc_runs``, ...) — the one
naming every emission layer (suite JSON, ``repro.obs`` spans, ``repro
bench`` baselines) shares.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..bdd import BDDManager

__all__ = ["WorkStats", "WorkMeter"]


@dataclass
class WorkStats:
    """Cost of one measured phase."""

    #: Wall-clock seconds.
    seconds: float = 0.0
    #: BDD nodes created during the phase (allocation work).
    nodes_created: int = 0
    #: Live BDD nodes in the manager when the phase ended.
    nodes_live: int = 0
    #: Garbage collections completed during the phase (manual + automatic).
    gc_runs: int = 0
    #: Wall-clock seconds spent inside those collections (GC overhead).
    gc_seconds: float = 0.0
    #: Node slots those collections recycled.
    gc_freed: int = 0
    #: Automatic reordering passes completed during the phase.
    reorder_runs: int = 0
    #: Combined operation-cache entry count when the phase ended (a gauge,
    #: not a delta: caches persist across phases and evictions can shrink
    #: them mid-phase).
    cache_entries: int = 0
    #: The manager's live-node high-water mark when the phase ended — the
    #: memory bound of the run so far (monotone across phases on a manager).
    peak_live_nodes: int = 0

    def __add__(self, other: "WorkStats") -> "WorkStats":
        """Accumulate two *sequential* phases (``other`` is the later one):
        work counters sum, gauges take the later/larger snapshot."""
        return WorkStats(
            seconds=self.seconds + other.seconds,
            nodes_created=self.nodes_created + other.nodes_created,
            nodes_live=max(self.nodes_live, other.nodes_live),
            gc_runs=self.gc_runs + other.gc_runs,
            gc_seconds=self.gc_seconds + other.gc_seconds,
            gc_freed=self.gc_freed + other.gc_freed,
            reorder_runs=self.reorder_runs + other.reorder_runs,
            cache_entries=max(self.cache_entries, other.cache_entries),
            peak_live_nodes=max(self.peak_live_nodes, other.peak_live_nodes),
        )

    def format(self) -> str:
        """Render in the paper's "<nodes>k - <seconds>s" style."""
        if self.nodes_created >= 1000:
            nodes = f"{self.nodes_created / 1000:.0f}k"
        else:
            nodes = str(self.nodes_created)
        return f"{nodes} - {self.seconds:.2f}s"


class WorkMeter:
    """Context manager measuring time and node allocation on a manager.

    >>> from repro.bdd import BDDManager
    >>> manager = BDDManager(["x"])
    >>> with WorkMeter(manager) as meter:
    ...     _ = manager.var("x")
    >>> meter.stats.nodes_created
    1
    >>> meter.stats.gc_runs
    0
    """

    def __init__(self, manager: BDDManager):
        self.manager = manager
        self.stats: Optional[WorkStats] = None
        self._t0 = 0.0
        self._snap0: Optional[Dict[str, float]] = None

    def __enter__(self) -> "WorkMeter":
        self._t0 = time.perf_counter()
        self._snap0 = self.manager.resource_stats()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self.manager.resource_stats()
        start = self._snap0
        self.stats = WorkStats(
            seconds=time.perf_counter() - self._t0,
            nodes_created=end["nodes_created"] - start["nodes_created"],
            nodes_live=end["nodes_live"],
            gc_runs=end["gc_runs"] - start["gc_runs"],
            gc_seconds=end["gc_seconds"] - start["gc_seconds"],
            gc_freed=end["gc_freed"] - start["gc_freed"],
            reorder_runs=end["reorder_runs"] - start["reorder_runs"],
            cache_entries=end["cache_entries"],
            peak_live_nodes=end["peak_live_nodes"],
        )
