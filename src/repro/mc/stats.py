"""Work measurement for verification and coverage runs.

Table 2 of the paper reports, per signal, the cost of model checking and of
coverage estimation as "BDD nodes - time".  :class:`WorkMeter` captures the
same two quantities against our engine: wall-clock seconds and the number of
BDD nodes created while the measured block ran (a machine-independent work
measure), plus the manager's live node count at the end.

Since the engine gained an automatic resource manager
(:class:`~repro.bdd.policy.ResourcePolicy`), the meter also records its
footprint: garbage collections that ran during the phase, the wall-clock
time they cost, and the manager's peak live-node count — the number that
actually bounds memory on large designs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..bdd import BDDManager

__all__ = ["WorkStats", "WorkMeter"]


@dataclass
class WorkStats:
    """Cost of one measured phase."""

    #: Wall-clock seconds.
    seconds: float = 0.0
    #: BDD nodes created during the phase (allocation work).
    nodes_created: int = 0
    #: Live BDD nodes in the manager when the phase ended.
    nodes_live: int = 0
    #: Garbage collections completed during the phase (manual + automatic).
    gc_runs: int = 0
    #: Wall-clock seconds spent inside those collections (GC overhead).
    gc_seconds: float = 0.0
    #: The manager's live-node high-water mark when the phase ended — the
    #: memory bound of the run so far (monotone across phases on a manager).
    peak_live_nodes: int = 0

    def __add__(self, other: "WorkStats") -> "WorkStats":
        return WorkStats(
            seconds=self.seconds + other.seconds,
            nodes_created=self.nodes_created + other.nodes_created,
            nodes_live=max(self.nodes_live, other.nodes_live),
            gc_runs=self.gc_runs + other.gc_runs,
            gc_seconds=self.gc_seconds + other.gc_seconds,
            peak_live_nodes=max(self.peak_live_nodes, other.peak_live_nodes),
        )

    def format(self) -> str:
        """Render in the paper's "<nodes>k - <seconds>s" style."""
        if self.nodes_created >= 1000:
            nodes = f"{self.nodes_created / 1000:.0f}k"
        else:
            nodes = str(self.nodes_created)
        return f"{nodes} - {self.seconds:.2f}s"


class WorkMeter:
    """Context manager measuring time and node allocation on a manager.

    >>> from repro.bdd import BDDManager
    >>> manager = BDDManager(["x"])
    >>> with WorkMeter(manager) as meter:
    ...     _ = manager.var("x")
    >>> meter.stats.nodes_created
    1
    >>> meter.stats.gc_runs
    0
    """

    def __init__(self, manager: BDDManager):
        self.manager = manager
        self.stats: Optional[WorkStats] = None
        self._t0 = 0.0
        self._nodes0 = 0
        self._gc_runs0 = 0
        self._gc_seconds0 = 0.0

    def __enter__(self) -> "WorkMeter":
        self._t0 = time.perf_counter()
        self._nodes0 = self.manager.created_nodes
        self._gc_runs0 = self.manager.gc_runs
        self._gc_seconds0 = self.manager.gc_seconds
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stats = WorkStats(
            seconds=time.perf_counter() - self._t0,
            nodes_created=self.manager.created_nodes - self._nodes0,
            nodes_live=self.manager.node_count(),
            gc_runs=self.manager.gc_runs - self._gc_runs0,
            gc_seconds=self.manager.gc_seconds - self._gc_seconds0,
            peak_live_nodes=self.manager.peak_nodes,
        )
