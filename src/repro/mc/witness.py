"""Trace formatting helpers (counterexamples and traces to uncovered states).

The paper's estimator "prints out traces to uncovered states by performing a
breadth first reachability analysis ... and generating an input sequence
corresponding to this path" (Section 3).  The path search lives on the FSM
(:meth:`~repro.fsm.fsm.FSM.shortest_trace`); this module renders such traces
for humans, splitting each step into latch state and input stimulus.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..fsm.fsm import FSM

__all__ = ["format_trace", "input_sequence"]


def input_sequence(fsm: FSM, trace: List[Dict[str, bool]]) -> List[Dict[str, bool]]:
    """Extract the primary-input stimulus driving each step of a trace.

    The inputs of state ``k`` are what the circuit sees on cycle ``k``; the
    final state's inputs do not influence reaching it and are omitted.
    """
    return [
        {name: state[name] for name in fsm.inputs}
        for state in trace[:-1]
    ]


def format_trace(
    fsm: FSM, trace: Optional[List[Dict[str, bool]]], title: str = "trace"
) -> str:
    """Render a trace as numbered cycles with latch values and inputs."""
    if trace is None:
        return f"{title}: <target unreachable>"
    lines = [f"{title} ({len(trace)} states):"]
    input_names = set(fsm.inputs)
    for k, state in enumerate(trace):
        latches = {v: state[v] for v in fsm.state_vars if v not in input_names}
        inputs = {v: state[v] for v in fsm.inputs}
        line = f"  cycle {k}: {fsm.format_state(latches)}"
        if inputs and k < len(trace) - 1:
            stimulus = " ".join(f"{n}={int(v)}" for n, v in inputs.items())
            line += f"   [inputs: {stimulus}]"
        lines.append(line)
    return "\n".join(lines)
