"""Explicit-state CTL model checking (the validation oracle).

Implements the same logic as :class:`~repro.mc.checker.ModelChecker` but
over an :class:`~repro.fsm.explicit.ExplicitModel` with Python sets — an
independent code path used to validate the symbolic engine and to drive the
Definition-3 mutation oracle (which needs per-state label flips, passed in
as ``overrides``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..ctl.ast import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    Atom,
    CtlAnd,
    CtlFormula,
    CtlIff,
    CtlImplies,
    CtlNot,
    CtlOr,
    CtlXor,
)
from ..expr.ast import Expr
from ..fsm.explicit import ExplicitModel

__all__ = ["ExplicitModelChecker"]


class ExplicitModelChecker:
    """CTL checker over explicit adjacency lists.

    Parameters
    ----------
    model:
        The explicit Kripke structure.
    fairness:
        Fairness constraints as propositional expressions over the model's
        signals.
    overrides:
        Optional ``{signal name: per-state bool vector}`` shadow labelling;
        atoms see these values in place of (or in addition to) the model's
        own labels.  The mutation oracle injects the flipped ``q'`` here.
    """

    def __init__(
        self,
        model: ExplicitModel,
        fairness: Iterable[Expr] = (),
        overrides: Optional[Dict[str, List[bool]]] = None,
    ):
        self.model = model
        self.overrides = overrides
        self.all_states = frozenset(range(model.n))
        self.fair_sets = [
            frozenset(model.states_satisfying(expr, overrides))
            for expr in fairness
        ]
        self._fair_states: Optional[Set[int]] = None

    # ------------------------------------------------------------------
    # Plain path quantifiers
    # ------------------------------------------------------------------

    def _ex_plain(self, states: Set[int]) -> Set[int]:
        return {
            i
            for i in range(self.model.n)
            if any(j in states for j in self.model.successors[i])
        }

    def _eu_plain(self, constraint: Set[int], target: Set[int]) -> Set[int]:
        reached = set(target)
        frontier = list(target)
        while frontier:
            node = frontier.pop()
            for pred in self.model.predecessors[node]:
                if pred in constraint and pred not in reached:
                    reached.add(pred)
                    frontier.append(pred)
        return reached

    def _eg_plain(self, states: Set[int]) -> Set[int]:
        current = set(states)
        changed = True
        while changed:
            changed = False
            keep = {
                i
                for i in current
                if any(j in current for j in self.model.successors[i])
            }
            if keep != current:
                current = keep
                changed = True
        return current

    def _eg_fair(self, states: Set[int]) -> Set[int]:
        current = set(states)
        while True:
            new = set(states)
            for fair in self.fair_sets:
                target = current & states & fair
                new &= self._ex_plain(self._eu_plain(states, target))
            if new == current:
                return current
            current = new

    # ------------------------------------------------------------------
    # Fair quantifiers
    # ------------------------------------------------------------------

    def fair_states(self) -> Set[int]:
        """States with at least one fair path (all states if unconstrained)."""
        if self._fair_states is None:
            if not self.fair_sets:
                self._fair_states = set(self.all_states)
            else:
                self._fair_states = self._eg_fair(set(self.all_states))
        return self._fair_states

    def _ex(self, states: Set[int]) -> Set[int]:
        if not self.fair_sets:
            return self._ex_plain(states)
        return self._ex_plain(states & self.fair_states())

    def _eu(self, constraint: Set[int], target: Set[int]) -> Set[int]:
        if not self.fair_sets:
            return self._eu_plain(constraint, target)
        return self._eu_plain(constraint, target & self.fair_states())

    def _eg(self, states: Set[int]) -> Set[int]:
        if not self.fair_sets:
            return self._eg_plain(states)
        return self._eg_fair(states)

    # ------------------------------------------------------------------
    # Satisfaction
    # ------------------------------------------------------------------

    def sat(self, formula: CtlFormula) -> Set[int]:
        """State indices satisfying ``formula`` under fair semantics."""
        if isinstance(formula, Atom):
            return self.model.states_satisfying(formula.expr, self.overrides)
        if isinstance(formula, CtlNot):
            return set(self.all_states) - self.sat(formula.operand)
        if isinstance(formula, CtlAnd):
            out = set(self.all_states)
            for arg in formula.args:
                out &= self.sat(arg)
            return out
        if isinstance(formula, CtlOr):
            out: Set[int] = set()
            for arg in formula.args:
                out |= self.sat(arg)
            return out
        if isinstance(formula, CtlImplies):
            return (set(self.all_states) - self.sat(formula.lhs)) | self.sat(
                formula.rhs
            )
        if isinstance(formula, CtlIff):
            lhs, rhs = self.sat(formula.lhs), self.sat(formula.rhs)
            return (lhs & rhs) | (set(self.all_states) - lhs - rhs)
        if isinstance(formula, CtlXor):
            lhs, rhs = self.sat(formula.lhs), self.sat(formula.rhs)
            return (lhs | rhs) - (lhs & rhs)
        if isinstance(formula, EX):
            return self._ex(self.sat(formula.operand))
        if isinstance(formula, EF):
            return self._eu(set(self.all_states), self.sat(formula.operand))
        if isinstance(formula, EU):
            return self._eu(self.sat(formula.lhs), self.sat(formula.rhs))
        if isinstance(formula, EG):
            return self._eg(self.sat(formula.operand))
        if isinstance(formula, AX):
            return set(self.all_states) - self._ex(
                set(self.all_states) - self.sat(formula.operand)
            )
        if isinstance(formula, AG):
            return set(self.all_states) - self._eu(
                set(self.all_states),
                set(self.all_states) - self.sat(formula.operand),
            )
        if isinstance(formula, AF):
            return set(self.all_states) - self._eg(
                set(self.all_states) - self.sat(formula.operand)
            )
        if isinstance(formula, AU):
            p = self.sat(formula.lhs)
            q = self.sat(formula.rhs)
            not_q = set(self.all_states) - q
            not_p_and_not_q = not_q - p
            bad = self._eu(not_q, not_p_and_not_q) | self._eg(not_q)
            return set(self.all_states) - bad
        raise TypeError(f"unknown CTL node {type(formula).__name__}")

    def holds(self, formula: CtlFormula) -> bool:
        """Whether every initial state satisfies ``formula``."""
        return self.model.initial <= self.sat(formula)
