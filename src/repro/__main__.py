"""``python -m repro`` — the packaged CLI without the console script.

Identical to the ``repro-coverage`` entry point (:func:`repro.cli.main`);
``python -m repro --version`` reports the version from
:mod:`repro._version`.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
