"""Work-stealing shard execution: crash-isolated process fan-out.

The suite runner and the fuzz campaign driver used to fan work out with
``pool.map``: one ``ProcessPoolExecutor``, fixed chunks, and — fatally —
one exception channel.  A worker that died (``os._exit``, OOM-kill,
segfault in a C extension) raised :class:`BrokenProcessPool` out of
``pool.map`` and discarded every result that had already completed,
violating the runner's documented never-raise contract.  A slow item
also blocked its whole chunk (head-of-line blocking).

:func:`run_sharded` replaces that with sharded, restartable work units:

* The item list is split into many more **shards** than workers
  (contiguous index ranges, :func:`plan_shards`), each submitted as its
  own pool task.  Idle workers pull the next pending shard from the
  shared queue — work stealing by construction, with no chunk pinning.
* Each shard's results are captured parent-side **as the shard
  completes**, so nothing already finished can be lost to a later
  failure.
* A pool break charges the shards that were in flight and re-runs each
  of them **in isolation** (a fresh single-worker pool per attempt, up
  to ``max_shard_retries`` re-runs).  Innocent victims of somebody
  else's crash complete on their first isolated re-run; the genuinely
  crashing shard keeps breaking its private pool until its retry budget
  is exhausted, at which point — and only then — its items are
  converted to error results via the caller's ``error_result`` factory.
  The run as a whole never raises and never loses unaffected items.
* An item that cannot be pickled (or a worker result that cannot be
  sent back) fails only its shard, immediately and without retries —
  serialisation failures are deterministic.

Observability: every completed or failed shard is recorded as a
``"shard"`` span on the caller's :class:`~repro.obs.telemetry.Telemetry`
(via :meth:`~repro.obs.telemetry.Telemetry.record_span` — the shard ran
in another process, so the parent records the worker-measured wall
time), and the process-global counter registry
(:mod:`repro.obs.counters`) accumulates ``<prefix>.runs`` / ``.steals``
/ ``.retries`` / ``.respawns`` / ``.failed`` so resilience is
observable, not assumed.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..obs.counters import counter_inc

__all__ = [
    "DEFAULT_MAX_SHARD_RETRIES",
    "ShardStats",
    "default_shard_count",
    "plan_shards",
    "run_sharded",
]

#: Isolated re-runs a shard may consume after a pool break before its
#: items are converted to error results.
DEFAULT_MAX_SHARD_RETRIES = 2

#: Default shards per worker: fine-grained enough that one slow shard
#: cannot hold a meaningful fraction of the run hostage, and a crash
#: loses (then error-marks) only a small slice of items.
_SHARDS_PER_WORKER = 8


def plan_shards(count: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``count`` items into ``shards`` contiguous ``(start, stop)``
    ranges, as evenly as possible (larger shards first).

        >>> plan_shards(5, 2)
        [(0, 3), (3, 5)]
        >>> plan_shards(3, 8)
        [(0, 1), (1, 2), (2, 3)]
    """
    shards = max(1, min(shards, count))
    base, extra = divmod(count, shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def default_shard_count(count: int, max_workers: int) -> int:
    """The shard count used when the caller does not pick one."""
    return max(1, min(count, _SHARDS_PER_WORKER * max(1, max_workers)))


@dataclass
class ShardStats:
    """What one sharded run did — the resilience telemetry, as a value.

    ``steals`` counts completed shards beyond each worker's first: with
    more shards than workers, every shard a worker pulls after finishing
    its first one was "stolen" from the shared backlog rather than
    pre-assigned.  ``retries`` counts isolated shard re-runs after pool
    breaks, ``respawns`` counts the fresh pools those re-runs forced,
    and ``failed`` counts shards whose items were converted to error
    results after the retry budget ran out (or a serialisation failure).
    """

    shards: int = 0
    workers: int = 0
    completed: int = 0
    steals: int = 0
    retries: int = 0
    respawns: int = 0
    failed: int = 0

    def summary(self) -> str:
        """One human-readable line for CLI output."""
        return (
            f"shards: {self.shards} over {self.workers} worker(s) -- "
            f"{self.completed} completed, {self.steals} steal(s), "
            f"{self.retries} retry(s), {self.respawns} pool respawn(s), "
            f"{self.failed} failed"
        )


def _run_shard(payload) -> Tuple[int, float, List[Tuple[int, Any]]]:
    """Worker body: run one shard's items through the caller's function.

    Returns ``(pid, elapsed_seconds, [(position, result), ...])`` — the
    pid feeds the steal counter, the elapsed time the parent-side shard
    span.  ``fn`` is expected to follow the never-raise convention of
    ``execute_job``; if it raises anyway the exception propagates to the
    parent as an ordinary (non-pool-breaking) shard failure.
    """
    fn, pairs = payload
    started = time.perf_counter()
    out = [(pos, fn(item)) for pos, item in pairs]
    return os.getpid(), time.perf_counter() - started, out


@dataclass(frozen=True)
class _Shard:
    index: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


class _ShardRun:
    """State of one :func:`run_sharded` call (results, stats, spans)."""

    def __init__(
        self,
        items: List[Any],
        worker: Callable[[Any], Any],
        error_result: Callable[[Any, str], Any],
        max_workers: int,
        shards: Optional[int],
        max_shard_retries: int,
        telemetry,
        counter_prefix: str,
    ):
        if max_shard_retries < 0:
            raise ConfigError(
                f"max_shard_retries must be >= 0, got {max_shard_retries}"
            )
        if shards is not None and shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        self._items = items
        self._worker = worker
        self._error_result = error_result
        self._max_retries = max_shard_retries
        self._max_workers = max_workers
        self._telemetry = telemetry
        self._prefix = counter_prefix
        count = len(items)
        n_shards = (
            shards if shards is not None
            else default_shard_count(count, max_workers)
        )
        self._shards = [
            _Shard(index=i, start=start, stop=stop)
            for i, (start, stop) in enumerate(plan_shards(count, n_shards))
        ]
        self.stats = ShardStats(
            shards=len(self._shards),
            workers=max(1, min(max_workers, len(self._shards))),
        )
        self._results: Dict[int, Any] = {}
        self._pids: set = set()

    # -- bookkeeping ---------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        counter_inc(f"{self._prefix}.{name}", amount)

    def _span(self, shard: _Shard, seconds: float, attempt: int,
              status: str, pid: Optional[int] = None) -> None:
        if self._telemetry is None:
            return
        self._telemetry.record_span(
            "shard", seconds, shard=shard.index, jobs=shard.size,
            attempt=attempt, status=status,
            **({"pid": pid} if pid is not None else {}),
        )

    def _payload(self, shard: _Shard):
        return (
            self._worker,
            tuple(
                (pos, self._items[pos])
                for pos in range(shard.start, shard.stop)
            ),
        )

    def _capture(self, shard: _Shard, outcome, attempt: int) -> None:
        pid, elapsed, pairs = outcome
        for pos, result in pairs:
            self._results[pos] = result
        self.stats.completed += 1
        self._count("runs")
        if pid in self._pids:
            self.stats.steals += 1
            self._count("steals")
        else:
            self._pids.add(pid)
        self._span(shard, elapsed, attempt, "ok", pid=pid)

    def _fail(self, shard: _Shard, message: str, attempt: int) -> None:
        for pos in range(shard.start, shard.stop):
            self._results[pos] = self._error_result(
                self._items[pos], message
            )
        self.stats.failed += 1
        self._count("failed")
        self._span(shard, 0.0, attempt, "error")

    # -- execution -----------------------------------------------------

    def execute(self) -> Tuple[List[Any], ShardStats]:
        if not self._items:
            return [], self.stats
        if self._max_workers <= 1:
            # Serial mode: same shard accounting, no pool (and therefore
            # no crash isolation — a dying worker is the caller's own
            # process).  Callers' serial fast paths normally take over
            # before this point; kept for API symmetry.
            self._run_inline()
        else:
            victims = self._parallel_round()
            for shard in victims:
                self._isolate(shard)
        return (
            [self._results[i] for i in range(len(self._items))],
            self.stats,
        )

    def _run_inline(self) -> None:
        for shard in self._shards:
            started = time.perf_counter()
            for pos in range(shard.start, shard.stop):
                self._results[pos] = self._worker(self._items[pos])
            self.stats.completed += 1
            self._count("runs")
            self._span(
                shard, time.perf_counter() - started, 1, "ok",
                pid=os.getpid(),
            )

    def _parallel_round(self) -> List[_Shard]:
        """Submit every shard; capture completions; return pool-break
        victims (in shard order) for isolated re-runs."""
        victims: List[_Shard] = []
        with ProcessPoolExecutor(max_workers=self.stats.workers) as pool:
            futures = {}
            for shard in self._shards:
                try:
                    future = pool.submit(_run_shard, self._payload(shard))
                except BrokenProcessPool:
                    # The pool died under an earlier submission; this
                    # shard never ran — re-run it in isolation.
                    victims.append(shard)
                    continue
                futures[future] = shard
            for future in as_completed(futures):
                shard = futures[future]
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    victims.append(shard)
                except Exception as exc:  # noqa: BLE001 - per-shard capture
                    # Unpicklable item/result or a worker-side bug:
                    # deterministic, so retrying cannot help.
                    self._fail(
                        shard,
                        f"shard {shard.index} failed: "
                        f"{type(exc).__name__}: {exc}",
                        attempt=1,
                    )
                else:
                    self._capture(shard, outcome, attempt=1)
        victims.sort(key=lambda s: s.index)
        return victims

    def _isolate(self, shard: _Shard) -> None:
        """Re-run one pool-break victim alone, in a fresh single-worker
        pool per attempt.  The parent cannot tell which in-flight shard
        actually killed the shared pool, but a shard that crashes its
        own private pool is conclusively guilty — and an innocent
        victim completes on its first isolated re-run."""
        failures = 1  # the shared-pool break that sent us here
        while failures <= self._max_retries:
            self.stats.retries += 1
            self._count("retries")
            self.stats.respawns += 1
            self._count("respawns")
            attempt = failures + 1
            with ProcessPoolExecutor(max_workers=1) as pool:
                try:
                    outcome = pool.submit(
                        _run_shard, self._payload(shard)
                    ).result()
                except BrokenProcessPool:
                    failures += 1
                    continue
                except Exception as exc:  # noqa: BLE001 - per-shard capture
                    self._fail(
                        shard,
                        f"shard {shard.index} failed: "
                        f"{type(exc).__name__}: {exc}",
                        attempt=attempt,
                    )
                    return
                else:
                    self._capture(shard, outcome, attempt=attempt)
                    return
        self._fail(
            shard,
            f"worker process crashed while running shard {shard.index} "
            f"(BrokenProcessPool; {failures} attempt(s), "
            f"{self._max_retries} retry(s) allowed); "
            f"results for this shard were lost",
            attempt=failures,
        )


def run_sharded(
    items: Sequence[Any],
    worker: Callable[[Any], Any],
    error_result: Callable[[Any, str], Any],
    *,
    max_workers: int,
    shards: Optional[int] = None,
    max_shard_retries: int = DEFAULT_MAX_SHARD_RETRIES,
    telemetry=None,
    counter_prefix: str = "suite.shards",
) -> Tuple[List[Any], ShardStats]:
    """Run ``worker`` over ``items`` in work-stealing process shards.

    Returns ``(results, stats)`` with ``results`` in item order and of
    the same length as ``items`` — every item yields either its worker
    result or ``error_result(item, message)``; this function never
    raises for worker/pool failures (invalid ``shards`` /
    ``max_shard_retries`` raise :class:`~repro.errors.ConfigError`).
    ``worker`` must be picklable (a module-level function) and should
    itself never raise; ``error_result`` runs parent-side only.

    ``telemetry``, when given a spans-level
    :class:`~repro.obs.telemetry.Telemetry`, receives one ``"shard"``
    span per shard outcome; the ``<counter_prefix>.*`` process counters
    accumulate regardless.  With ``max_workers <= 1`` the shards run
    inline, in order — byte-identical to a plain serial loop.
    """
    return _ShardRun(
        list(items), worker, error_result, max_workers, shards,
        max_shard_retries, telemetry, counter_prefix,
    ).execute()
