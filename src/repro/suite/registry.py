"""Target registry: built-in circuits merged with ``.rml`` files on disk.

The registry is the single source of truth for what can be analysed:

* :data:`BUILTIN_TARGETS` — the paper's circuits with their staged property
  suites, previously hard-coded in the CLI.  :func:`build_builtin`
  constructs ``(fsm, properties, observed, dont_care)`` for a target/stage.
* :func:`discover_rml` / :func:`rml_job` — ``.rml`` model files found on
  disk, each carrying its own properties and observed signals.
* :func:`default_jobs` — the merged job list a suite run executes: every
  builtin target at every stage, plus every discovered ``.rml`` file.

Engine knobs travel as one :class:`~repro.engine.EngineConfig` value; the
pre-config flat keywords (``trans=``, ``policy=``, ``gc_threshold=``,
``auto_reorder=``) remain as deprecated shims.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..circuits import (
    build_circular_queue,
    build_counter,
    build_pipeline,
    build_priority_buffer,
    circular_queue_empty_properties,
    circular_queue_full_properties,
    circular_queue_wrap_properties,
    circular_queue_wrap_stall_property,
    counter_partial_properties,
    counter_properties,
    pipeline_augmented_properties,
    pipeline_output_properties,
    priority_buffer_hi_properties,
    priority_buffer_lo_augmented_properties,
    priority_buffer_lo_properties,
)
from ..engine import _UNSET, EngineConfig, _coalesce_flat, _warn_deprecated
from ..errors import ConfigError
from .jobs import KIND_BUILTIN, KIND_RML, CoverageJob

__all__ = [
    "BuiltinTarget",
    "BUILTIN_TARGETS",
    "build_builtin",
    "discover_rml",
    "rml_job",
    "builtin_jobs",
    "default_jobs",
]

#: What a target build produces: machine, properties, observed, don't-care.
BuildResult = Tuple[object, list, object, Optional[str]]


def _counter(
    stage: Optional[str], buggy: bool, config: EngineConfig, policy=None
) -> BuildResult:
    fsm = build_counter(config=config, policy=policy)
    if stage == "partial":
        props = counter_partial_properties()
    else:
        props = counter_properties()
    return fsm, props, "count", None


def _buffer_hi(
    stage: Optional[str], buggy: bool, config: EngineConfig, policy=None
) -> BuildResult:
    fsm = build_priority_buffer(buggy=buggy, config=config, policy=policy)
    return fsm, priority_buffer_hi_properties(), "hi", None


def _buffer_lo(
    stage: Optional[str], buggy: bool, config: EngineConfig, policy=None
) -> BuildResult:
    fsm = build_priority_buffer(buggy=buggy, config=config, policy=policy)
    if stage == "augmented":
        props = priority_buffer_lo_augmented_properties()
    else:
        props = priority_buffer_lo_properties()
    return fsm, props, "lo", None


def _queue_wrap(
    stage: Optional[str], buggy: bool, config: EngineConfig, policy=None
) -> BuildResult:
    fsm = build_circular_queue(config=config, policy=policy)
    stage = stage or "initial"
    if stage == "final":
        props = circular_queue_wrap_properties(stage="extended")
        props.append(circular_queue_wrap_stall_property())
    else:
        props = circular_queue_wrap_properties(stage=stage)
    return fsm, props, "wrap", None


def _queue_full(
    stage: Optional[str], buggy: bool, config: EngineConfig, policy=None
) -> BuildResult:
    return (
        build_circular_queue(config=config, policy=policy),
        circular_queue_full_properties(),
        "full",
        None,
    )


def _queue_empty(
    stage: Optional[str], buggy: bool, config: EngineConfig, policy=None
) -> BuildResult:
    return (
        build_circular_queue(config=config, policy=policy),
        circular_queue_empty_properties(),
        "empty",
        None,
    )


def _pipeline(
    stage: Optional[str], buggy: bool, config: EngineConfig, policy=None
) -> BuildResult:
    fsm = build_pipeline(config=config, policy=policy)
    if stage == "augmented":
        props = pipeline_augmented_properties()
    else:
        props = pipeline_output_properties()
    return fsm, props, "output", "!out_valid"


@dataclass(frozen=True)
class BuiltinTarget:
    """One registered built-in circuit/signal target."""

    name: str
    builder: Callable[..., BuildResult]
    stages: Tuple[str, ...]
    description: str

    def valid_stage(self, stage: Optional[str]) -> bool:
        return stage is None or stage in self.stages


BUILTIN_TARGETS: Dict[str, BuiltinTarget] = {
    target.name: target
    for target in (
        BuiltinTarget("counter", _counter, ("full", "partial"),
                      "mod-5 counter (paper Section 1)"),
        BuiltinTarget("buffer-hi", _buffer_hi, (),
                      "priority buffer, hi-pri count (Circuit 1)"),
        BuiltinTarget("buffer-lo", _buffer_lo, ("initial", "augmented"),
                      "priority buffer, lo-pri count (Circuit 1)"),
        BuiltinTarget("queue-wrap", _queue_wrap,
                      ("initial", "extended", "final"),
                      "circular queue, wrap bit (Circuit 2)"),
        BuiltinTarget("queue-full", _queue_full, (),
                      "circular queue, full signal (Circuit 2)"),
        BuiltinTarget("queue-empty", _queue_empty, (),
                      "circular queue, empty signal (Circuit 2)"),
        BuiltinTarget("pipeline", _pipeline, ("initial", "augmented"),
                      "decode pipeline, output (Circuit 3)"),
    )
}


def build_builtin(
    name: str,
    stage: Optional[str] = None,
    buggy: bool = False,
    trans=_UNSET,
    policy=_UNSET,
    config: Optional[EngineConfig] = None,
) -> BuildResult:
    """Construct ``(fsm, properties, observed, dont_care)`` for a target.

    ``config`` (an :class:`~repro.engine.EngineConfig`) carries every
    engine knob of the built FSM: the transition-relation mode and the
    resource thresholds compiled into the BDD manager's policy.  Raises
    :class:`ValueError` for an unknown target or a stage outside the
    target's stage list, and :class:`~repro.errors.ConfigError` (a
    ``ValueError`` subclass) for an invalid config.

    ``trans=`` / ``policy=`` are the pre-config keywords; both are
    deprecated shims that warn and fold into the new path.
    """
    # Explicit None is the old default for both keywords — it carries no
    # information, so it must not trip the deprecation shim.
    legacy = {}
    if trans is not _UNSET and trans is not None:
        legacy["trans"] = trans
    if policy is not _UNSET and policy is not None:
        legacy["policy"] = policy
    policy_override = legacy.get("policy")
    if legacy:
        if config is not None:
            raise ConfigError(
                "build_builtin: pass either config= or the deprecated "
                f"{'/'.join(sorted(legacy))}=, not both"
            )
        _warn_deprecated(
            f"build_builtin({', '.join(f'{k}=...' for k in sorted(legacy))}) "
            "is deprecated; pass config=EngineConfig(...) instead",
            stacklevel=3,
        )
        if "trans" in legacy:
            config = EngineConfig(trans=legacy["trans"])
    config = config if config is not None else EngineConfig()
    target = BUILTIN_TARGETS.get(name)
    if target is None:
        raise ValueError(f"unknown target {name!r}")
    if not target.valid_stage(stage):
        valid = ", ".join(target.stages) or "none"
        raise ValueError(
            f"invalid stage {stage!r} for target {name!r} "
            f"(valid stages: {valid})"
        )
    config.validate()
    return target.builder(stage, buggy, config, policy_override)


# ----------------------------------------------------------------------
# Job construction
# ----------------------------------------------------------------------


def builtin_jobs(
    trans=_UNSET,
    gc_threshold=_UNSET,
    auto_reorder=_UNSET,
    config: Optional[EngineConfig] = None,
) -> List[CoverageJob]:
    """One job per (builtin target, stage) pair — stage-less targets get a
    single job at their default suite."""
    config = _coalesce_flat(
        "builtin_jobs", config, trans, gc_threshold, auto_reorder
    )
    jobs: List[CoverageJob] = []
    for target in BUILTIN_TARGETS.values():
        stages: Tuple[Optional[str], ...] = target.stages or (None,)
        for stage in stages:
            suffix = f"@{stage}" if stage else ""
            jobs.append(
                CoverageJob(
                    name=f"{target.name}{suffix}",
                    kind=KIND_BUILTIN,
                    target=target.name,
                    stage=stage,
                    config=config,
                )
            )
    return jobs


def discover_rml(directory: "str | Path") -> List[Path]:
    """All ``.rml`` files directly under ``directory``, sorted by name."""
    return sorted(Path(directory).glob("*.rml"))


def rml_job(
    path: "str | Path",
    trans=_UNSET,
    gc_threshold=_UNSET,
    auto_reorder=_UNSET,
    config: Optional[EngineConfig] = None,
) -> CoverageJob:
    """A job running one ``.rml`` file (source is read eagerly so the job
    stays self-contained when shipped to a worker process)."""
    config = _coalesce_flat(
        "rml_job", config, trans, gc_threshold, auto_reorder
    )
    path = Path(path)
    return CoverageJob(
        name=f"rml:{path.stem}",
        kind=KIND_RML,
        path=str(path),
        source=path.read_text(),
        config=config,
    )


def default_jobs(
    rml_dir: "str | Path | None" = None,
    include_builtins: bool = True,
    trans=_UNSET,
    gc_threshold=_UNSET,
    auto_reorder=_UNSET,
    config: Optional[EngineConfig] = None,
) -> List[CoverageJob]:
    """The merged registry: builtin jobs plus discovered ``.rml`` jobs."""
    config = _coalesce_flat(
        "default_jobs", config, trans, gc_threshold, auto_reorder
    )
    jobs: List[CoverageJob] = (
        builtin_jobs(config=config) if include_builtins else []
    )
    if rml_dir is not None:
        jobs.extend(
            rml_job(path, config=config) for path in discover_rml(rml_dir)
        )
    return jobs
