"""Target registry: built-in circuits merged with ``.rml`` files on disk.

The registry is the single source of truth for what can be analysed:

* :data:`BUILTIN_TARGETS` — the paper's circuits with their staged property
  suites, previously hard-coded in the CLI.  :func:`build_builtin`
  constructs ``(fsm, properties, observed, dont_care)`` for a target/stage.
* :func:`discover_rml` / :func:`rml_job` — ``.rml`` model files found on
  disk, each carrying its own properties and observed signals.
* :func:`default_jobs` — the merged job list a suite run executes: every
  builtin target at every stage, plus every discovered ``.rml`` file.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..bdd import ResourcePolicy

from ..circuits import (
    build_circular_queue,
    build_counter,
    build_pipeline,
    build_priority_buffer,
    circular_queue_empty_properties,
    circular_queue_full_properties,
    circular_queue_wrap_properties,
    circular_queue_wrap_stall_property,
    counter_partial_properties,
    counter_properties,
    pipeline_augmented_properties,
    pipeline_output_properties,
    priority_buffer_hi_properties,
    priority_buffer_lo_augmented_properties,
    priority_buffer_lo_properties,
)
from ..fsm.partition import TRANS_MODES, TRANS_PARTITIONED
from .jobs import KIND_BUILTIN, KIND_RML, CoverageJob

__all__ = [
    "BuiltinTarget",
    "BUILTIN_TARGETS",
    "build_builtin",
    "discover_rml",
    "rml_job",
    "builtin_jobs",
    "default_jobs",
]

#: What a target build produces: machine, properties, observed, don't-care.
BuildResult = Tuple[object, list, object, Optional[str]]


def _counter(
    stage: Optional[str], buggy: bool, trans: str,
    policy: Optional[ResourcePolicy] = None,
) -> BuildResult:
    fsm = build_counter(trans=trans, policy=policy)
    if stage == "partial":
        props = counter_partial_properties()
    else:
        props = counter_properties()
    return fsm, props, "count", None


def _buffer_hi(
    stage: Optional[str], buggy: bool, trans: str,
    policy: Optional[ResourcePolicy] = None,
) -> BuildResult:
    fsm = build_priority_buffer(buggy=buggy, trans=trans, policy=policy)
    return fsm, priority_buffer_hi_properties(), "hi", None


def _buffer_lo(
    stage: Optional[str], buggy: bool, trans: str,
    policy: Optional[ResourcePolicy] = None,
) -> BuildResult:
    fsm = build_priority_buffer(buggy=buggy, trans=trans, policy=policy)
    if stage == "augmented":
        props = priority_buffer_lo_augmented_properties()
    else:
        props = priority_buffer_lo_properties()
    return fsm, props, "lo", None


def _queue_wrap(
    stage: Optional[str], buggy: bool, trans: str,
    policy: Optional[ResourcePolicy] = None,
) -> BuildResult:
    fsm = build_circular_queue(trans=trans, policy=policy)
    stage = stage or "initial"
    if stage == "final":
        props = circular_queue_wrap_properties(stage="extended")
        props.append(circular_queue_wrap_stall_property())
    else:
        props = circular_queue_wrap_properties(stage=stage)
    return fsm, props, "wrap", None


def _queue_full(
    stage: Optional[str], buggy: bool, trans: str,
    policy: Optional[ResourcePolicy] = None,
) -> BuildResult:
    return (
        build_circular_queue(trans=trans, policy=policy),
        circular_queue_full_properties(),
        "full",
        None,
    )


def _queue_empty(
    stage: Optional[str], buggy: bool, trans: str,
    policy: Optional[ResourcePolicy] = None,
) -> BuildResult:
    return (
        build_circular_queue(trans=trans, policy=policy),
        circular_queue_empty_properties(),
        "empty",
        None,
    )


def _pipeline(
    stage: Optional[str], buggy: bool, trans: str,
    policy: Optional[ResourcePolicy] = None,
) -> BuildResult:
    fsm = build_pipeline(trans=trans, policy=policy)
    if stage == "augmented":
        props = pipeline_augmented_properties()
    else:
        props = pipeline_output_properties()
    return fsm, props, "output", "!out_valid"


@dataclass(frozen=True)
class BuiltinTarget:
    """One registered built-in circuit/signal target."""

    name: str
    builder: Callable[..., BuildResult]
    stages: Tuple[str, ...]
    description: str

    def valid_stage(self, stage: Optional[str]) -> bool:
        return stage is None or stage in self.stages


BUILTIN_TARGETS: Dict[str, BuiltinTarget] = {
    target.name: target
    for target in (
        BuiltinTarget("counter", _counter, ("full", "partial"),
                      "mod-5 counter (paper Section 1)"),
        BuiltinTarget("buffer-hi", _buffer_hi, (),
                      "priority buffer, hi-pri count (Circuit 1)"),
        BuiltinTarget("buffer-lo", _buffer_lo, ("initial", "augmented"),
                      "priority buffer, lo-pri count (Circuit 1)"),
        BuiltinTarget("queue-wrap", _queue_wrap,
                      ("initial", "extended", "final"),
                      "circular queue, wrap bit (Circuit 2)"),
        BuiltinTarget("queue-full", _queue_full, (),
                      "circular queue, full signal (Circuit 2)"),
        BuiltinTarget("queue-empty", _queue_empty, (),
                      "circular queue, empty signal (Circuit 2)"),
        BuiltinTarget("pipeline", _pipeline, ("initial", "augmented"),
                      "decode pipeline, output (Circuit 3)"),
    )
}


def build_builtin(
    name: str,
    stage: Optional[str] = None,
    buggy: bool = False,
    trans: str = TRANS_PARTITIONED,
    policy: Optional[ResourcePolicy] = None,
) -> BuildResult:
    """Construct ``(fsm, properties, observed, dont_care)`` for a target.

    ``trans`` selects the transition-relation mode of the built FSM
    (``"partitioned"`` or ``"mono"``); ``policy`` the BDD manager's
    resource policy (auto-GC thresholds, auto-sift — engine defaults when
    ``None``).  Raises :class:`ValueError` for an unknown target, a stage
    outside the target's stage list, or an unknown transition mode.
    """
    target = BUILTIN_TARGETS.get(name)
    if target is None:
        raise ValueError(f"unknown target {name!r}")
    if not target.valid_stage(stage):
        valid = ", ".join(target.stages) or "none"
        raise ValueError(
            f"invalid stage {stage!r} for target {name!r} "
            f"(valid stages: {valid})"
        )
    if trans not in TRANS_MODES:
        raise ValueError(
            f"unknown transition mode {trans!r} "
            f"(valid modes: {', '.join(TRANS_MODES)})"
        )
    return target.builder(stage, buggy, trans, policy)


# ----------------------------------------------------------------------
# Job construction
# ----------------------------------------------------------------------


def builtin_jobs(
    trans: str = TRANS_PARTITIONED,
    gc_threshold: Optional[int] = None,
    auto_reorder: bool = False,
) -> List[CoverageJob]:
    """One job per (builtin target, stage) pair — stage-less targets get a
    single job at their default suite."""
    jobs: List[CoverageJob] = []
    for target in BUILTIN_TARGETS.values():
        stages: Tuple[Optional[str], ...] = target.stages or (None,)
        for stage in stages:
            suffix = f"@{stage}" if stage else ""
            jobs.append(
                CoverageJob(
                    name=f"{target.name}{suffix}",
                    kind=KIND_BUILTIN,
                    target=target.name,
                    stage=stage,
                    trans=trans,
                    gc_threshold=gc_threshold,
                    auto_reorder=auto_reorder,
                )
            )
    return jobs


def discover_rml(directory: "str | Path") -> List[Path]:
    """All ``.rml`` files directly under ``directory``, sorted by name."""
    return sorted(Path(directory).glob("*.rml"))


def rml_job(
    path: "str | Path",
    trans: str = TRANS_PARTITIONED,
    gc_threshold: Optional[int] = None,
    auto_reorder: bool = False,
) -> CoverageJob:
    """A job running one ``.rml`` file (source is read eagerly so the job
    stays self-contained when shipped to a worker process)."""
    path = Path(path)
    return CoverageJob(
        name=f"rml:{path.stem}",
        kind=KIND_RML,
        path=str(path),
        source=path.read_text(),
        trans=trans,
        gc_threshold=gc_threshold,
        auto_reorder=auto_reorder,
    )


def default_jobs(
    rml_dir: "str | Path | None" = None,
    include_builtins: bool = True,
    trans: str = TRANS_PARTITIONED,
    gc_threshold: Optional[int] = None,
    auto_reorder: bool = False,
) -> List[CoverageJob]:
    """The merged registry: builtin jobs plus discovered ``.rml`` jobs."""
    jobs: List[CoverageJob] = (
        builtin_jobs(trans, gc_threshold, auto_reorder)
        if include_builtins
        else []
    )
    if rml_dir is not None:
        jobs.extend(
            rml_job(path, trans, gc_threshold, auto_reorder)
            for path in discover_rml(rml_dir)
        )
    return jobs
