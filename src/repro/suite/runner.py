"""The suite runner: execute coverage jobs, serially or across processes.

Each job builds its own FSM inside its own BDD manager, so jobs share no
state and parallelise perfectly across a ``ProcessPoolExecutor`` (one BDD
manager per process; results come back as plain :class:`JobResult`
primitives, never BDD handles).  ``max_workers=1`` runs in-process, which
the tests use to assert that parallel percentages match serial execution
bit-for-bit.

:func:`suite_report` turns a result list into the machine-readable JSON
document (schema ``repro-coverage-suite/v1``, documented in the README).
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .._version import __version__
from ..bdd import ResourcePolicy
from ..coverage import CoverageEstimator
from ..errors import ReproError
from ..lang import elaborate, parse_module
from ..mc import ModelChecker, WorkMeter
from .jobs import KIND_BUILTIN, KIND_RML, CoverageJob, JobResult
from .registry import build_builtin

__all__ = [
    "execute_job",
    "run_jobs",
    "suite_report",
    "write_report",
    "format_results",
    "JSON_SCHEMA_ID",
]

JSON_SCHEMA_ID = "repro-coverage-suite/v1"


def _job_policy(job: CoverageJob) -> Optional[ResourcePolicy]:
    """The resource policy a job's fields describe (``None``: engine default)."""
    if job.gc_threshold is None and not job.auto_reorder:
        return None
    kwargs = {"auto_reorder": job.auto_reorder}
    if job.gc_threshold is not None:
        kwargs["gc_node_threshold"] = job.gc_threshold
    return ResourcePolicy(**kwargs)


def _materialize(job: CoverageJob):
    """Build ``(fsm, properties, observed, dont_care)`` for a job."""
    policy = _job_policy(job)
    if job.kind == KIND_BUILTIN:
        if job.target is None:
            raise ValueError(f"builtin job {job.name!r} has no target")
        return build_builtin(
            job.target, stage=job.stage, buggy=job.buggy, trans=job.trans,
            policy=policy,
        )
    if job.kind == KIND_RML:
        if job.source is None:
            raise ValueError(f"rml job {job.name!r} has no source")
        model = elaborate(
            parse_module(job.source, filename=job.path), trans=job.trans,
            policy=policy,
        )
        if not model.observed:
            raise ValueError(
                f"{job.path or job.name}: module {model.module.name!r} "
                f"declares no OBSERVED signals"
            )
        if not model.specs:
            raise ValueError(
                f"{job.path or job.name}: module {model.module.name!r} "
                f"declares no SPEC properties"
            )
        return model.fsm, model.specs, model.observed, model.dont_care
    raise ValueError(f"unknown job kind {job.kind!r}")


def execute_job(job: CoverageJob) -> JobResult:
    """Run one job start-to-finish: build, verify, estimate.

    Never raises: failures are captured in the result's ``status`` so one
    bad job cannot take down a whole suite (or its worker pool).
    """
    started = time.perf_counter()
    try:
        fsm, props, observed, dont_care = _materialize(job)
        observed_list = [observed] if isinstance(observed, str) else list(observed)
        checker = ModelChecker(fsm)
        report = None
        with WorkMeter(fsm.manager) as meter:
            failing = [p for p in props if not checker.holds(p)]
            if not failing:
                estimator = CoverageEstimator(fsm, checker=checker)
                report = estimator.estimate(
                    props, observed=observed_list, dont_care=dont_care
                )
        if failing:
            return JobResult(
                name=job.name,
                kind=job.kind,
                status="fail",
                model=fsm.name,
                stage=job.stage,
                trans=job.trans,
                path=job.path,
                observed=observed_list,
                properties=len(props),
                failing_properties=[str(p) for p in failing],
                seconds=time.perf_counter() - started,
                nodes_created=meter.stats.nodes_created,
                gc_runs=meter.stats.gc_runs,
                gc_seconds=meter.stats.gc_seconds,
                peak_live_nodes=meter.stats.peak_live_nodes,
            )
        return JobResult(
            name=job.name,
            kind=job.kind,
            status="ok",
            model=fsm.name,
            stage=job.stage,
            trans=job.trans,
            path=job.path,
            observed=observed_list,
            properties=len(report.per_property),
            percentage=report.percentage,
            covered_states=report.covered_count,
            space_states=report.space_count,
            uncovered_states=report.space_count - report.covered_count,
            seconds=time.perf_counter() - started,
            nodes_created=meter.stats.nodes_created,
            gc_runs=meter.stats.gc_runs,
            gc_seconds=meter.stats.gc_seconds,
            peak_live_nodes=meter.stats.peak_live_nodes,
        )
    except (ReproError, ValueError, OSError) as exc:
        return JobResult(
            name=job.name,
            kind=job.kind,
            status="error",
            stage=job.stage,
            trans=job.trans,
            path=job.path,
            error=str(exc),
            seconds=time.perf_counter() - started,
        )


def run_jobs(
    jobs: Sequence[CoverageJob], max_workers: int = 1
) -> List[JobResult]:
    """Execute ``jobs``, fanning out over ``max_workers`` processes.

    Results come back in job order regardless of completion order.  With
    ``max_workers <= 1`` (or a single job) everything runs in-process.
    """
    jobs = list(jobs)
    if max_workers <= 1 or len(jobs) <= 1:
        return [execute_job(job) for job in jobs]
    workers = min(max_workers, len(jobs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(execute_job, jobs))


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------


def suite_report(
    results: Sequence[JobResult], seconds: Optional[float] = None
) -> Dict:
    """The machine-readable suite report (schema ``repro-coverage-suite/v1``)."""
    ok = [r for r in results if r.status == "ok"]
    failed = [r for r in results if r.status == "fail"]
    errors = [r for r in results if r.status == "error"]
    percentages = [r.percentage for r in ok if r.percentage is not None]
    return {
        "schema": JSON_SCHEMA_ID,
        "generator": f"repro {__version__}",
        "jobs": [r.to_json() for r in results],
        "totals": {
            "jobs": len(results),
            "ok": len(ok),
            "failed": len(failed),
            "errors": len(errors),
            "full_coverage": sum(1 for p in percentages if p >= 100.0),
            "mean_percentage": (
                round(sum(percentages) / len(percentages), 4)
                if percentages
                else None
            ),
            "seconds": round(
                seconds if seconds is not None
                else sum(r.seconds for r in results),
                6,
            ),
            "gc_runs": sum(r.gc_runs for r in results),
            "gc_seconds": round(sum(r.gc_seconds for r in results), 6),
            "peak_live_nodes": max(
                (r.peak_live_nodes for r in results), default=0
            ),
        },
    }


def write_report(
    results: Sequence[JobResult],
    path: "str | Path",
    seconds: Optional[float] = None,
) -> None:
    """Serialise :func:`suite_report` to ``path`` as indented JSON."""
    Path(path).write_text(
        json.dumps(suite_report(results, seconds), indent=2) + "\n"
    )


def format_results(
    results: Sequence[JobResult], seconds: Optional[float] = None
) -> str:
    """Human-readable text block: one line per job plus a totals line."""
    lines = [result.format_line() for result in results]
    ok = sum(1 for r in results if r.status == "ok")
    failed = sum(1 for r in results if r.status == "fail")
    errors = sum(1 for r in results if r.status == "error")
    wall = seconds if seconds is not None else sum(r.seconds for r in results)
    lines.append(
        f"{len(results)} job(s): {ok} ok, {failed} failed, {errors} "
        f"error(s) in {wall:.2f}s"
    )
    return "\n".join(lines)
