"""The suite runner: execute coverage jobs, serially or across processes.

Each job rebuilds its model through the :class:`~repro.analysis.Analysis`
facade inside its own BDD manager, so jobs share no state and parallelise
perfectly across worker processes (one BDD manager per process; results
come back as plain :class:`~repro.analysis.AnalysisResult` primitives,
never BDD handles).  The fan-out runs on the work-stealing shard
executor (:mod:`repro.suite.shards`): jobs are split into restartable
shards pulled by idle workers, completed shard results are captured as
they arrive, and a crashed worker costs only its shard's jobs (marked
``status="error"`` after bounded retries) instead of the whole run —
:func:`run_jobs` shares :func:`execute_job`'s never-raise contract.
``max_workers=1`` runs in-process, which the tests use to assert that
parallel percentages match serial execution bit-for-bit.

:func:`suite_report` turns a result list into the machine-readable JSON
document (schema ``repro-coverage-suite/v2``, documented in the README);
:func:`read_report` is its validating consumer — it rejects v1 documents
with an explicit version-mismatch error instead of misreading them.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .._version import __version__
from ..analysis import Analysis, AnalysisResult
from ..errors import ReportError, ReproError
from .jobs import CoverageJob
from .shards import DEFAULT_MAX_SHARD_RETRIES, ShardStats, run_sharded

__all__ = [
    "execute_job",
    "run_jobs",
    "run_jobs_sharded",
    "run_jobs_via_server",
    "suite_report",
    "write_report",
    "read_report",
    "format_results",
    "DEFAULT_MAX_SHARD_RETRIES",
    "JSON_SCHEMA_ID",
    "JSON_SCHEMA_ID_V1",
]

#: The schema this runner writes (and :func:`read_report` accepts).
JSON_SCHEMA_ID = "repro-coverage-suite/v2"
#: The pre-``EngineConfig`` schema, recognised only to produce a clear
#: version-mismatch error.
JSON_SCHEMA_ID_V1 = "repro-coverage-suite/v1"


def execute_job(
    job: CoverageJob, *, module=None, include_lint: bool = True
) -> AnalysisResult:
    """Run one job start-to-finish: build, verify, estimate.

    Never raises: failures are captured in the result's ``status`` so one
    bad job cannot take down a whole suite (or its worker pool).  The
    reported ``seconds`` include the model build, matching what a user
    pays end to end.

    ``module``/``include_lint`` are the analysis server's hooks: an
    already-parsed AST for the job's source skips the worker-side parse,
    and ``include_lint=False`` keeps raw-text-anchored lint out of
    results headed for the content-addressed cache (the server merges
    per-request lint back in).
    """
    started = time.perf_counter()
    try:
        result = Analysis.from_job(job, module=module).result(
            include_lint=include_lint
        )
        result.seconds = time.perf_counter() - started
        return result
    except (ReproError, ValueError, OSError) as exc:
        return AnalysisResult(
            name=job.name,
            kind=job.kind,
            status="error",
            stage=job.stage,
            path=job.path,
            config=job.config,
            error=str(exc),
            seconds=time.perf_counter() - started,
        )


def _shard_error_result(job: CoverageJob, message: str) -> AnalysisResult:
    """The error result for a job whose shard never produced one (worker
    crash, retry exhaustion, unpicklable payload) — same shape as
    :func:`execute_job`'s own error capture."""
    return AnalysisResult(
        name=job.name,
        kind=job.kind,
        status="error",
        stage=job.stage,
        path=job.path,
        config=job.config,
        error=message,
    )


def run_jobs(
    jobs: Sequence[CoverageJob],
    max_workers: int = 1,
    *,
    shards: Optional[int] = None,
    max_shard_retries: int = DEFAULT_MAX_SHARD_RETRIES,
    telemetry=None,
) -> List[AnalysisResult]:
    """Execute ``jobs``, fanning out over ``max_workers`` processes.

    Results come back in job order regardless of completion order, one
    per job, always — a crashed worker converts only its shard's jobs to
    ``status="error"`` results (after ``max_shard_retries`` isolated
    re-runs) instead of raising; see :func:`repro.suite.shards
    .run_sharded`.  With ``max_workers <= 1`` (or a single job)
    everything runs in-process.  ``shards=None`` picks a shard count
    automatically (several per worker).
    """
    results, _stats = run_jobs_sharded(
        jobs, max_workers,
        shards=shards, max_shard_retries=max_shard_retries,
        telemetry=telemetry,
    )
    return results


def run_jobs_sharded(
    jobs: Sequence[CoverageJob],
    max_workers: int = 1,
    *,
    shards: Optional[int] = None,
    max_shard_retries: int = DEFAULT_MAX_SHARD_RETRIES,
    telemetry=None,
) -> Tuple[List[AnalysisResult], ShardStats]:
    """:func:`run_jobs`, plus the shard executor's
    :class:`~repro.suite.shards.ShardStats` (steal/retry/respawn
    counts) for callers that surface resilience telemetry."""
    jobs = list(jobs)
    if max_workers <= 1 or len(jobs) <= 1:
        return [execute_job(job) for job in jobs], ShardStats(
            shards=0, workers=1, completed=0
        )
    return run_sharded(
        jobs,
        execute_job,
        _shard_error_result,
        max_workers=min(max_workers, len(jobs)),
        shards=shards,
        max_shard_retries=max_shard_retries,
        telemetry=telemetry,
        counter_prefix="suite.shards",
    )


def run_jobs_via_server(
    jobs: Sequence[CoverageJob],
    server,
    max_workers: int = 1,
) -> List[AnalysisResult]:
    """Execute ``jobs`` against a running ``repro serve`` instance — the
    suite's thin-client mode (``repro-coverage suite --server URL``).

    ``server`` is a base URL (``http://host:port``) or a
    :class:`~repro.serve.client.ServeClient`.  Results come back in job
    order; ``max_workers`` fans requests out over that many threads (the
    server deduplicates and schedules the real work).  Per-job server
    errors become ``status="error"`` results, mirroring
    :func:`execute_job`'s never-raise contract — callers wanting to fail
    fast on an unreachable server should health-check first.
    """
    from ..serve.client import ServeClient

    jobs = list(jobs)
    client = server if isinstance(server, ServeClient) else ServeClient(server)

    def one(job: CoverageJob) -> AnalysisResult:
        started = time.perf_counter()
        try:
            return client.analyze_job(job)
        except (ReproError, OSError) as exc:
            # Record the elapsed time like execute_job does: a server
            # error still costs wall clock (connect timeouts above all),
            # and without it suite totals and format_results undercount.
            return AnalysisResult(
                name=job.name,
                kind=job.kind,
                status="error",
                stage=job.stage,
                path=job.path,
                config=job.config,
                error=str(exc),
                seconds=time.perf_counter() - started,
            )

    if max_workers <= 1 or len(jobs) <= 1:
        return [one(job) for job in jobs]
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=min(max_workers, len(jobs))) as pool:
        return list(pool.map(one, jobs))


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------


def suite_report(
    results: Sequence[AnalysisResult], seconds: Optional[float] = None
) -> Dict:
    """The machine-readable suite report (schema ``repro-coverage-suite/v2``).

    v2 embeds each job's :class:`~repro.engine.EngineConfig` as a
    ``config`` object (round-trippable via ``EngineConfig.from_json``), so
    a recorded report documents the exact configuration of every number in
    it.
    """
    ok = [r for r in results if r.status == "ok"]
    failed = [r for r in results if r.status == "fail"]
    errors = [r for r in results if r.status == "error"]
    percentages = [r.percentage for r in ok if r.percentage is not None]
    return {
        "schema": JSON_SCHEMA_ID,
        "generator": f"repro {__version__}",
        "jobs": [r.to_json() for r in results],
        "totals": {
            "jobs": len(results),
            "ok": len(ok),
            "failed": len(failed),
            "errors": len(errors),
            "full_coverage": sum(1 for p in percentages if p >= 100.0),
            "mean_percentage": (
                round(sum(percentages) / len(percentages), 4)
                if percentages
                else None
            ),
            "seconds": round(
                seconds if seconds is not None
                else sum(r.seconds for r in results),
                6,
            ),
            "nodes_created": sum(r.nodes_created for r in results),
            "gc_runs": sum(r.gc_runs for r in results),
            "gc_seconds": round(sum(r.gc_seconds for r in results), 6),
            "gc_freed": sum(r.gc_freed for r in results),
            "reorder_runs": sum(r.reorder_runs for r in results),
            "peak_live_nodes": max(
                (r.peak_live_nodes for r in results), default=0
            ),
        },
    }


def write_report(
    results: Sequence[AnalysisResult],
    path: "str | Path",
    seconds: Optional[float] = None,
) -> None:
    """Serialise :func:`suite_report` to ``path`` as indented JSON."""
    Path(path).write_text(
        json.dumps(suite_report(results, seconds), indent=2) + "\n"
    )


def read_report(path: "str | Path") -> Dict:
    """Load and validate a suite JSON report written by :func:`write_report`.

    Returns the report dict.  Raises :class:`~repro.errors.ReportError`
    when the document is not a v2 report — in particular, a v1 document
    (which carried flat ``trans`` fields instead of per-job ``config``
    objects) produces an explicit version-mismatch message rather than a
    silent misread.  Per-job configs can be revived with
    ``EngineConfig.from_json(job["config"])``.
    """
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ReportError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ReportError(
            f"{path}: expected a JSON object, got {type(data).__name__}"
        )
    schema = data.get("schema")
    if schema == JSON_SCHEMA_ID_V1:
        raise ReportError(
            f"{path}: schema version mismatch: this is a "
            f"{JSON_SCHEMA_ID_V1!r} report, but this reader requires "
            f"{JSON_SCHEMA_ID!r} (v2 embeds each job's engine config); "
            f"regenerate the report with 'repro-coverage suite --json'"
        )
    if schema != JSON_SCHEMA_ID:
        raise ReportError(
            f"{path}: unrecognised schema {schema!r} "
            f"(expected {JSON_SCHEMA_ID!r})"
        )
    if not isinstance(data.get("jobs"), list):
        raise ReportError(f"{path}: report has no 'jobs' list")
    if not isinstance(data.get("totals"), dict):
        raise ReportError(f"{path}: report has no 'totals' object")
    return data


def format_results(
    results: Sequence[AnalysisResult], seconds: Optional[float] = None
) -> str:
    """Human-readable text block: one line per job plus a totals line."""
    lines = [result.format_line() for result in results]
    ok = sum(1 for r in results if r.status == "ok")
    failed = sum(1 for r in results if r.status == "fail")
    errors = sum(1 for r in results if r.status == "error")
    wall = seconds if seconds is not None else sum(r.seconds for r in results)
    lines.append(
        f"{len(results)} job(s): {ok} ok, {failed} failed, {errors} "
        f"error(s) in {wall:.2f}s"
    )
    return "\n".join(lines)
