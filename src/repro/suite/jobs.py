"""The suite job model: one coverage estimation run per job.

A :class:`CoverageJob` is a *description* of work — model source (a builtin
target name or ``.rml`` text), property stage, observed signals, and the
:class:`~repro.engine.EngineConfig` to run under — and its outcome is an
:class:`~repro.analysis.AnalysisResult` (re-exported here under its
historical name :data:`JobResult`).  Both are plain picklable values so
jobs fan out across a ``ProcessPoolExecutor`` (BDD managers are
per-process state, which makes jobs embarrassingly parallel).

The pre-``EngineConfig`` flat knob fields (``trans``, ``gc_threshold``,
``auto_reorder``) remain accepted as deprecated constructor keywords and
readable as deprecated properties; both warn and delegate to ``config``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis import AnalysisResult
from ..engine import _UNSET, EngineConfig, _coalesce_flat, _warn_deprecated

__all__ = ["CoverageJob", "JobResult"]

#: Job kinds.
KIND_BUILTIN = "builtin"
KIND_RML = "rml"

#: The JSON-safe outcome of one executed job.  Historically a separate
#: class; now exactly the facade's result type.
JobResult = AnalysisResult


@dataclass(frozen=True, init=False)
class CoverageJob:
    """One (model, property stage, engine config) unit of work.

    ``kind`` selects the model source: ``"builtin"`` re-creates a registered
    circuit (``target`` + ``stage`` + ``buggy``) inside the worker process;
    ``"rml"`` parses and elaborates ``source`` (with ``path`` as the
    file name for error messages).  Observed signals and don't-cares come
    from the target definition or the module text respectively.  ``config``
    carries every engine knob (transition-relation mode, GC thresholds,
    auto-reorder); all knobs are cost knobs — coverage results are
    identical under any config.
    """

    name: str
    kind: str
    target: Optional[str] = None
    stage: Optional[str] = None
    buggy: bool = False
    path: Optional[str] = None
    source: Optional[str] = None
    config: EngineConfig = field(default_factory=EngineConfig)

    def __init__(
        self,
        name: str,
        kind: str,
        target: Optional[str] = None,
        stage: Optional[str] = None,
        buggy: bool = False,
        path: Optional[str] = None,
        source: Optional[str] = None,
        config: Optional[EngineConfig] = None,
        trans=_UNSET,
        gc_threshold=_UNSET,
        auto_reorder=_UNSET,
    ):
        config = _coalesce_flat(
            "CoverageJob", config, trans, gc_threshold, auto_reorder
        )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "stage", stage)
        object.__setattr__(self, "buggy", buggy)
        object.__setattr__(self, "path", path)
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "config", config)

    # Deprecated flat-field views -------------------------------------

    @property
    def trans(self) -> str:
        """Deprecated: read ``job.config.trans`` instead."""
        _warn_deprecated(
            "CoverageJob.trans is deprecated; read job.config.trans",
            stacklevel=3,
        )
        return self.config.trans

    @property
    def gc_threshold(self) -> Optional[int]:
        """Deprecated: read ``job.config.gc_threshold`` instead."""
        _warn_deprecated(
            "CoverageJob.gc_threshold is deprecated; read "
            "job.config.gc_threshold",
            stacklevel=3,
        )
        return self.config.gc_threshold

    @property
    def auto_reorder(self) -> bool:
        """Deprecated: read ``job.config.auto_reorder`` instead."""
        _warn_deprecated(
            "CoverageJob.auto_reorder is deprecated; read "
            "job.config.auto_reorder",
            stacklevel=3,
        )
        return self.config.auto_reorder

    def describe(self) -> str:
        """The job as the CLI invocation that reproduces it.

        The engine flags are regenerated from
        :meth:`~repro.engine.EngineConfig.to_cli_args`, so re-parsing the
        description yields the job's exact config (see the round-trip test
        in ``tests/suite/test_jobs.py``).
        """
        flags = " ".join(self.config.to_cli_args())
        flags = f" {flags}" if flags else ""
        if self.kind == KIND_RML:
            return (self.path or f"<rml:{self.name}>") + flags
        stage = f" --stage {self.stage}" if self.stage else ""
        buggy = " --buggy" if self.buggy else ""
        return f"{self.target}{stage}{buggy}{flags}"
