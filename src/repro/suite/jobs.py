"""The suite job model: one coverage estimation run per job.

A :class:`CoverageJob` is a *description* of work — model source (a builtin
target name or ``.rml`` text), property stage, and observed signals — and a
:class:`JobResult` is its JSON-safe outcome.  Both are plain picklable
dataclasses so jobs fan out across a ``ProcessPoolExecutor`` (BDD managers
are per-process state, which makes jobs embarrassingly parallel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["CoverageJob", "JobResult"]

#: Job kinds.
KIND_BUILTIN = "builtin"
KIND_RML = "rml"


@dataclass(frozen=True)
class CoverageJob:
    """One (model, property stage, observed signals) unit of work.

    ``kind`` selects the model source: ``"builtin"`` re-creates a registered
    circuit (``target`` + ``stage`` + ``buggy``) inside the worker process;
    ``"rml"`` parses and elaborates ``source`` (with ``path`` as the
    file name for error messages).  Observed signals and don't-cares come
    from the target definition or the module text respectively.  ``trans``
    is the transition-relation mode the worker builds the FSM with
    (``"partitioned"`` — the default — or ``"mono"``); both modes produce
    identical coverage results, the mode only changes how images are
    computed.
    """

    name: str
    kind: str
    target: Optional[str] = None
    stage: Optional[str] = None
    buggy: bool = False
    path: Optional[str] = None
    source: Optional[str] = None
    trans: str = "partitioned"
    #: BDD auto-GC live-node threshold for the worker's resource policy
    #: (None: engine default; 0: disable automatic GC).  Like ``trans``,
    #: a cost knob — coverage results are identical at any setting.
    gc_threshold: Optional[int] = None
    #: Enable the worker's automatic variable-sifting hook (opt-in).
    auto_reorder: bool = False

    def describe(self) -> str:
        trans = "" if self.trans == "partitioned" else f" --trans {self.trans}"
        if self.gc_threshold is not None:
            trans += f" --gc-threshold {self.gc_threshold}"
        if self.auto_reorder:
            trans += " --auto-reorder"
        if self.kind == KIND_RML:
            return (self.path or f"<rml:{self.name}>") + trans
        stage = f" --stage {self.stage}" if self.stage else ""
        buggy = " --buggy" if self.buggy else ""
        return f"{self.target}{stage}{buggy}{trans}"


@dataclass
class JobResult:
    """Outcome of one executed job — primitives only, so it survives both
    pickling back from a worker process and JSON serialisation.

    ``status`` is ``"ok"`` (verified, coverage estimated), ``"fail"``
    (at least one property failed model checking — coverage undefined), or
    ``"error"`` (the job raised: parse error, bad observed signal, ...).
    """

    name: str
    kind: str
    status: str
    model: Optional[str] = None
    stage: Optional[str] = None
    trans: str = "partitioned"
    path: Optional[str] = None
    observed: List[str] = field(default_factory=list)
    properties: int = 0
    percentage: Optional[float] = None
    covered_states: Optional[int] = None
    space_states: Optional[int] = None
    uncovered_states: Optional[int] = None
    failing_properties: List[str] = field(default_factory=list)
    error: Optional[str] = None
    seconds: float = 0.0
    nodes_created: int = 0
    #: Garbage collections the worker's BDD manager ran during the job.
    gc_runs: int = 0
    #: Wall-clock seconds spent inside those collections (GC overhead).
    gc_seconds: float = 0.0
    #: The manager's live-node high-water mark — the job's memory bound.
    peak_live_nodes: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> Dict:
        """The per-job object of the suite JSON report."""
        return {
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "model": self.model,
            "stage": self.stage,
            "trans": self.trans,
            "path": self.path,
            "observed": list(self.observed),
            "properties": self.properties,
            "percentage": self.percentage,
            "covered_states": self.covered_states,
            "space_states": self.space_states,
            "uncovered_states": self.uncovered_states,
            "failing_properties": list(self.failing_properties),
            "error": self.error,
            "seconds": round(self.seconds, 6),
            "nodes_created": self.nodes_created,
            "gc_runs": self.gc_runs,
            "gc_seconds": round(self.gc_seconds, 6),
            "peak_live_nodes": self.peak_live_nodes,
        }

    def format_line(self) -> str:
        """One human-readable summary line."""
        if self.status == "ok":
            detail = (
                f"{self.percentage:6.2f}%  "
                f"({self.covered_states}/{self.space_states} states, "
                f"{self.properties} properties, {self.seconds:.2f}s)"
            )
        elif self.status == "fail":
            detail = (
                f"FAIL    ({len(self.failing_properties)} of "
                f"{self.properties} properties fail verification)"
            )
        else:
            detail = f"ERROR   ({self.error})"
        return f"{self.name:24s} {detail}"
