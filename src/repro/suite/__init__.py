"""``repro.suite`` — first-class, parallel suites of coverage jobs.

A :class:`CoverageJob` names a model (builtin target or ``.rml`` file), a
property stage, and an :class:`~repro.engine.EngineConfig`; the registry
(:mod:`repro.suite.registry`) merges the built-in circuits with ``.rml``
files discovered on disk; and the runner (:mod:`repro.suite.runner`) fans
jobs out across crash-isolated work-stealing shards
(:mod:`repro.suite.shards`) and collects JSON-ready results.

    >>> from repro.suite import builtin_jobs, run_jobs, suite_report
    >>> jobs = builtin_jobs()
    >>> jobs[0].kind, jobs[0].config.trans
    ('builtin', 'partitioned')

Execute with ``run_jobs(jobs, max_workers=4)`` and serialise with
``suite_report(results)`` — see the README's suite-runner section.  Each
worker drives the shared :class:`~repro.analysis.Analysis` facade, so
suite numbers are produced by exactly the code path the CLI uses.
"""

from .jobs import CoverageJob, JobResult
from .registry import (
    BUILTIN_TARGETS,
    BuiltinTarget,
    build_builtin,
    builtin_jobs,
    default_jobs,
    discover_rml,
    rml_job,
)
from .runner import (
    JSON_SCHEMA_ID,
    JSON_SCHEMA_ID_V1,
    execute_job,
    format_results,
    read_report,
    run_jobs,
    run_jobs_sharded,
    run_jobs_via_server,
    suite_report,
    write_report,
)
from .shards import (
    DEFAULT_MAX_SHARD_RETRIES,
    ShardStats,
    default_shard_count,
    plan_shards,
    run_sharded,
)

__all__ = [
    "CoverageJob",
    "JobResult",
    "BuiltinTarget",
    "BUILTIN_TARGETS",
    "build_builtin",
    "builtin_jobs",
    "default_jobs",
    "discover_rml",
    "rml_job",
    "DEFAULT_MAX_SHARD_RETRIES",
    "JSON_SCHEMA_ID",
    "JSON_SCHEMA_ID_V1",
    "ShardStats",
    "default_shard_count",
    "execute_job",
    "format_results",
    "plan_shards",
    "read_report",
    "run_jobs",
    "run_jobs_sharded",
    "run_jobs_via_server",
    "run_sharded",
    "suite_report",
    "write_report",
]
