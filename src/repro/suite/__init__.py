"""``repro.suite`` — first-class, parallel suites of coverage jobs.

A :class:`CoverageJob` names a model (builtin target or ``.rml`` file), a
property stage, and observed signals; the registry
(:mod:`repro.suite.registry`) merges the built-in circuits with ``.rml``
files discovered on disk; and the runner (:mod:`repro.suite.runner`) fans
jobs out across a process pool and collects JSON-ready results.

    >>> from repro.suite import default_jobs, run_jobs, suite_report
    >>> results = run_jobs(default_jobs("examples"), max_workers=4)
    >>> report = suite_report(results)
"""

from .jobs import CoverageJob, JobResult
from .registry import (
    BUILTIN_TARGETS,
    BuiltinTarget,
    build_builtin,
    builtin_jobs,
    default_jobs,
    discover_rml,
    rml_job,
)
from .runner import (
    JSON_SCHEMA_ID,
    execute_job,
    format_results,
    run_jobs,
    suite_report,
    write_report,
)

__all__ = [
    "CoverageJob",
    "JobResult",
    "BuiltinTarget",
    "BUILTIN_TARGETS",
    "build_builtin",
    "builtin_jobs",
    "default_jobs",
    "discover_rml",
    "rml_job",
    "JSON_SCHEMA_ID",
    "execute_job",
    "format_results",
    "run_jobs",
    "suite_report",
    "write_report",
]
