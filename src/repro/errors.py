"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class BDDError(ReproError):
    """Raised for invalid BDD operations (unknown variables, mixed managers)."""


class ParseError(ReproError):
    """Raised when an expression, CTL formula, or module fails to parse.

    Attributes
    ----------
    text:
        The full input text being parsed.
    position:
        Character offset at which the error was detected.
    line, column:
        1-based source location, when the parser tracks lines (the module
        language of :mod:`repro.lang` does; the one-line expression and CTL
        parsers leave them ``None``).
    filename:
        Source file name, when parsing came from a file.
    """

    def __init__(
        self,
        message: str,
        text: str = "",
        position: int = 0,
        line: "int | None" = None,
        column: "int | None" = None,
        filename: "str | None" = None,
    ):
        super().__init__(message)
        self.text = text
        self.position = position
        self.line = line
        self.column = column
        self.filename = filename


class EvaluationError(ReproError):
    """Raised when an expression cannot be evaluated under an assignment."""


class ModelError(ReproError):
    """Raised for ill-formed FSM definitions (duplicate names, bad widths)."""


class NotInSubsetError(ReproError):
    """Raised when a CTL formula falls outside the paper's acceptable ACTL subset.

    The DAC'99 coverage algorithm is defined only for the grammar

        f ::= b | b -> f | AX f | AG f | A[f U g] | f & g

    (with ``AF f`` accepted as sugar for ``A[true U f]``).  Formulas outside
    this subset can still be *model checked* but not covered.
    """


class VerificationError(ReproError):
    """Raised when coverage is requested for a property the model violates.

    Definition 3 of the paper only defines covered sets for properties that
    the FSM satisfies; estimating coverage of a failing property is a user
    error, not a degenerate answer.
    """


class CoverageError(ReproError):
    """Raised for invalid coverage requests (unknown observed signal, etc.)."""


class ConfigError(ReproError, ValueError):
    """Raised for invalid engine configurations.

    :class:`~repro.engine.EngineConfig.validate` raises this for out-of-range
    knobs (negative GC thresholds, unknown transition modes, ...).  It
    subclasses :class:`ValueError` as well as :class:`ReproError` so callers
    that predate the config redesign — which received ``ValueError`` from the
    scattered per-knob validators — keep working unchanged.
    """


class ReportError(ReproError):
    """Raised when a suite JSON report cannot be consumed.

    :func:`~repro.suite.runner.read_report` raises this for missing or
    mismatched ``schema`` identifiers (e.g. a ``repro-coverage-suite/v1``
    document handed to the v2 reader) and for structurally broken documents.
    """


class ServeError(ReproError):
    """Raised when an analysis server request fails.

    Carries the HTTP ``status`` the server answered with (``0`` when the
    failure was transport-level — connection refused, malformed reply)
    and the decoded error ``payload`` when one was returned, so callers
    can distinguish "your model doesn't parse" (422, with source
    location) from "the server is unhealthy" (5xx / transport).
    """

    def __init__(
        self,
        message: str,
        status: int = 0,
        payload: "dict | None" = None,
    ):
        super().__init__(message)
        self.status = status
        self.payload = payload
