"""``repro.lang`` — the textual model description language (``.rml``).

An SMV-inspired contract that decouples model description from library
code: circuits, properties, observed signals, fairness, and don't-cares
all live in one ``.rml`` file, parsed by :func:`parse_module`, lowered onto
the existing :class:`~repro.fsm.builder.CircuitBuilder` by
:func:`elaborate`, and round-tripped by :func:`module_to_str`.

    >>> from repro.lang import parse_module, elaborate
    >>> model = elaborate(parse_module(
    ...     "MODULE blinker VAR x : boolean; ASSIGN next(x) := !x; "
    ...     "SPEC AG (x | !x); OBSERVED x;"))
    >>> model.fsm.name, model.observed
    ('blinker', ['x'])

Feed ``model.specs``/``model.observed``/``model.dont_care`` to
:class:`~repro.coverage.estimator.CoverageEstimator` for the full
pipeline (see the README quickstart).
"""

from .ast import Module
from .elaborate import ElaboratedModel, elaborate
from .parser import load_module, parse_module
from .printer import module_to_str

__all__ = [
    "Module",
    "ElaboratedModel",
    "elaborate",
    "load_module",
    "parse_module",
    "module_to_str",
]
