"""Pretty-printer for ``.rml`` modules (round-trips the parser).

``parse_module(module_to_str(m))`` yields a module *equal* to ``m`` — the
AST nodes exclude source positions from comparison — which the test suite
asserts for every shipped example.
"""

from __future__ import annotations

from typing import List, Union

from ..ctl.printer import ctl_to_str
from ..expr.ast import Expr
from ..expr.printer import expr_to_str
from .ast import (
    Case,
    Module,
    VarDecl,
    WordConst,
    WordExpr,
    WordOffset,
    WordRef,
    WordSum,
)

__all__ = ["module_to_str"]


def _type_str(var: VarDecl) -> str:
    return f"word[{var.width}]" if var.is_word else "boolean"


def _word_str(value: WordExpr) -> str:
    if isinstance(value, WordConst):
        return str(value.value)
    if isinstance(value, WordRef):
        return value.name
    if isinstance(value, WordOffset):
        sign = "-" if value.offset < 0 else "+"
        return f"{value.name} {sign} {abs(value.offset)}"
    if isinstance(value, WordSum):
        return f"{value.lhs} + {value.rhs}"
    raise TypeError(f"unknown word expression {type(value).__name__}")


def _value_str(value: Union[Expr, WordExpr]) -> str:
    if isinstance(value, Expr):
        return expr_to_str(value)
    return _word_str(value)


def _case_lines(case: Case) -> List[str]:
    lines = ["case"]
    for arm in case.arms:
        condition = expr_to_str(arm.condition)
        if condition == "true":
            condition = "TRUE"
        lines.append(f"    {condition} : {_value_str(arm.value)};")
    lines.append("  esac")
    return lines


def module_to_str(module: Module) -> str:
    """Render ``module`` as canonical ``.rml`` source text."""
    out: List[str] = [f"MODULE {module.name}"]

    if module.vars:
        out.append("")
        out.append("VAR")
        for var in module.vars:
            out.append(f"  {var.name} : {_type_str(var)};")

    if module.inits or module.nexts:
        out.append("")
        out.append("ASSIGN")
        for init in module.inits:
            var = module.var(init.target)
            if var is not None and not var.is_word:
                rendered = "TRUE" if init.value else "FALSE"
            else:
                rendered = str(init.value)
            out.append(f"  init({init.target}) := {rendered};")
        for nxt in module.nexts:
            if isinstance(nxt.value, Case):
                body = _case_lines(nxt.value)
                out.append(f"  next({nxt.target}) := {body[0]}")
                out.extend(body[1:-1])
                out.append(f"  {body[-1]};")
            else:
                out.append(
                    f"  next({nxt.target}) := {_value_str(nxt.value)};"
                )

    if module.defines:
        out.append("")
        out.append("DEFINE")
        for define in module.defines:
            out.append(f"  {define.name} := {_value_str(define.value)};")

    if module.fairness:
        out.append("")
        for fairness in module.fairness:
            out.append(f"FAIRNESS {expr_to_str(fairness.expr)};")

    if module.specs:
        out.append("")
        for spec in module.specs:
            out.append(f"SPEC {ctl_to_str(spec.formula)};")

    if module.observed:
        out.append("")
        out.append(f"OBSERVED {', '.join(module.observed)};")

    if module.dont_care is not None:
        out.append("")
        out.append(f"DONTCARE {expr_to_str(module.dont_care)};")

    return "\n".join(out) + "\n"
