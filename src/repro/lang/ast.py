"""Module AST for the ``.rml`` model description language.

A :class:`Module` is the parsed form of one ``.rml`` file: variable
declarations, ``init()``/``next()`` assignments, combinational ``DEFINE``
signals, ``FAIRNESS`` constraints, ``SPEC`` properties, the ``OBSERVED``
signal list, and an optional ``DONTCARE`` predicate.

Expressions inside the module reuse the library's propositional AST
(:mod:`repro.expr.ast`) and CTL AST (:mod:`repro.ctl.ast`); word-valued
right-hand sides (``0``, ``count``, ``count + 1``, ``hi + lo``) get their
own small node family here, lowered to per-bit expressions by the
elaborator.

All nodes compare structurally with source positions excluded, so a
parse -> print -> parse round trip yields an *equal* module even though the
re-parsed positions differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from ..ctl.ast import CtlFormula
from ..expr.ast import Expr

__all__ = [
    "Module",
    "VarDecl",
    "InitAssign",
    "NextAssign",
    "DefineDecl",
    "SpecDecl",
    "FairnessDecl",
    "WordExpr",
    "WordConst",
    "WordRef",
    "WordOffset",
    "WordSum",
    "Case",
    "CaseArm",
    "NextValue",
]


# ----------------------------------------------------------------------
# Word-valued right-hand sides
# ----------------------------------------------------------------------


class WordExpr:
    """Base class for word-valued right-hand sides."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class WordConst(WordExpr):
    """An unsigned constant word value (``0``, ``0x1f``, ``0b101``)."""

    value: int


@dataclass(frozen=True, slots=True)
class WordRef(WordExpr):
    """The current value of another word (or the word itself: hold)."""

    name: str


@dataclass(frozen=True, slots=True)
class WordOffset(WordExpr):
    """``name + k`` / ``name - k`` with wraparound at the word width."""

    name: str
    offset: int


@dataclass(frozen=True, slots=True)
class WordSum(WordExpr):
    """``a + b`` of two words — allowed only in ``DEFINE`` (the result is
    one bit wider than the widest operand, so it cannot feed a latch)."""

    lhs: str
    rhs: str


#: What may appear on the right of ``next(x) :=`` — a propositional
#: expression (boolean targets), a word expression (word targets), or a
#: ``case`` over either.
NextValue = Union[Expr, WordExpr, "Case"]


@dataclass(frozen=True, slots=True)
class CaseArm:
    """One ``condition : value;`` arm of a ``case`` block."""

    condition: Expr
    value: Union[Expr, WordExpr]


@dataclass(frozen=True, slots=True)
class Case:
    """A ``case ... esac`` block: first matching arm wins.

    The elaborator requires the last arm's condition to be the constant
    ``TRUE`` (exhaustiveness, as in SMV).
    """

    arms: Tuple[CaseArm, ...]


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class VarDecl:
    """``name : boolean;`` or ``name : word[width];``.

    ``width`` is ``None`` for booleans.  A variable with a ``next()``
    assignment elaborates to a latch; one without becomes a free input.
    """

    name: str
    width: Optional[int] = None
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)

    @property
    def is_word(self) -> bool:
        return self.width is not None


@dataclass(frozen=True)
class InitAssign:
    """``init(x) := value;`` — reset value of a latch (int; 0/1 for bits)."""

    target: str
    value: int
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class NextAssign:
    """``next(x) := value;`` — next-state logic of a latch."""

    target: str
    value: NextValue
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class DefineDecl:
    """``name := expr;`` under ``DEFINE`` — a combinational signal.

    ``value`` is a propositional :class:`~repro.expr.ast.Expr` for boolean
    defines or a :class:`WordSum` for word-valued ones (``total := hi + lo``).
    """

    name: str
    value: Union[Expr, WordSum]
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class SpecDecl:
    """``SPEC formula;`` — an ACTL property to verify and cover."""

    formula: CtlFormula
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class FairnessDecl:
    """``FAIRNESS expr;`` — a constraint holding infinitely often."""

    expr: Expr
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Module:
    """One parsed ``.rml`` module."""

    name: str
    vars: Tuple[VarDecl, ...] = ()
    inits: Tuple[InitAssign, ...] = ()
    nexts: Tuple[NextAssign, ...] = ()
    defines: Tuple[DefineDecl, ...] = ()
    fairness: Tuple[FairnessDecl, ...] = ()
    specs: Tuple[SpecDecl, ...] = ()
    observed: Tuple[str, ...] = ()
    dont_care: Optional[Expr] = None
    filename: Optional[str] = field(default=None, compare=False)

    # -- conveniences ----------------------------------------------------

    def var(self, name: str) -> Optional[VarDecl]:
        """The declaration of ``name``, or ``None``."""
        for decl in self.vars:
            if decl.name == name:
                return decl
        return None

    def latch_names(self) -> Tuple[str, ...]:
        """Variables with next-state logic (the rest are free inputs)."""
        assigned = {a.target for a in self.nexts}
        return tuple(v.name for v in self.vars if v.name in assigned)

    def input_names(self) -> Tuple[str, ...]:
        assigned = {a.target for a in self.nexts}
        return tuple(v.name for v in self.vars if v.name not in assigned)
