"""Tokenizer and recursive-descent parser for ``.rml`` modules.

Grammar (SMV-inspired; ``--`` starts a comment running to end of line)::

    module    := 'MODULE' name section*
    section   := 'VAR' vardecl*
               | 'ASSIGN' assign*
               | 'DEFINE' define*
               | 'FAIRNESS' expr ';'
               | 'SPEC' ctl ';'
               | 'OBSERVED' name (',' name)* ';'
               | 'DONTCARE' expr ';'
    vardecl   := name ':' ('boolean' | 'word' '[' number ']') ';'
    assign    := 'init' '(' name ')' ':=' number ';'
               | 'next' '(' name ')' ':=' nextval ';'
    nextval   := 'case' (expr ':' value ';')+ 'esac' | value
    value     := expr                      -- boolean targets
               | number | name (('+'|'-') number)?   -- word targets
    define    := name ':=' (expr | name '+' name) ';'

Propositional expressions and CTL formulas reuse the existing parsers
(:func:`repro.expr.parser.parse_expr`, :func:`repro.ctl.parser.parse_ctl`):
the module tokenizer collects the embedded tokens, hands their joined text
to the sub-parser, and maps any error position back to the original
line/column, so every :class:`~repro.errors.ParseError` raised from a
module carries an exact source location.

Variables must be declared before their ``init``/``next`` assignments (the
parser needs the target's type to pick the boolean or word value grammar);
``DEFINE`` bodies may forward-reference later defines.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Set, Union

from ..ctl.parser import parse_ctl
from ..errors import ParseError
from ..expr.ast import Expr
from ..obs.counters import counter_inc
from ..expr.parser import _parse_number, parse_expr
from .ast import (
    Case,
    CaseArm,
    DefineDecl,
    FairnessDecl,
    InitAssign,
    Module,
    NextAssign,
    SpecDecl,
    VarDecl,
    WordConst,
    WordOffset,
    WordRef,
    WordSum,
)

__all__ = ["parse_module", "load_module", "tokenize_module", "LangToken"]

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>--[^\n]*)
  | (?P<ws>\s+)
  | (?P<number>0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<op>:=|<->|->|==|!=|<=|>=|[()\[\]!&|^<>=,;:+\-])
    """,
    re.VERBOSE,
)

#: Keywords opening a module section (case-sensitive, SMV style).
SECTION_KEYWORDS = frozenset(
    ("MODULE", "VAR", "ASSIGN", "DEFINE", "FAIRNESS", "SPEC", "OBSERVED",
     "DONTCARE")
)


@dataclass(frozen=True)
class LangToken:
    """One module-language token with its 1-based source location."""

    kind: str  # 'ident' | 'number' | 'op' | 'eof'
    text: str
    line: int
    column: int


def tokenize_module(text: str, filename: Optional[str] = None) -> List[LangToken]:
    """Tokenise a module source; comments and whitespace are dropped."""
    tokens: List[LangToken] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(
                f"{filename or '<module>'}:{line}:{pos - line_start + 1}: "
                f"illegal character {text[pos]!r}",
                text,
                pos,
                line=line,
                column=pos - line_start + 1,
                filename=filename,
            )
        kind = match.lastgroup
        if kind not in ("ws", "comment"):
            tokens.append(
                LangToken(kind, match.group(), line, pos - line_start + 1)
            )
        newlines = match.group().count("\n")
        if newlines:
            line += newlines
            line_start = pos + match.group().rfind("\n") + 1
        pos = match.end()
    tokens.append(LangToken("eof", "", line, len(text) - line_start + 1))
    return tokens


class _ModuleParser:
    def __init__(self, text: str, filename: Optional[str] = None):
        self.text = text
        self.filename = filename
        self.tokens = tokenize_module(text, filename)
        self.index = 0
        #: declared variable name -> width (None = boolean)
        self.types: dict = {}
        self.defines_seen: Set[str] = set()

    # -- token-stream helpers -------------------------------------------

    def peek(self, ahead: int = 0) -> LangToken:
        return self.tokens[min(self.index + ahead, len(self.tokens) - 1)]

    def advance(self) -> LangToken:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def accept_op(self, text: str) -> Optional[LangToken]:
        token = self.peek()
        if token.kind == "op" and token.text == text:
            return self.advance()
        return None

    def expect_op(self, text: str) -> LangToken:
        token = self.accept_op(text)
        if token is None:
            raise self.error(f"expected {text!r}")
        return token

    def accept_keyword(self, word: str) -> Optional[LangToken]:
        token = self.peek()
        if token.kind == "ident" and token.text == word:
            return self.advance()
        return None

    def expect_ident(self, what: str = "a name") -> LangToken:
        token = self.peek()
        if token.kind != "ident":
            raise self.error(f"expected {what}")
        return self.advance()

    def error(
        self, message: str, token: Optional[LangToken] = None
    ) -> ParseError:
        token = token or self.peek()
        found = token.text or "end of input"
        return self.located(f"{message} (found {found!r})", token)

    def located(self, message: str, token: LangToken) -> ParseError:
        return ParseError(
            f"{self.filename or '<module>'}:{token.line}:{token.column}: "
            f"{message}",
            self.text,
            0,
            line=token.line,
            column=token.column,
            filename=self.filename,
        )

    # -- embedded expression / CTL parsing ------------------------------

    def collect_until(self, stops: Sequence[str], what: str) -> List[LangToken]:
        """Tokens up to (not including) the first top-level stop operator."""
        start = self.peek()
        out: List[LangToken] = []
        while True:
            token = self.peek()
            if token.kind == "eof":
                raise self.located(
                    f"unterminated {what} (expected "
                    f"{' or '.join(repr(s) for s in stops)})",
                    start,
                )
            if token.kind == "op" and token.text in stops:
                break
            out.append(self.advance())
        if not out:
            raise self.error(f"expected {what}")
        return out

    def parse_embedded(
        self,
        tokens: List[LangToken],
        sub_parser: Callable[[str], object],
    ):
        """Run ``sub_parser`` over the joined token text, relocating errors.

        The collected tokens are joined with single spaces, so a position
        reported by the sub-parser maps back to a token index (and from
        there to the original line/column) by accumulating lengths.
        """
        parts = [t.text for t in tokens]
        joined = " ".join(parts)
        try:
            return sub_parser(joined)
        except ParseError as exc:
            starts: List[int] = []
            offset = 0
            for part in parts:
                starts.append(offset)
                offset += len(part) + 1
            at = tokens[-1]
            within = 0
            for token, start in zip(tokens, starts):
                if start <= exc.position:
                    at = token
                    within = exc.position - start
                else:
                    break
            message = re.sub(r"\s*at position \d+\s*", " ", str(exc)).strip()
            raise self.located(
                message,
                LangToken(at.kind, at.text, at.line, at.column + within),
            ) from None

    def parse_expr_until(self, stops: Sequence[str], what: str = "an expression") -> Expr:
        return self.parse_embedded(self.collect_until(stops, what), parse_expr)

    # -- module grammar -------------------------------------------------

    def parse(self) -> Module:
        if self.accept_keyword("MODULE") is None:
            raise self.error("expected 'MODULE'")
        name = self.expect_ident("a module name").text
        vars_: List[VarDecl] = []
        inits: List[InitAssign] = []
        nexts: List[NextAssign] = []
        defines: List[DefineDecl] = []
        fairness: List[FairnessDecl] = []
        specs: List[SpecDecl] = []
        observed: List[str] = []
        dont_care: Optional[Expr] = None
        while True:
            token = self.peek()
            if token.kind == "eof":
                break
            if token.kind != "ident" or token.text not in SECTION_KEYWORDS:
                raise self.error(
                    "expected a section keyword (VAR, ASSIGN, DEFINE, "
                    "FAIRNESS, SPEC, OBSERVED, DONTCARE)"
                )
            if token.text == "MODULE":
                raise self.error("only one MODULE per file")
            self.advance()
            if token.text == "VAR":
                vars_.extend(self.parse_var_section())
            elif token.text == "ASSIGN":
                self.parse_assign_section(inits, nexts)
            elif token.text == "DEFINE":
                defines.extend(self.parse_define_section())
            elif token.text == "FAIRNESS":
                expr = self.parse_expr_until((";",), "a fairness constraint")
                self.expect_op(";")
                fairness.append(
                    FairnessDecl(expr, line=token.line, column=token.column)
                )
            elif token.text == "SPEC":
                body = self.collect_until((";",), "a property")
                formula = self.parse_embedded(body, parse_ctl)
                self.expect_op(";")
                specs.append(
                    SpecDecl(formula, line=token.line, column=token.column)
                )
            elif token.text == "OBSERVED":
                while True:
                    signal = self.expect_ident("an observed signal name")
                    observed.append(signal.text)
                    if not self.accept_op(","):
                        break
                self.expect_op(";")
            elif token.text == "DONTCARE":
                if dont_care is not None:
                    raise self.located(
                        "duplicate DONTCARE (combine with '|')", token
                    )
                dont_care = self.parse_expr_until((";",), "a don't-care predicate")
                self.expect_op(";")
        return Module(
            name=name,
            vars=tuple(vars_),
            inits=tuple(inits),
            nexts=tuple(nexts),
            defines=tuple(defines),
            fairness=tuple(fairness),
            specs=tuple(specs),
            observed=tuple(observed),
            dont_care=dont_care,
            filename=self.filename,
        )

    def at_section_end(self) -> bool:
        token = self.peek()
        return token.kind == "eof" or (
            token.kind == "ident" and token.text in SECTION_KEYWORDS
        )

    def parse_var_section(self) -> List[VarDecl]:
        out: List[VarDecl] = []
        while not self.at_section_end():
            name = self.expect_ident("a variable name")
            if name.text in self.types:
                raise self.located(
                    f"duplicate variable {name.text!r}", name
                )
            self.expect_op(":")
            width: Optional[int] = None
            if self.accept_keyword("boolean"):
                pass
            elif self.accept_keyword("word"):
                self.expect_op("[")
                width_token = self.peek()
                if width_token.kind != "number":
                    raise self.error("expected a word width")
                self.advance()
                width = _parse_number(width_token.text)
                if width < 1:
                    raise self.located(
                        f"word width must be >= 1, got {width}", width_token
                    )
                self.expect_op("]")
            else:
                raise self.error("expected 'boolean' or 'word[N]'")
            self.expect_op(";")
            self.types[name.text] = width
            out.append(
                VarDecl(name.text, width, line=name.line, column=name.column)
            )
        return out

    def parse_assign_section(
        self, inits: List[InitAssign], nexts: List[NextAssign]
    ) -> None:
        while not self.at_section_end():
            kw = self.peek()
            if kw.kind != "ident" or kw.text not in ("init", "next"):
                raise self.error("expected 'init(...)' or 'next(...)'")
            self.advance()
            self.expect_op("(")
            target = self.expect_ident("a variable name")
            if target.text not in self.types:
                raise self.located(
                    f"undeclared variable {target.text!r} "
                    f"(declare it in a VAR section first)",
                    target,
                )
            self.expect_op(")")
            self.expect_op(":=")
            width = self.types[target.text]
            if kw.text == "init":
                if any(a.target == target.text for a in inits):
                    raise self.located(
                        f"duplicate init() for {target.text!r}", target
                    )
                value = self.parse_init_value(target.text, width)
                self.expect_op(";")
                inits.append(
                    InitAssign(target.text, value, line=kw.line, column=kw.column)
                )
            else:
                if any(a.target == target.text for a in nexts):
                    raise self.located(
                        f"duplicate next() for {target.text!r}", target
                    )
                value = self.parse_next_value(width)
                self.expect_op(";")
                nexts.append(
                    NextAssign(target.text, value, line=kw.line, column=kw.column)
                )

    def parse_init_value(self, target: str, width: Optional[int]) -> int:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            value = _parse_number(token.text)
        elif token.kind == "ident" and token.text.lower() in ("true", "false"):
            self.advance()
            value = 1 if token.text.lower() == "true" else 0
        else:
            raise self.error("expected a constant init value")
        limit = 1 << (width or 1)
        if value >= limit:
            raise self.located(
                f"init value {value} out of range for {target!r} "
                f"(max {limit - 1})",
                token,
            )
        return value

    def parse_next_value(self, width: Optional[int]):
        if self.accept_keyword("case"):
            arms: List[CaseArm] = []
            while not self.accept_keyword("esac"):
                if self.peek().kind == "eof":
                    raise self.error("unterminated case (expected 'esac')")
                condition = self.parse_expr_until((":",), "an arm condition")
                self.expect_op(":")
                value = self.parse_value(width)
                self.expect_op(";")
                arms.append(CaseArm(condition, value))
            if not arms:
                raise self.error("case needs at least one arm")
            return Case(tuple(arms))
        return self.parse_value(width)

    def parse_value(self, width: Optional[int]) -> Union[Expr, WordConst,
                                                         WordRef, WordOffset]:
        """A case-arm / next() right-hand side for a target of known type."""
        if width is None:
            return self.parse_expr_until((";",), "an expression")
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return WordConst(_parse_number(token.text))
        if token.kind == "ident":
            name = self.advance()
            sign_token = self.peek()
            if sign_token.kind == "op" and sign_token.text in ("+", "-"):
                self.advance()
                amount = self.peek()
                if amount.kind != "number":
                    raise self.error("expected a constant offset")
                self.advance()
                offset = _parse_number(amount.text)
                if sign_token.text == "-":
                    offset = -offset
                return WordOffset(name.text, offset)
            return WordRef(name.text)
        raise self.error(
            "expected a word value (constant, word, or word +/- constant)"
        )

    def parse_define_section(self) -> List[DefineDecl]:
        out: List[DefineDecl] = []
        while not self.at_section_end():
            name = self.expect_ident("a define name")
            if name.text in self.types or name.text in self.defines_seen:
                raise self.located(f"duplicate signal {name.text!r}", name)
            self.expect_op(":=")
            body = self.collect_until((";",), "a define body")
            self.expect_op(";")
            value: Union[Expr, WordSum]
            if (
                len(body) == 3
                and body[0].kind == "ident"
                and body[1].kind == "op"
                and body[1].text == "+"
                and body[2].kind == "ident"
            ):
                value = WordSum(body[0].text, body[2].text)
            else:
                value = self.parse_embedded(body, parse_expr)
            self.defines_seen.add(name.text)
            out.append(
                DefineDecl(name.text, value, line=name.line, column=name.column)
            )
        return out


def parse_module(text: str, filename: Optional[str] = None) -> Module:
    """Parse ``.rml`` source text into a :class:`~repro.lang.ast.Module`.

    Raises :class:`~repro.errors.ParseError` with 1-based ``line`` and
    ``column`` attributes (and ``filename`` when given) on any syntax or
    declaration error.

    Every call bumps the process-global ``lang.parse_module`` counter
    (:mod:`repro.obs.counters`) — the serving layer's dedup tests use its
    delta to prove that identical concurrent requests are parsed once.
    """
    counter_inc("lang.parse_module")
    return _ModuleParser(text, filename).parse()


def load_module(path: "str | Path") -> Module:
    """Read and parse one ``.rml`` file."""
    path = Path(path)
    return parse_module(path.read_text(), filename=str(path))
