"""Elaboration: lower a parsed :class:`~repro.lang.ast.Module` to an FSM.

The elaborator drives the existing :class:`~repro.fsm.builder.CircuitBuilder`
exactly the way the hand-written circuits in :mod:`repro.circuits` do:

* a variable with a ``next()`` assignment becomes a latch (words become
  per-bit latch banks via :meth:`CircuitBuilder.word_latch`); one without
  becomes a free input;
* word-valued right-hand sides are lowered to per-bit expressions with the
  RTL builders of :mod:`repro.expr.arith` (``count + 1`` becomes a
  ripple-carry increment, ``case`` blocks become per-bit mux trees);
* ``DEFINE`` bodies become combinational signals; word sums
  (``total := hi + lo``) expand to a carry chain plus a word alias;
* ``FAIRNESS``/``SPEC``/``OBSERVED``/``DONTCARE`` pass through with their
  names validated.

Every validation failure raises a :class:`~repro.errors.ParseError` carrying
the declaration's source line/column, so errors from ``.rml`` files point at
the offending text rather than at library internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from ..ctl.ast import CtlFormula, formula_atoms
from ..errors import ParseError
from ..expr.arith import add_const_bits, add_words_bits, const_bits, mux
from ..expr.ast import FALSE_EXPR, Const, Expr, Var
from .ast import (
    Case,
    DefineDecl,
    Module,
    NextAssign,
    VarDecl,
    WordConst,
    WordExpr,
    WordOffset,
    WordRef,
    WordSum,
)

if TYPE_CHECKING:
    from ..bdd import ResourcePolicy
    from ..engine import EngineConfig
    from ..fsm.fsm import FSM

__all__ = ["ElaboratedModel", "elaborate"]


@dataclass
class ElaboratedModel:
    """The executable form of a module: FSM plus coverage inputs."""

    module: Module
    fsm: FSM
    specs: List[CtlFormula] = field(default_factory=list)
    observed: List[str] = field(default_factory=list)
    dont_care: Optional[Expr] = None


class _Elaborator:
    def __init__(
        self,
        module: Module,
        config: Optional[EngineConfig] = None,
        policy: Optional[ResourcePolicy] = None,
    ):
        from ..engine import EngineConfig

        self.module = module
        self.config = config if config is not None else EngineConfig()
        self.policy = policy
        self.filename = module.filename or "<module>"
        #: word name -> LSB-first bit names (vars and word-sum defines)
        self.word_bits: Dict[str, List[str]] = {}
        self.known: set = set()

    def err(self, message: str, line: int = 0, column: int = 0) -> ParseError:
        location = self.filename
        if line:
            location += f":{line}:{column}"
        return ParseError(
            f"{location}: {message}",
            line=line or None,
            column=column or None,
            filename=self.module.filename,
        )

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------

    def build_symbol_tables(self) -> None:
        module = self.module
        for var in module.vars:
            if var.is_word:
                self.word_bits[var.name] = [
                    f"{var.name}{i}" for i in range(var.width)
                ]
        for define in module.defines:
            if isinstance(define.value, WordSum):
                for operand in (define.value.lhs, define.value.rhs):
                    if operand not in self.word_bits:
                        raise self.err(
                            f"word sum operand {operand!r} is not a known "
                            f"word (sums may only add words declared above)",
                            define.line,
                            define.column,
                        )
                width = max(
                    len(self.word_bits[define.value.lhs]),
                    len(self.word_bits[define.value.rhs]),
                ) + 1
                self.word_bits[define.name] = [
                    f"{define.name}{i}" for i in range(width)
                ]

        toplevel = {v.name for v in module.vars} | {
            d.name for d in module.defines
        }
        for word, bits in self.word_bits.items():
            for bit in bits:
                if bit in toplevel:
                    raise self.err(
                        f"bit {bit!r} of word {word!r} collides with "
                        f"another declaration"
                    )
        self.known = set(toplevel)
        for bits in self.word_bits.values():
            self.known.update(bits)

    def check_expr(self, expr: Expr, what: str, line: int, column: int) -> None:
        for atom in sorted(expr.atoms()):
            if atom not in self.known:
                raise self.err(
                    f"unknown signal {atom!r} in {what}", line, column
                )

    # ------------------------------------------------------------------
    # Value lowering
    # ------------------------------------------------------------------

    def word_value_bits(
        self, value: WordExpr, var: VarDecl, assign: NextAssign
    ) -> List[Expr]:
        """Lower one word-valued RHS to ``var.width`` bit expressions."""
        width = var.width or 1
        where = f"next({var.name})"
        if isinstance(value, WordConst):
            if value.value >= (1 << width):
                raise self.err(
                    f"constant {value.value} out of range for "
                    f"{width}-bit word {var.name!r}",
                    assign.line,
                    assign.column,
                )
            return const_bits(value.value, width)
        if isinstance(value, WordRef):
            bits = self.word_bits.get(value.name)
            if bits is None:
                raise self.err(
                    f"{value.name!r} is not a word in {where}",
                    assign.line,
                    assign.column,
                )
            if len(bits) > width:
                raise self.err(
                    f"word {value.name!r} ({len(bits)} bits) is wider than "
                    f"{var.name!r} ({width} bits)",
                    assign.line,
                    assign.column,
                )
            out: List[Expr] = [Var(bit) for bit in bits]
            out.extend([FALSE_EXPR] * (width - len(bits)))
            return out
        if isinstance(value, WordOffset):
            bits = self.word_bits.get(value.name)
            if bits is None:
                raise self.err(
                    f"{value.name!r} is not a word in {where}",
                    assign.line,
                    assign.column,
                )
            if len(bits) != width:
                raise self.err(
                    f"offset arithmetic needs matching widths: "
                    f"{value.name!r} is {len(bits)} bits, {var.name!r} is "
                    f"{width}",
                    assign.line,
                    assign.column,
                )
            return add_const_bits(bits, value.offset)
        raise self.err(  # WordSum
            f"word sums are only allowed in DEFINE, not in {where}",
            assign.line,
            assign.column,
        )

    def require_exhaustive(self, case: Case, assign: NextAssign) -> None:
        last = case.arms[-1].condition
        if not (isinstance(last, Const) and last.value):
            raise self.err(
                f"case for next({assign.target}) is not exhaustive: the "
                f"last arm's condition must be TRUE",
                assign.line,
                assign.column,
            )

    def lower_word_next(self, var: VarDecl, assign: NextAssign) -> List[Expr]:
        value = assign.value
        if isinstance(value, Case):
            self.require_exhaustive(value, assign)
            for arm in value.arms:
                self.check_expr(
                    arm.condition,
                    f"next({var.name})",
                    assign.line,
                    assign.column,
                )
            lowered = [
                self.word_value_bits(arm.value, var, assign)
                for arm in value.arms
            ]
            width = var.width or 1
            result = lowered[-1]
            for arm, bits in zip(
                reversed(value.arms[:-1]), reversed(lowered[:-1])
            ):
                result = [
                    mux(arm.condition, bits[i], result[i])
                    for i in range(width)
                ]
            return result
        if isinstance(value, WordExpr):
            return self.word_value_bits(value, var, assign)
        raise self.err(
            f"next({var.name}) needs a word value, not a boolean expression",
            assign.line,
            assign.column,
        )

    def lower_bool_next(self, var: VarDecl, assign: NextAssign) -> Expr:
        value = assign.value
        if isinstance(value, Case):
            self.require_exhaustive(value, assign)
            result: Optional[Expr] = None
            for arm in reversed(value.arms):
                self.check_expr(
                    arm.condition,
                    f"next({var.name})",
                    assign.line,
                    assign.column,
                )
                if not isinstance(arm.value, Expr):
                    raise self.err(
                        f"next({var.name}) arms must be boolean expressions",
                        assign.line,
                        assign.column,
                    )
                self.check_expr(
                    arm.value, f"next({var.name})", assign.line, assign.column
                )
                if result is None:
                    result = arm.value
                else:
                    result = mux(arm.condition, arm.value, result)
            assert result is not None
            return result
        if isinstance(value, Expr):
            self.check_expr(
                value, f"next({var.name})", assign.line, assign.column
            )
            return value
        raise self.err(
            f"next({var.name}) needs a boolean expression, not a word value",
            assign.line,
            assign.column,
        )

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def run(self) -> ElaboratedModel:
        from ..fsm.builder import CircuitBuilder

        module = self.module
        self.build_symbol_tables()

        nexts: Dict[str, NextAssign] = {a.target: a for a in module.nexts}
        inits: Dict[str, int] = {}
        for init in module.inits:
            if init.target not in nexts:
                raise self.err(
                    f"init({init.target}) assigned but {init.target!r} has "
                    f"no next() — free inputs take no reset value",
                    init.line,
                    init.column,
                )
            inits[init.target] = init.value

        builder = CircuitBuilder(module.name)
        for var in module.vars:
            assign = nexts.get(var.name)
            if assign is None:
                if var.is_word:
                    builder.word_input(var.name, var.width)
                else:
                    builder.input(var.name)
            elif var.is_word:
                builder.word_latch(
                    var.name,
                    var.width,
                    inits.get(var.name, 0),
                    self.lower_word_next(var, assign),
                )
            else:
                builder.latch(
                    var.name,
                    bool(inits.get(var.name, 0)),
                    self.lower_bool_next(var, assign),
                )

        for define in module.defines:
            self.elaborate_define(builder, define)

        for fairness in module.fairness:
            self.check_expr(
                fairness.expr, "FAIRNESS", fairness.line, fairness.column
            )
            builder.fairness(fairness.expr)

        declared = builder.declared_signals()
        for name in module.observed:
            if name not in declared:
                raise self.err(f"unknown OBSERVED signal {name!r}")
        if module.dont_care is not None:
            self.check_expr(module.dont_care, "DONTCARE", 0, 0)

        specs: List[CtlFormula] = []
        for spec in module.specs:
            for atom in sorted(formula_atoms(spec.formula)):
                if atom not in self.known:
                    raise self.err(
                        f"unknown signal {atom!r} in SPEC",
                        spec.line,
                        spec.column,
                    )
            specs.append(spec.formula)

        return ElaboratedModel(
            module=module,
            fsm=builder.build(config=self.config, policy=self.policy),
            specs=specs,
            observed=list(module.observed),
            dont_care=module.dont_care,
        )

    def elaborate_define(
        self, builder: CircuitBuilder, define: DefineDecl
    ) -> None:
        value: Union[Expr, WordSum] = define.value
        if isinstance(value, WordSum):
            bits = add_words_bits(
                self.word_bits[value.lhs], self.word_bits[value.rhs]
            )
            names = self.word_bits[define.name]
            for bit_name, bit_expr in zip(names, bits):
                builder.define(bit_name, bit_expr)
            builder.word(define.name, names)
        else:
            self.check_expr(
                value, f"define {define.name!r}", define.line, define.column
            )
            builder.define(define.name, value)


def elaborate(
    module: Module,
    trans: Optional[str] = None,
    policy: Optional[ResourcePolicy] = None,
    config: Optional[EngineConfig] = None,
) -> ElaboratedModel:
    """Lower ``module`` to an :class:`ElaboratedModel` (FSM + properties).

    ``config`` (an :class:`~repro.engine.EngineConfig`) carries the engine
    knobs: the FSM's transition-relation mode — ``"partitioned"`` (default,
    per-latch conjuncts with early quantification) or ``"mono"`` (one
    relation BDD) — and the resource thresholds compiled into the BDD
    manager's policy.  ``policy`` optionally overrides the config's
    resource knobs with a full :class:`~repro.bdd.policy.ResourcePolicy`;
    ``trans=`` directly is deprecated (see
    :meth:`~repro.fsm.builder.CircuitBuilder.build`).

    Raises :class:`~repro.errors.ParseError` with source location on any
    validation failure (unknown signals, width mismatches, non-exhaustive
    cases, init on a free input, ...).
    """
    # The engine (and through it the BDD layer) is imported only when a
    # module is actually lowered: importing this package must stay cheap
    # and BDD-free so ``repro.lint`` can use the parser alone.
    from ..engine import _coalesce_trans

    config = _coalesce_trans("elaborate", config, trans)
    return _Elaborator(module, config=config, policy=policy).run()
