"""`repro.obs` — the engine's telemetry spine.

The paper reports every experiment as a cost pair — "BDD nodes - time" per
signal (Table 2) — so cost is a first-class output of this codebase, not a
debugging afterthought.  This package is the one instrumentation layer all
engine work reports through:

:mod:`repro.obs.telemetry`
    Hierarchical phase spans (parse → elaborate → build-trans →
    reachability → verify → coverage → traces) that snapshot
    :meth:`~repro.bdd.manager.BDDManager.resource_stats` deltas at their
    boundaries, plus per-iteration frontier events inside the reachability
    fixpoint.  :data:`NULL_TELEMETRY` is the always-off implementation the
    engine defaults to.
:mod:`repro.obs.trace`
    Chrome-trace-event export of a recorded telemetry — open the file in
    Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
:mod:`repro.obs.bench`
    The ``repro bench`` workload registry and ``BENCH_<name>.json``
    baseline codec: counters are the stable, machine-independent signal;
    wall-clock rides along as information.
:mod:`repro.obs.counters`
    A process-global named-counter registry for subsystems whose
    lifetime outlives any one analysis (the ``repro serve`` cache and
    worker pool, the parser's parse-count telemetry); surfaces in the
    server's ``/v1/stats`` as a ``repro-metrics/v1`` document.

Everything here is pure stdlib, and recording is observationally inert:
spans and events only *read* engine state (resource counters, satcounts),
so a run with telemetry on produces byte-identical verdicts, coverage
numbers and traces to a run with telemetry off.
"""

from .bench import (
    BENCH_SCHEMA,
    BENCH_WORKLOADS,
    BenchResult,
    BenchWorkload,
    baseline_path,
    compare_result,
    load_baseline,
    run_bench,
    run_workload,
    write_baseline,
)
from .counters import (
    counter_delta,
    counter_inc,
    counter_value,
    counters_snapshot,
)
from .telemetry import (
    METRICS_SCHEMA,
    NULL_TELEMETRY,
    TELEMETRY_COUNTERS,
    TELEMETRY_LEVELS,
    TELEMETRY_OFF,
    TELEMETRY_SPANS,
    Span,
    Telemetry,
    format_profile,
)
from .trace import chrome_trace_events, write_chrome_trace

__all__ = [
    "METRICS_SCHEMA",
    "NULL_TELEMETRY",
    "TELEMETRY_COUNTERS",
    "TELEMETRY_LEVELS",
    "TELEMETRY_OFF",
    "TELEMETRY_SPANS",
    "Span",
    "Telemetry",
    "format_profile",
    "chrome_trace_events",
    "write_chrome_trace",
    "BENCH_SCHEMA",
    "BENCH_WORKLOADS",
    "BenchResult",
    "BenchWorkload",
    "baseline_path",
    "compare_result",
    "load_baseline",
    "run_bench",
    "run_workload",
    "write_baseline",
    "counter_delta",
    "counter_inc",
    "counter_value",
    "counters_snapshot",
]
