"""Chrome-trace-event export of a recorded :class:`~repro.obs.Telemetry`.

The output follows the Trace Event Format's *JSON array* flavour: one
event object per line inside a top-level ``[...]``, so the file is both
valid JSON and greppable line-by-line.  Load it in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* phase spans become ``"ph": "X"`` complete events (``ts``/``dur`` in
  microseconds) nested on one track, with the span's counter deltas in
  ``args``;
* frontier samples become ``"ph": "C"`` counter events, which the viewer
  renders as per-iteration counter tracks.

``pid``/``tid`` are fixed at 1: the engine is single-threaded and a
stable id keeps the export deterministic across runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from .telemetry import Telemetry

__all__ = ["chrome_trace_events", "write_chrome_trace"]

_PID = 1
_TID = 1


def _us(seconds: float) -> float:
    """Seconds → microseconds, rounded to keep the JSON compact."""
    return round(seconds * 1e6, 3)


def chrome_trace_events(telemetry: Telemetry) -> List[Dict[str, object]]:
    """The recorded spans/events as Chrome trace event dicts."""
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID,
            "args": {"name": "repro"},
        }
    ]
    for span in telemetry.spans:
        args: Dict[str, object] = dict(span.attrs)
        args.update(
            (key, round(value, 6) if isinstance(value, float) else value)
            for key, value in span.counters.items()
        )
        events.append(
            {
                "name": span.name,
                "cat": "phase",
                "ph": "X",
                "ts": _us(span.t_start),
                "dur": _us(span.seconds),
                "pid": _PID,
                "tid": _TID,
                "args": args,
            }
        )
    for sample in telemetry.events:
        events.append(
            {
                "name": sample["name"],
                "cat": "sample",
                "ph": "C",
                "ts": _us(sample["t"]),
                "pid": _PID,
                "tid": _TID,
                "args": dict(sample["args"]),
            }
        )
    return events


def write_chrome_trace(telemetry: Telemetry, path: Union[str, Path]) -> int:
    """Write the trace to ``path`` (one event per line inside a JSON
    array) and return the number of events written."""
    events = chrome_trace_events(telemetry)
    lines = [
        json.dumps(event, sort_keys=True, separators=(",", ":"))
        for event in events
    ]
    Path(path).write_text("[\n" + ",\n".join(lines) + "\n]\n")
    return len(events)
