"""``repro bench`` — the committed perf trajectory.

Each registered :class:`BenchWorkload` runs one full analysis (build →
verify → coverage) over a paper circuit and captures the BDD manager's
cumulative counters.  The counters — nodes created, unique-table probes,
op-cache misses, GC activity — are deterministic for a given engine
version, so they are the *stable* regression signal; wall-clock seconds
ride along as information only.

Baselines live in ``benchmarks/baselines/BENCH_<name>.json`` (schema
:data:`BENCH_SCHEMA`).  ``repro bench --out DIR`` refreshes them;
``repro bench --compare DIR`` re-runs the workloads and fails (exit
non-zero) when a *gated* counter exceeds its baseline by more than the
tolerance, or when the analysis outcome (status / coverage percentage)
drifts at all — coverage results are engine-config-invariant, so any
drift there is a correctness bug, not a perf regression.

Every workload also carries a *backend* dimension (``repro bench
--backend dict,array``): the same analysis on each selected BDD backend.
The ``dict`` backend keeps the historical ``BENCH_<name>.json`` file
names; other backends are suffixed ``BENCH_<name>@<backend>.json``.  The
two shipped backends share memoisation semantics, so their gated counters
must agree — tracking both catches a kernel whose *work* silently
diverges even while its answers stay right.

The comparison allows ``baseline * (1 + tolerance) + ABS_SLACK``: the
relative term absorbs intentional small shifts, the absolute term keeps
tiny counters (a GC count of 2) from tripping on ±1 noise.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # engine imports obs.telemetry — keep this edge lazy
    from ..engine import EngineConfig

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_WORKLOADS",
    "ABS_SLACK",
    "DEFAULT_TOLERANCE",
    "BenchResult",
    "BenchWorkload",
    "baseline_path",
    "compare_result",
    "load_baseline",
    "run_bench",
    "run_workload",
    "write_baseline",
]

#: Schema tag of a ``BENCH_<name>.json`` baseline document.
BENCH_SCHEMA = "repro-bench/v1"

#: Counters the compare gate enforces (everything else is informational).
GATED_COUNTERS = (
    "nodes_created",
    "peak_live_nodes",
    "unique_probes",
    "op_misses",
    "gc_runs",
)

#: Default relative headroom a gated counter may grow before failing.
DEFAULT_TOLERANCE = 0.10

#: Absolute headroom added on top of the relative tolerance, so tiny
#: counters (``gc_runs`` of 2) don't fail on ±1 noise.
ABS_SLACK = 64

#: The op-cache kinds summed into the derived ``op_misses``/``op_hits``.
_OP_KINDS = (
    "ite", "and", "or", "xor", "not",
    "quant", "restrict", "relprod", "compose",
)


#: The backend every baseline without a ``@<backend>`` suffix describes.
DEFAULT_BACKEND = "dict"


@dataclass(frozen=True)
class BenchWorkload:
    """One registered benchmark: a named analysis construction."""

    #: Stable identifier — becomes the ``BENCH_<name>.json`` file name.
    name: str
    #: What the workload exercises (shown by ``repro bench --list``).
    description: str
    #: Builds the analysis to run on the given BDD backend (imports
    #: deferred to run time).
    build: Callable[[str], "object"]


def _builtin(target: str, stage: Optional[str] = None,
             **config_kwargs) -> Callable[[str], "object"]:
    def build(backend: str = DEFAULT_BACKEND):
        from ..analysis import Analysis
        from ..engine import EngineConfig

        config = EngineConfig(backend=backend, **config_kwargs)
        return Analysis.builtin(target, stage=stage, config=config)

    return build


class _SummedManager:
    """Duck-typed BDD manager whose ``resource_stats`` is the sum over
    every real manager a workload actually built."""

    def __init__(self, runs: List[Dict[str, int]]):
        self._runs = runs

    def resource_stats(self) -> Dict[str, int]:
        total: Dict[str, int] = {}
        for stats in self._runs:
            for key, value in stats.items():
                if isinstance(value, int):
                    total[key] = total.get(key, 0) + value
        return total


class _SummedFsm:
    def __init__(self, manager: _SummedManager):
        self.manager = manager


class _ServeCacheRun:
    """The ``serve_cache`` workload: repeated identical requests routed
    through the content-addressed result cache (the ``repro serve`` hot
    path, minus the HTTP layer).

    Only cache *misses* build a real analysis, and the reported counters
    sum over every BDD manager actually created — so with a working
    cache they equal exactly one analysis' worth of engine work, and a
    cache that stops hitting (key instability, eviction bug, broken
    round trip) multiplies the gated counters and fails the compare
    gate.
    """

    #: Identical requests per run; only the first may do engine work.
    REPEATS = 4

    def __init__(self, backend: str):
        from ..engine import EngineConfig

        self.config = EngineConfig(backend=backend)
        self._manager_runs: List[Dict[str, int]] = []
        self.fsm = _SummedFsm(_SummedManager(self._manager_runs))

    def result(self):
        from ..analysis import Analysis, AnalysisResult
        from ..serve.cache import ResultCache
        from ..serve.keys import request_key

        cache = ResultCache(max_entries=8)  # memory tier only
        key = request_key(
            target="queue-wrap", stage="extended", config=self.config
        )
        outcome = None
        for _ in range(self.REPEATS):
            hit = cache.get(key)
            if hit is not None:
                outcome = AnalysisResult.from_json(hit)
                continue
            analysis = Analysis.builtin(
                "queue-wrap", stage="extended", config=self.config
            )
            outcome = analysis.result()
            self._manager_runs.append(analysis.fsm.manager.resource_stats())
            cache.put(key, outcome.to_json())
        return outcome


def _serve_cache() -> Callable[[str], "object"]:
    def build(backend: str = DEFAULT_BACKEND):
        return _ServeCacheRun(backend)

    return build


#: The registered workloads, mirroring the ``benchmarks/test_bench_*``
#: suites: Table-2 circuits under the default engine, the same circuits
#: under a forced-GC policy (resource-manager trajectory), and the
#: monolithic transition relation (partitioning trajectory).
BENCH_WORKLOADS: Dict[str, BenchWorkload] = {
    w.name: w
    for w in (
        BenchWorkload(
            "counter-full",
            "mod-5 counter, full property suite (paper Section 1)",
            _builtin("counter", stage="full"),
        ),
        BenchWorkload(
            "counter-gc-stress",
            "mod-5 counter under a 50-node GC threshold "
            "(forces collections; tracks GC overhead)",
            _builtin("counter", stage="full", gc_threshold=50, gc_growth=1.0),
        ),
        BenchWorkload(
            "buffer-hi",
            "priority buffer, hi-pri count (Circuit 1)",
            _builtin("buffer-hi"),
        ),
        BenchWorkload(
            "buffer-lo-augmented",
            "priority buffer, lo-pri count, augmented suite (Circuit 1)",
            _builtin("buffer-lo", stage="augmented"),
        ),
        BenchWorkload(
            "queue-wrap-extended",
            "circular queue, wrap bit, extended suite (Circuit 2)",
            _builtin("queue-wrap", stage="extended"),
        ),
        BenchWorkload(
            "pipeline-initial",
            "decode pipeline, initial 8-property suite (Circuit 3)",
            _builtin("pipeline", stage="initial"),
        ),
        BenchWorkload(
            "pipeline-mono",
            "decode pipeline under the monolithic transition relation "
            "(partitioning cost trajectory)",
            _builtin("pipeline", stage="initial", trans="mono"),
        ),
        BenchWorkload(
            "serve_cache",
            "repeated identical requests through the repro.serve result "
            "cache (counters = exactly one analysis when the cache works)",
            _serve_cache(),
        ),
    )
}


@dataclass
class BenchResult:
    """One workload's measured run — the in-memory form of a baseline."""

    name: str
    description: str
    config: "EngineConfig"
    #: The BDD backend the workload ran on (a label; also in ``config``).
    backend: str
    #: Analysis outcome — compared exactly (drift is a correctness bug).
    status: str
    percentage: Optional[float]
    #: Integer engine counters, including the derived ``op_misses`` /
    #: ``op_hits`` aggregates.
    counters: Dict[str, int]
    #: Informational only — never gated.
    wall_seconds: float

    @property
    def label(self) -> str:
        """``name`` for the default backend, ``name@backend`` otherwise."""
        if self.backend == DEFAULT_BACKEND:
            return self.name
        return f"{self.name}@{self.backend}"

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": BENCH_SCHEMA,
            "name": self.name,
            "description": self.description,
            "config": self.config.to_json(),
            "backend": self.backend,
            "status": self.status,
            "percentage": self.percentage,
            "counters": dict(self.counters),
            "gated": list(GATED_COUNTERS),
            "wall_seconds": round(self.wall_seconds, 3),
        }


def run_workload(
    workload: BenchWorkload, backend: str = DEFAULT_BACKEND
) -> BenchResult:
    """Run one workload on one backend and capture its counters."""
    t0 = time.perf_counter()
    analysis = workload.build(backend)
    outcome = analysis.result()
    wall = time.perf_counter() - t0
    stats = analysis.fsm.manager.resource_stats()
    counters = {
        key: value for key, value in stats.items() if isinstance(value, int)
    }
    counters["op_misses"] = sum(counters[f"{k}_misses"] for k in _OP_KINDS)
    counters["op_hits"] = sum(counters[f"{k}_hits"] for k in _OP_KINDS)
    return BenchResult(
        name=workload.name,
        description=workload.description,
        config=analysis.config,
        backend=backend,
        status=outcome.status,
        percentage=outcome.percentage,
        counters=counters,
        wall_seconds=wall,
    )


def run_bench(
    names: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
) -> List[BenchResult]:
    """Run the named workloads (all when ``names`` is empty/``None``) on
    each of ``backends`` (default: just the ``dict`` backend).

    Raises :class:`ValueError` for an unknown workload or backend name.
    """
    if not names:
        selected = list(BENCH_WORKLOADS)
    else:
        unknown = sorted(set(names) - set(BENCH_WORKLOADS))
        if unknown:
            raise ValueError(
                f"unknown bench workload(s): {', '.join(unknown)} "
                f"(known: {', '.join(BENCH_WORKLOADS)})"
            )
        selected = list(names)
    if not backends:
        backends = (DEFAULT_BACKEND,)
    else:
        from ..bdd.backends import BACKEND_NAMES

        unknown = sorted(set(backends) - set(BACKEND_NAMES))
        if unknown:
            raise ValueError(
                f"unknown BDD backend(s): {', '.join(unknown)} "
                f"(known: {', '.join(BACKEND_NAMES)})"
            )
    return [
        run_workload(BENCH_WORKLOADS[name], backend)
        for name in selected
        for backend in backends
    ]


# ----------------------------------------------------------------------
# Baseline files
# ----------------------------------------------------------------------


def baseline_path(
    directory: Union[str, Path], name: str, backend: str = DEFAULT_BACKEND
) -> Path:
    """Where workload ``name``'s baseline lives under ``directory``.

    The default (``dict``) backend keeps the historical unsuffixed file
    name, so pre-existing committed baselines stay valid; other backends
    get ``BENCH_<name>@<backend>.json``.
    """
    if backend == DEFAULT_BACKEND:
        return Path(directory) / f"BENCH_{name}.json"
    return Path(directory) / f"BENCH_{name}@{backend}.json"


def write_baseline(result: BenchResult, directory: Union[str, Path]) -> Path:
    """Write ``result`` as its ``BENCH_*.json`` file and return the path."""
    path = baseline_path(directory, result.name, result.backend)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(result.to_json(), indent=2, sort_keys=True) + "\n"
    )
    return path


def load_baseline(path: Union[str, Path]) -> Dict[str, object]:
    """Load and sanity-check one baseline document."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: not a {BENCH_SCHEMA} baseline "
            f"(schema: {data.get('schema') if isinstance(data, dict) else None!r})"
        )
    return data


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------


def compare_result(
    fresh: BenchResult,
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[List[str], List[str]]:
    """Compare a fresh run against its baseline document.

    Returns ``(regressions, notes)``: regressions fail the gate; notes
    (improvements, wall-clock movement) are informational.
    """
    regressions: List[str] = []
    notes: List[str] = []

    if fresh.status != baseline.get("status"):
        regressions.append(
            f"{fresh.name}: status drifted "
            f"{baseline.get('status')!r} -> {fresh.status!r}"
        )
    if fresh.percentage != baseline.get("percentage"):
        regressions.append(
            f"{fresh.name}: coverage drifted "
            f"{baseline.get('percentage')} -> {fresh.percentage} "
            f"(results must be engine-invariant)"
        )

    base_counters = baseline.get("counters", {})
    gated = baseline.get("gated", list(GATED_COUNTERS))
    for key in gated:
        base = base_counters.get(key)
        new = fresh.counters.get(key)
        if base is None or new is None:
            regressions.append(
                f"{fresh.name}: gated counter {key!r} missing "
                f"(baseline: {base}, fresh: {new})"
            )
            continue
        allowed = base * (1.0 + tolerance) + ABS_SLACK
        if new > allowed:
            regressions.append(
                f"{fresh.name}: {key} regressed {base} -> {new} "
                f"(allowed <= {allowed:.0f} at tolerance {tolerance:.0%})"
            )
        elif new < base * (1.0 - tolerance) - ABS_SLACK:
            notes.append(
                f"{fresh.name}: {key} improved {base} -> {new} "
                f"(consider refreshing the baseline)"
            )

    base_wall = baseline.get("wall_seconds")
    if isinstance(base_wall, (int, float)):
        notes.append(
            f"{fresh.name}: wall {base_wall:.2f}s -> "
            f"{fresh.wall_seconds:.2f}s (informational)"
        )
    return regressions, notes
