"""Phase spans and counter snapshots — the recording half of `repro.obs`.

A :class:`Telemetry` collects two kinds of record while an analysis runs:

* **Spans** — named, nestable phases (``parse``, ``reachability``,
  ``verify`` ...).  Entering a span snapshots the attached BDD manager's
  :meth:`~repro.bdd.manager.BDDManager.resource_stats`; leaving it stores
  the per-counter delta on the span, so every phase carries the paper's
  "BDD nodes - time" cost pair plus the full op-counter breakdown.
* **Events** — instantaneous samples inside a span, e.g. the frontier
  size per reachability iteration.

Recording is *observationally inert* by construction: spans and events
only read counters and timestamps; they never create BDD nodes or touch
the operation caches.  The engine therefore produces byte-identical
verdicts, coverage numbers and traces whether telemetry is on or off.

Levels
------
``"off"``
    Record nothing.  :data:`NULL_TELEMETRY` is the shared no-op instance
    every engine object defaults to; its ``span()`` returns a reusable
    null context, so instrumented code pays one attribute load and one
    method call per phase.
``"counters"``
    No spans/events, but :meth:`Telemetry.metrics` reports the manager's
    cumulative counters (the cheap always-useful block for JSON reports).
``"spans"``
    Full phase spans with counter deltas and frontier events.

The manager may be attached *after* spans have started (the ``parse``
phase runs before a manager exists).  A span whose start predates the
manager treats its start snapshot as all-zero — correct, because a fresh
manager's counters start at zero.

    >>> t = Telemetry("spans")
    >>> with t.span("outer"):
    ...     with t.span("inner", detail="x"):
    ...         t.event("sample", value=1)
    >>> [(s.name, s.depth) for s in t.spans]
    [('outer', 0), ('inner', 1)]
    >>> t.events[0]["name"], t.events[0]["span"]
    ('sample', 1)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError

__all__ = [
    "METRICS_SCHEMA",
    "NULL_TELEMETRY",
    "TELEMETRY_COUNTERS",
    "TELEMETRY_LEVELS",
    "TELEMETRY_OFF",
    "TELEMETRY_SPANS",
    "Span",
    "Telemetry",
    "format_profile",
]

#: Schema tag of the ``metrics`` block emitted into analysis/suite JSON.
METRICS_SCHEMA = "repro-metrics/v1"

#: Record nothing (the default).
TELEMETRY_OFF = "off"
#: Cumulative manager counters only — no spans or events.
TELEMETRY_COUNTERS = "counters"
#: Full phase spans with counter deltas and frontier events.
TELEMETRY_SPANS = "spans"
#: The valid telemetry levels, in increasing order of detail.
TELEMETRY_LEVELS = (TELEMETRY_OFF, TELEMETRY_COUNTERS, TELEMETRY_SPANS)


@dataclass
class Span:
    """One recorded phase: name, position in the tree, cost."""

    #: Phase name (``parse``, ``reachability``, ``verify`` ...).
    name: str
    #: Position in :attr:`Telemetry.spans` (start order, depth-first).
    index: int
    #: Index of the enclosing span, or ``None`` at top level.
    parent: Optional[int]
    #: Nesting depth (0 = top level).
    depth: int
    #: Caller-supplied labels (e.g. ``property="AG p"``) — JSON-safe.
    attrs: Dict[str, object]
    #: Start time in seconds relative to the telemetry's epoch.
    t_start: float
    #: Wall-clock duration; filled when the span closes.
    seconds: float = 0.0
    #: Per-counter ``resource_stats`` delta across the span; filled when
    #: the span closes (empty when no manager ever attached).
    counters: Dict[str, float] = field(default_factory=dict)

    def label(self) -> str:
        """The name plus a short attr suffix for human-facing tables."""
        if not self.attrs:
            return self.name
        detail = " ".join(str(v) for v in self.attrs.values())
        if len(detail) > 48:
            detail = detail[:45] + "..."
        return f"{self.name} [{detail}]"

    def to_json(self) -> Dict[str, object]:
        counters = {
            key: (round(value, 6) if isinstance(value, float) else value)
            for key, value in self.counters.items()
        }
        return {
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "attrs": dict(self.attrs),
            "seconds": round(self.seconds, 6),
            "counters": counters,
        }


class _NullSpanContext:
    """Reusable no-op context — what ``span()`` returns when disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Live span context: snapshots counters on enter, deltas on exit."""

    __slots__ = ("_telemetry", "_name", "_attrs", "_span", "_snap0", "_t0")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: Dict):
        self._telemetry = telemetry
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        t = self._telemetry
        span = Span(
            name=self._name,
            index=len(t.spans),
            parent=t._stack[-1] if t._stack else None,
            depth=len(t._stack),
            attrs=self._attrs,
            t_start=time.perf_counter() - t._epoch,
        )
        t.spans.append(span)
        t._stack.append(span.index)
        self._span = span
        self._snap0 = t._snapshot()
        self._t0 = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        t = self._telemetry
        span = self._span
        span.seconds = time.perf_counter() - self._t0
        end = t._snapshot()
        if end is not None:
            start = self._snap0
            span.counters = {
                key: (value - start[key] if start is not None else value)
                for key, value in end.items()
            }
        if t._stack and t._stack[-1] == span.index:
            t._stack.pop()
        elif span.index in t._stack:  # misnested exit: unwind to our frame
            del t._stack[t._stack.index(span.index):]
        return False


class Telemetry:
    """A recording of one analysis run.

    Create one per analysis (or via :meth:`from_level`, which returns the
    shared :data:`NULL_TELEMETRY` for level ``"off"``), attach the BDD
    manager once it exists, and wrap phases in :meth:`span`.
    """

    def __init__(self, level: str = TELEMETRY_SPANS, manager=None):
        if level not in TELEMETRY_LEVELS:
            raise ConfigError(
                f"unknown telemetry level {level!r} "
                f"(valid levels: {', '.join(TELEMETRY_LEVELS)})"
            )
        self.level = level
        self.manager = manager
        #: Closed and open spans, in start order.
        self.spans: List[Span] = []
        #: Instantaneous samples: ``{"name", "t", "span", "args"}``.
        self.events: List[Dict[str, object]] = []
        self._stack: List[int] = []
        self._epoch = time.perf_counter()

    @classmethod
    def from_level(cls, level: str) -> "Telemetry":
        """The telemetry for a config's ``telemetry`` knob — the shared
        no-op instance when ``level`` is ``"off"``."""
        if level == TELEMETRY_OFF:
            return NULL_TELEMETRY
        return cls(level)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether this telemetry records anything at all."""
        return self.level != TELEMETRY_OFF

    @property
    def spans_enabled(self) -> bool:
        """Whether spans/events are recorded (level ``"spans"``)."""
        return self.level == TELEMETRY_SPANS

    def attach(self, manager) -> None:
        """Bind the BDD manager whose counters spans snapshot.  The first
        manager wins; spans opened before attachment delta from zero."""
        if self.manager is None:
            self.manager = manager

    def span(self, name: str, **attrs):
        """A context manager recording ``name`` as a phase.  ``attrs``
        label the span (JSON-safe values only).  No-op below level
        ``"spans"``."""
        if self.level != TELEMETRY_SPANS:
            return _NULL_SPAN_CONTEXT
        return _SpanContext(self, name, attrs)

    def event(self, name: str, **args) -> None:
        """Record an instantaneous sample (e.g. one fixpoint iteration's
        frontier size) under the innermost open span."""
        if self.level != TELEMETRY_SPANS:
            return
        self.events.append(
            {
                "name": name,
                "t": time.perf_counter() - self._epoch,
                "span": self._stack[-1] if self._stack else None,
                "args": args,
            }
        )

    def record_span(
        self, name: str, seconds: float, **attrs
    ) -> Optional[Span]:
        """Record an externally timed, already-closed span.

        The suite's shard executor uses this: shard work runs in another
        process whose BDD manager this telemetry can never snapshot, so
        the worker measures its own wall time and the parent records the
        finished span here.  No counter deltas are attached (there is no
        local manager activity to delta); ``attrs`` label the span
        exactly like :meth:`span`'s.  No-op below level ``"spans"``.
        """
        if self.level != TELEMETRY_SPANS:
            return None
        span = Span(
            name=name,
            index=len(self.spans),
            parent=self._stack[-1] if self._stack else None,
            depth=len(self._stack),
            attrs=attrs,
            t_start=max(0.0, time.perf_counter() - self._epoch - seconds),
            seconds=seconds,
        )
        self.spans.append(span)
        return span

    def _snapshot(self) -> Optional[Dict[str, float]]:
        if self.manager is None:
            return None
        return self.manager.resource_stats()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def metrics(self) -> Dict[str, object]:
        """The JSON-safe ``metrics`` block for analysis/suite reports.

        Always carries the manager's cumulative counters; at level
        ``"spans"`` also the span tree and events.  Timing keys are
        exactly ``seconds`` / ``gc_seconds`` / ``t`` so report consumers
        can strip wall-clock noise uniformly.
        """
        counters = self._snapshot() or {}
        data: Dict[str, object] = {
            "schema": METRICS_SCHEMA,
            "level": self.level,
            "counters": {
                key: (round(value, 6) if isinstance(value, float) else value)
                for key, value in counters.items()
            },
        }
        if self.spans_enabled:
            data["spans"] = [span.to_json() for span in self.spans]
            data["events"] = [
                {
                    "name": ev["name"],
                    "t": round(ev["t"], 6),
                    "span": ev["span"],
                    "args": dict(ev["args"]),
                }
                for ev in self.events
            ]
        return data


class NullTelemetry(Telemetry):
    """The always-off telemetry: records nothing, costs one method call.

    A real subclass (not just ``Telemetry("off")``) so the hot-path
    methods are unconditional no-ops and the instance is safely shared
    engine-wide.
    """

    def __init__(self):
        super().__init__(TELEMETRY_OFF)

    def attach(self, manager) -> None:
        pass

    def span(self, name: str, **attrs):
        return _NULL_SPAN_CONTEXT

    def event(self, name: str, **args) -> None:
        pass

    def metrics(self) -> Dict[str, object]:
        return {"schema": METRICS_SCHEMA, "level": TELEMETRY_OFF, "counters": {}}


#: The shared no-op telemetry every engine object defaults to.
NULL_TELEMETRY = NullTelemetry()


# ----------------------------------------------------------------------
# The --profile table
# ----------------------------------------------------------------------


def _format_nodes(count: float) -> str:
    """Node counts in the paper's style: ``946k`` above a thousand."""
    count = int(count)
    if count >= 1000:
        return f"{count / 1000:.0f}k"
    return str(count)


def format_profile(telemetry: Telemetry) -> str:
    """Render the recorded spans as the paper's "nodes - time" table.

    One row per phase, indented by nesting depth; the trailing ``total``
    row reports the manager's cumulative node allocation and the summed
    top-level phase time.
    """
    if not telemetry.spans:
        return (
            f"no phase spans recorded (telemetry level: {telemetry.level}; "
            f"run with telemetry level 'spans')"
        )
    rows: List[Tuple[str, str]] = []
    for span in telemetry.spans:
        label = "  " * span.depth + span.label()
        nodes = span.counters.get("nodes_created", 0)
        rows.append((label, f"{_format_nodes(nodes)} - {span.seconds:.2f}s"))
    totals = telemetry._snapshot() or {}
    total_nodes = totals.get("nodes_created", 0)
    total_seconds = sum(s.seconds for s in telemetry.spans if s.depth == 0)
    rows.append(
        ("total", f"{_format_nodes(total_nodes)} - {total_seconds:.2f}s")
    )
    width = max(len(label) for label, _ in rows)
    width = max(width, len("phase"))
    lines = [f"{'phase':<{width}}  cost (nodes - time)"]
    lines.extend(f"{label:<{width}}  {cost}" for label, cost in rows)
    return "\n".join(lines)
