"""Process-global named counters — the lightweight side of `repro.obs`.

:class:`~repro.obs.telemetry.Telemetry` records per-run phase spans tied
to one BDD manager; some signals are *process*-scoped instead: how many
times the ``.rml`` parser ran, how often the serving cache hit or missed.
This module is that registry: a flat, thread-safe mapping of dotted
counter names to integers, increment-only, readable as one snapshot.

Counting is observationally inert (an integer add under a lock) and the
registry is never consulted by engine code, so results are byte-identical
whether anything reads it or not.  Consumers:

* :func:`repro.lang.parser.parse_module` increments ``lang.parse_module``
  per parse — the server's dedup/memo tests use its delta to prove that
  collapsed identical requests are parsed once, not N times.
* :class:`repro.serve.cache.ResultCache` mirrors its hit/miss/eviction
  stats here, so ``GET /v1/stats`` and any other ``repro-metrics/v1``
  emitter can report them without holding the cache instance.

    >>> from repro.obs.counters import counter_delta, counter_inc
    >>> with counter_delta("doctest.example") as delta:
    ...     counter_inc("doctest.example")
    ...     counter_inc("doctest.example", 2)
    >>> delta()
    3
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Optional

__all__ = [
    "counter_delta",
    "counter_inc",
    "counter_value",
    "counters_snapshot",
]

_LOCK = threading.Lock()
_COUNTERS: Dict[str, int] = {}


def counter_inc(name: str, amount: int = 1) -> None:
    """Add ``amount`` to the counter ``name`` (created at 0 on first use)."""
    with _LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0) + amount


def counter_value(name: str) -> int:
    """The current value of ``name`` (0 if it never incremented)."""
    with _LOCK:
        return _COUNTERS.get(name, 0)


def counters_snapshot(prefix: Optional[str] = None) -> Dict[str, int]:
    """A point-in-time copy of every counter (optionally ``prefix``-filtered).

    Counters are process-cumulative, never reset: consumers that need a
    window (tests, stats endpoints) difference two snapshots instead of
    resetting shared state under other readers.
    """
    with _LOCK:
        if prefix is None:
            return dict(_COUNTERS)
        return {k: v for k, v in _COUNTERS.items() if k.startswith(prefix)}


@contextmanager
def counter_delta(name: str):
    """Context manager yielding a callable that reports how much ``name``
    grew since entry — the idiomatic test-side window over a cumulative
    counter."""
    start = counter_value(name)
    yield lambda: counter_value(name) - start
