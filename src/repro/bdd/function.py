"""User-facing BDD function wrapper with operator overloading.

:class:`Function` pairs a node id with its owning manager and provides the
Boolean algebra (`&`, `|`, `~`, `^`, :meth:`implies`, :meth:`iff`), set-style
helpers (:meth:`diff`, :meth:`subseteq`) and quantification in a form that
reads like the paper's set equations, e.g.::

    covered = (t_b & depend).diff(dont_care)
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

from ..errors import BDDError
from .manager import FALSE, TRUE, BDDManager


class Function:
    """A Boolean function (equivalently, a set of states) in a manager.

    Instances are immutable value objects; all operators return new
    instances.  Equality is structural: two functions are equal iff they are
    the same node in the same manager (canonical by ROBDD reduction).
    """

    __slots__ = ("manager", "node", "__weakref__")

    def __init__(self, manager: BDDManager, node: int):
        self.manager = manager
        self.node = node
        manager.register_external(self)
        # Wrapper creation is the engine's *safe point*: the freshly wrapped
        # result is now GC-rooted and no raw-node traversal is in flight, so
        # the resource manager may collect / evict / reorder here.
        manager.checkpoint()

    # -- constructors ---------------------------------------------------

    @classmethod
    def true(cls, manager: BDDManager) -> "Function":
        """The constant-true function (the full state set)."""
        return cls(manager, TRUE)

    @classmethod
    def false(cls, manager: BDDManager) -> "Function":
        """The constant-false function (the empty state set)."""
        return cls(manager, FALSE)

    @classmethod
    def var(cls, manager: BDDManager, name: str) -> "Function":
        """The positive literal of variable ``name``."""
        return cls(manager, manager.var(name))

    # -- predicates -----------------------------------------------------

    def is_true(self) -> bool:
        """Whether this is the constant TRUE function."""
        return self.node == TRUE

    def is_false(self) -> bool:
        """Whether this is the constant FALSE function (empty set)."""
        return self.node == FALSE

    def __bool__(self) -> bool:
        raise TypeError(
            "Function truthiness is ambiguous; use is_true()/is_false() or "
            "compare with =="
        )

    # -- algebra ----------------------------------------------------------

    def _coerce(self, other: "Function") -> int:
        if not isinstance(other, Function):
            raise TypeError(f"expected Function, got {type(other).__name__}")
        if other.manager is not self.manager:
            raise BDDError("cannot combine functions from different managers")
        return other.node

    def __and__(self, other: "Function") -> "Function":
        return Function(self.manager, self.manager.apply_and(self.node, self._coerce(other)))

    def __or__(self, other: "Function") -> "Function":
        return Function(self.manager, self.manager.apply_or(self.node, self._coerce(other)))

    def __xor__(self, other: "Function") -> "Function":
        return Function(self.manager, self.manager.apply_xor(self.node, self._coerce(other)))

    def __invert__(self) -> "Function":
        return Function(self.manager, self.manager.apply_not(self.node))

    def implies(self, other: "Function") -> "Function":
        """Logical implication ``self -> other``."""
        return Function(
            self.manager, self.manager.apply_implies(self.node, self._coerce(other))
        )

    def iff(self, other: "Function") -> "Function":
        """Logical equivalence ``self <-> other``."""
        return Function(
            self.manager, self.manager.apply_iff(self.node, self._coerce(other))
        )

    def ite(self, then: "Function", other: "Function") -> "Function":
        """If-then-else with ``self`` as the condition."""
        return Function(
            self.manager,
            self.manager.ite(self.node, self._coerce(then), self._coerce(other)),
        )

    def diff(self, other: "Function") -> "Function":
        """Set difference ``self & ~other``."""
        return Function(
            self.manager, self.manager.apply_diff(self.node, self._coerce(other))
        )

    def subseteq(self, other: "Function") -> bool:
        """Whether ``self`` implies ``other`` (set inclusion)."""
        return self.manager.apply_diff(self.node, self._coerce(other)) == FALSE

    def intersects(self, other: "Function") -> bool:
        """Whether the two sets share at least one state."""
        return self.manager.apply_and(self.node, self._coerce(other)) != FALSE

    # -- quantification / substitution ------------------------------------

    def exist(self, variables: Sequence[int]) -> "Function":
        """Existentially quantify the given variable ids."""
        return Function(self.manager, self.manager.exists(self.node, variables))

    def forall(self, variables: Sequence[int]) -> "Function":
        """Universally quantify the given variable ids."""
        return Function(self.manager, self.manager.forall(self.node, variables))

    def and_exists(self, other: "Function", variables: Sequence[int]) -> "Function":
        """Relational product: ``exists variables . (self & other)``."""
        return Function(
            self.manager,
            self.manager.and_exists(self.node, self._coerce(other), variables),
        )

    def and_exists_chain(
        self, steps: Sequence[Tuple["Function", Sequence[int]]]
    ) -> "Function":
        """Scheduled multi-conjunct relational product.

        ``steps`` is a sequence of ``(conjunct, variables)`` pairs; the
        result is ``exists (all scheduled variables) . (self & AND of all
        conjuncts)`` provided the schedule is legal (no variable quantified
        before its last conjunct — see
        :meth:`repro.bdd.manager.BDDManager.and_exists_chain`).
        """
        raw = [(self._coerce(g), list(variables)) for g, variables in steps]
        return Function(
            self.manager, self.manager.and_exists_chain(self.node, raw)
        )

    def restrict(self, var: int, value: bool) -> "Function":
        """Cofactor with variable id ``var`` fixed to ``value``."""
        return Function(self.manager, self.manager.restrict(self.node, var, value))

    def compose(self, substitution: Dict[int, "Function"]) -> "Function":
        """Simultaneously substitute functions for variable ids."""
        raw = {var: self._coerce(g) for var, g in substitution.items()}
        return Function(self.manager, self.manager.compose_many(self.node, raw))

    def rename(self, mapping: Dict[int, int]) -> "Function":
        """Rename variables ``{old id -> new id}``."""
        return Function(self.manager, self.manager.rename(self.node, mapping))

    # -- inspection -------------------------------------------------------

    def satcount(self, variables: Optional[Sequence[int]] = None) -> int:
        """Number of satisfying assignments over ``variables``."""
        return self.manager.satcount(self.node, variables)

    def support(self) -> Sequence[int]:
        """Variable ids this function depends on."""
        return self.manager.support(self.node)

    def support_names(self) -> Sequence[str]:
        """Names of the variables this function depends on."""
        return [self.manager.var_name(v) for v in self.manager.support(self.node)]

    def iter_cubes(self) -> Iterator[Dict[int, bool]]:
        """Iterate over the cubes (paths to TRUE) of this function."""
        return self.manager.iter_cubes(self.node)

    def iter_sat(self, variables: Sequence[int]) -> Iterator[Dict[int, bool]]:
        """Iterate over complete satisfying assignments over ``variables``."""
        return self.manager.iter_sat(self.node, variables)

    def pick_sat(self, variables: Sequence[int]) -> Optional[Dict[int, bool]]:
        """Return one satisfying assignment or ``None``."""
        return self.manager.pick_sat(self.node, variables)

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """Evaluate under a complete assignment ``{var id: bool}``."""
        return self.manager.eval_node(self.node, assignment)

    def size(self) -> int:
        """Number of DAG nodes (a measure of symbolic complexity)."""
        return self.manager.size(self.node)

    # -- dunder ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Function)
            and other.manager is self.manager
            and other.node == self.node
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.node == TRUE:
            return "<Function TRUE>"
        if self.node == FALSE:
            return "<Function FALSE>"
        return f"<Function node={self.node} size={self.size()}>"
