"""A self-contained reduced ordered binary decision diagram (ROBDD) engine.

This module provides the symbolic substrate that the DAC'99 coverage paper
gets from SMV's BDD package: hash-consed nodes, the ``ite`` operator with
memoisation, specialised binary operators, existential/universal
quantification, relational products (``and_exists``), functional composition,
variable renaming, satisfying-assignment counting and enumeration.

Nodes are integers indexing three parallel arrays (level, low, high); the two
terminals are the reserved node ids ``0`` (FALSE) and ``1`` (TRUE).  Nodes
store *levels* rather than variable ids so that variable reordering can swap
adjacent levels in place without invalidating outstanding node references
(see :mod:`repro.bdd.reorder`).

Every traversal in this module is **iterative** (explicit work stacks), so
the engine's depth limit is available memory, not Python's recursion limit:
a 1400-level BDD chain is as routine as a 14-level one.  Resource usage is
governed by a :class:`~repro.bdd.policy.ResourcePolicy`: automatic
mark-and-sweep collection and cache eviction run at *safe points* (see
:meth:`BDDManager.checkpoint`), never in the middle of an operation.

The user-facing wrapper with operator overloading lives in
:mod:`repro.bdd.function`; this module works on raw node ids and is the
layer the FSM/model-checking code talks to for performance.
"""

from __future__ import annotations

import time
import weakref
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import BDDError
from .policy import DEFAULT_POLICY, ResourcePolicy

#: Pseudo-level assigned to the two terminal nodes; orders after any variable.
TERMINAL_LEVEL = 1 << 30

#: Reserved node ids for the constant functions.
FALSE = 0
TRUE = 1

# Tags used to keep the shared binary-op cache collision free.
_OP_AND = 0
_OP_OR = 1
_OP_XOR = 2

# Frame phases of the iterative relational product.
_AE_EXPAND = 0
_AE_AFTER_LOW = 1
_AE_AFTER_HIGH = 2
_AE_AFTER_BOTH = 3


class BDDManager:
    """Owner of a shared ROBDD node store and its operation caches.

    All functions created through one manager may be freely combined; mixing
    nodes from different managers is an error (checked by the high-level
    :class:`~repro.bdd.function.Function` wrapper).

    Parameters
    ----------
    var_names:
        Optional initial variable names, declared in order (first name gets
        the topmost level).
    policy:
        Resource-management thresholds (automatic GC, cache caps, the
        auto-sift hook).  Defaults to
        :data:`~repro.bdd.policy.DEFAULT_POLICY`.
    """

    def __init__(
        self,
        var_names: Optional[Iterable[str]] = None,
        policy: Optional[ResourcePolicy] = None,
    ):
        # Parallel node arrays; slots 0/1 are the terminals.  The terminal
        # low/high fields are never read but keep the arrays aligned.
        self._level: List[int] = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self._low: List[int] = [FALSE, TRUE]
        self._high: List[int] = [FALSE, TRUE]
        # Hash-consing table: (level, low, high) -> node id.
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Recycled node slots (filled by collect_garbage).
        self._free: List[int] = []

        # Variable bookkeeping.  A "variable" is a stable integer id; its
        # position in the order is a "level".  Initially id == level.
        self._var_names: List[str] = []
        self._name_to_var: Dict[str, int] = {}
        self._var2level: List[int] = []
        self._level2var: List[int] = []

        # Operation caches.
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._bin_cache: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._quant_cache: Dict[Tuple[int, int, int], int] = {}
        self._relprod_cache: Dict[Tuple[int, int, int], int] = {}
        self._compose_cache: Dict[Tuple[int, int], int] = {}
        self._compose_token = 0
        self._compose_purged_token = 0
        self._compose_max_level = -1
        # Registered quantification profiles: canonical tuple of levels -> id.
        self._quant_profiles: Dict[Tuple[int, ...], int] = {}
        self._quant_profile_sets: List[frozenset] = []
        self._quant_profile_max: List[int] = []

        # Live external references (Function wrappers), for garbage marking.
        # Keyed by wrapper *identity*: Function equality is structural (two
        # wrappers for the same node compare equal), so a WeakSet would
        # collapse equal wrappers into one entry and drop the root when the
        # stored one died — recycling nodes a live wrapper still denotes.
        self._external: Dict[int, "weakref.ref"] = {}
        # Nodes pinned by in-flight enumerations (node -> pin count): cube
        # iterators hold raw node ids across yields, so their roots must
        # survive any GC a consumer triggers between items.
        self._pinned: Dict[int, int] = {}

        # Resource management.
        self.policy: ResourcePolicy = policy if policy is not None else DEFAULT_POLICY
        self._gc_trigger = self.policy.gc_node_threshold
        self._reorder_trigger = self.policy.reorder_node_threshold
        self._in_checkpoint = False

        # Statistics.
        self._created_nodes = 2
        self._gc_runs = 0
        self._gc_seconds = 0.0
        self._gc_freed_total = 0
        self._reorder_runs = 0
        self._peak_nodes = 2

        # Op-level telemetry counters (see :meth:`resource_stats`).  All of
        # them measure *work*, never results: they are deterministic for a
        # given operation sequence, monotone, and cheap (one or two integer
        # increments on the paths they instrument).  Hits/misses count
        # op-cache probes per operation kind; binary ops share one cache and
        # are split by the op tag.
        self._ite_hits = 0
        self._ite_misses = 0
        self._bin_hits = [0, 0, 0]  # indexed by _OP_AND/_OP_OR/_OP_XOR
        self._bin_misses = [0, 0, 0]
        self._not_hits = 0
        self._not_misses = 0
        self._quant_hits = 0
        self._quant_misses = 0
        self._restrict_hits = 0
        self._restrict_misses = 0
        self._relprod_hits = 0
        self._relprod_misses = 0
        self._compose_hits = 0
        self._compose_misses = 0
        # Unique-table (hash-consing) pressure: probes are _mk lookups that
        # reached the table (the reduce rule short-circuits before probing);
        # hits found an existing node, so probes - hits == nodes created.
        self._unique_probes = 0
        self._unique_hits = 0
        # Relational-product chain shape (and_exists_chain schedules).
        self._chain_runs = 0
        self._chain_steps = 0
        self._chain_max_len = 0

        if var_names is not None:
            for name in var_names:
                self.add_var(name)

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------

    def add_var(self, name: str) -> int:
        """Declare a new variable at the bottom of the order; return its id."""
        if name in self._name_to_var:
            raise BDDError(f"variable {name!r} already declared")
        var = len(self._var_names)
        self._var_names.append(name)
        self._name_to_var[name] = var
        self._var2level.append(len(self._level2var))
        self._level2var.append(var)
        return var

    def var_id(self, name: str) -> int:
        """Return the variable id for ``name`` (raises if undeclared)."""
        try:
            return self._name_to_var[name]
        except KeyError:
            raise BDDError(f"unknown variable {name!r}") from None

    def var_name(self, var: int) -> str:
        """Return the declared name of variable id ``var``."""
        return self._var_names[var]

    def var_level(self, var: int) -> int:
        """Current level (order position) of variable id ``var``."""
        return self._var2level[var]

    def level_var(self, level: int) -> int:
        """Variable id currently sitting at ``level``."""
        return self._level2var[level]

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    @property
    def var_names(self) -> List[str]:
        """Names of all declared variables in declaration order."""
        return list(self._var_names)

    def current_order(self) -> List[str]:
        """Variable names from top level to bottom level."""
        return [self._var_names[v] for v in self._level2var]

    def var(self, name: str) -> int:
        """Return the node for the positive literal of variable ``name``."""
        var = self._name_to_var.get(name)
        if var is None:
            var = self.add_var(name)
        return self._mk(self._var2level[var], FALSE, TRUE)

    def nvar(self, name: str) -> int:
        """Return the node for the negative literal of variable ``name``."""
        var = self._name_to_var.get(name)
        if var is None:
            var = self.add_var(name)
        return self._mk(self._var2level[var], TRUE, FALSE)

    # ------------------------------------------------------------------
    # Node primitives
    # ------------------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (the reduce rule)."""
        if low == high:
            return low
        key = (level, low, high)
        self._unique_probes += 1
        node = self._unique.get(key)
        if node is not None:
            self._unique_hits += 1
            return node
        if self._free:
            node = self._free.pop()
            self._level[node] = level
            self._low[node] = low
            self._high[node] = high
        else:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
        self._unique[key] = node
        self._created_nodes += 1
        return node

    def level_of(self, node: int) -> int:
        """Level of ``node`` (``TERMINAL_LEVEL`` for constants)."""
        return self._level[node]

    def low_of(self, node: int) -> int:
        """Low (else) child of ``node``."""
        return self._low[node]

    def high_of(self, node: int) -> int:
        """High (then) child of ``node``."""
        return self._high[node]

    def node_count(self) -> int:
        """Number of live (non-recycled) nodes including terminals."""
        return len(self._level) - len(self._free)

    @property
    def created_nodes(self) -> int:
        """Total number of nodes ever created (a work measure, akin to the
        paper's "BDD nodes" column in Table 2)."""
        return self._created_nodes

    def size(self, node: int) -> int:
        """Number of DAG nodes reachable from ``node`` (including terminals)."""
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if n > TRUE:
                stack.append(self._low[n])
                stack.append(self._high[n])
        return len(seen)

    # ------------------------------------------------------------------
    # Core operators
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f & g) | (~f & h)``, the universal connective."""
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high
        cache = self._ite_cache
        hits = misses = 0
        tasks: List[Tuple[int, int, int, bool]] = [(f, g, h, False)]
        results: List[int] = []
        while tasks:
            f, g, h, combine = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                level = min(level_arr[f], level_arr[g], level_arr[h])
                result = self._mk(level, low, high)
                cache[(f, g, h)] = result
                results.append(result)
                continue
            if f == TRUE:
                results.append(g)
                continue
            if f == FALSE:
                results.append(h)
                continue
            if g == h:
                results.append(g)
                continue
            if g == TRUE and h == FALSE:
                results.append(f)
                continue
            cached = cache.get((f, g, h))
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            level = min(level_arr[f], level_arr[g], level_arr[h])
            if level_arr[f] == level:
                f0, f1 = low_arr[f], high_arr[f]
            else:
                f0 = f1 = f
            if level_arr[g] == level:
                g0, g1 = low_arr[g], high_arr[g]
            else:
                g0 = g1 = g
            if level_arr[h] == level:
                h0, h1 = low_arr[h], high_arr[h]
            else:
                h0 = h1 = h
            tasks.append((f, g, h, True))
            tasks.append((f1, g1, h1, False))
            tasks.append((f0, g0, h0, False))
        self._ite_hits += hits
        self._ite_misses += misses
        return results[0]

    def apply_not(self, f: int) -> int:
        """Negation (O(size) without complement edges, memoised)."""
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        cache = self._not_cache
        cached = cache.get(f)
        if cached is not None:
            self._not_hits += 1
            return cached
        level_arr = self._level
        hits = misses = 0
        tasks: List[Tuple[int, bool]] = [(f, False)]
        results: List[int] = []
        while tasks:
            f, combine = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                result = self._mk(level_arr[f], low, high)
                cache[f] = result
                # Negation is an involution: seed the reverse direction too.
                cache[result] = f
                results.append(result)
                continue
            if f == FALSE:
                results.append(TRUE)
                continue
            if f == TRUE:
                results.append(FALSE)
                continue
            cached = cache.get(f)
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            tasks.append((f, True))
            tasks.append((self._high[f], False))
            tasks.append((self._low[f], False))
        self._not_hits += hits
        self._not_misses += misses
        return results[0]

    def _apply_bin(self, op: int, f: int, g: int) -> int:
        """Iterative core shared by the three memoised binary operators."""
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high
        cache = self._bin_cache
        hits = misses = 0
        tasks: List[Tuple[int, int, bool]] = [(f, g, False)]
        results: List[int] = []
        while tasks:
            f, g, combine = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                lf, lg = level_arr[f], level_arr[g]
                result = self._mk(lf if lf < lg else lg, low, high)
                cache[(op, f, g)] = result
                results.append(result)
                continue
            # Operator-specific terminal cases (same rules as the classic
            # recursive formulation).
            if op == _OP_AND:
                if f == FALSE or g == FALSE:
                    results.append(FALSE)
                    continue
                if f == TRUE:
                    results.append(g)
                    continue
                if g == TRUE or f == g:
                    results.append(f)
                    continue
            elif op == _OP_OR:
                if f == TRUE or g == TRUE:
                    results.append(TRUE)
                    continue
                if f == FALSE:
                    results.append(g)
                    continue
                if g == FALSE or f == g:
                    results.append(f)
                    continue
            else:  # _OP_XOR
                if f == g:
                    results.append(FALSE)
                    continue
                if f == FALSE:
                    results.append(g)
                    continue
                if g == FALSE:
                    results.append(f)
                    continue
                if f == TRUE:
                    results.append(self.apply_not(g))
                    continue
                if g == TRUE:
                    results.append(self.apply_not(f))
                    continue
            if f > g:  # commutativity-normalised cache
                f, g = g, f
            cached = cache.get((op, f, g))
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            lf, lg = level_arr[f], level_arr[g]
            level = lf if lf < lg else lg
            if lf == level:
                f0, f1 = low_arr[f], high_arr[f]
            else:
                f0 = f1 = f
            if lg == level:
                g0, g1 = low_arr[g], high_arr[g]
            else:
                g0 = g1 = g
            tasks.append((f, g, True))
            tasks.append((f1, g1, False))
            tasks.append((f0, g0, False))
        self._bin_hits[op] += hits
        self._bin_misses[op] += misses
        return results[0]

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction with a commutativity-normalised cache."""
        return self._apply_bin(_OP_AND, f, g)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction with a commutativity-normalised cache."""
        return self._apply_bin(_OP_OR, f, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self._apply_bin(_OP_XOR, f, g)

    def apply_iff(self, f: int, g: int) -> int:
        """Equivalence ``f <-> g``."""
        return self.apply_not(self.apply_xor(f, g))

    def apply_implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self.apply_or(self.apply_not(f), g)

    def apply_diff(self, f: int, g: int) -> int:
        """Set difference ``f & ~g`` (reads naturally on state sets)."""
        return self.apply_and(f, self.apply_not(g))

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------

    def _quant_profile(self, variables: Iterable[int]) -> int:
        """Intern a set of variables to quantify as a small profile id.

        Image computations quantify the same variable sets over and over;
        interning keeps the quantification cache keys small and hashable.
        Profiles are expressed in *levels* and therefore invalidated (cleared)
        by reordering.
        """
        levels = tuple(sorted(self._var2level[v] for v in variables))
        profile = self._quant_profiles.get(levels)
        if profile is None:
            profile = len(self._quant_profile_sets)
            self._quant_profiles[levels] = profile
            self._quant_profile_sets.append(frozenset(levels))
            self._quant_profile_max.append(max(levels) if levels else -1)
        return profile

    def exists(self, f: int, variables: Sequence[int]) -> int:
        """Existential quantification of ``variables`` (ids) out of ``f``."""
        if not variables:
            return f
        return self._exists_profile(f, self._quant_profile(variables))

    def _quantify_profile(self, f: int, profile: int, disjunctive: bool) -> int:
        """Iterative quantification core (``exists`` when ``disjunctive``)."""
        level_arr = self._level
        qset = self._quant_profile_sets[profile]
        qmax = self._quant_profile_max[profile]
        cache = self._quant_cache
        tag = 0 if disjunctive else 1
        hits = misses = 0
        tasks: List[Tuple[int, bool]] = [(f, False)]
        results: List[int] = []
        while tasks:
            f, combine = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                level = level_arr[f]
                if level in qset:
                    if disjunctive:
                        result = self.apply_or(low, high)
                    else:
                        result = self.apply_and(low, high)
                else:
                    result = self._mk(level, low, high)
                cache[(tag, f, profile)] = result
                results.append(result)
                continue
            if f <= TRUE or level_arr[f] > qmax:
                results.append(f)
                continue
            cached = cache.get((tag, f, profile))
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            tasks.append((f, True))
            tasks.append((self._high[f], False))
            tasks.append((self._low[f], False))
        self._quant_hits += hits
        self._quant_misses += misses
        return results[0]

    def _exists_profile(self, f: int, profile: int) -> int:
        return self._quantify_profile(f, profile, disjunctive=True)

    def forall(self, f: int, variables: Sequence[int]) -> int:
        """Universal quantification of ``variables`` (ids) out of ``f``."""
        if not variables:
            return f
        profile = self._quant_profile(variables)
        return self._forall_profile(f, profile)

    def _forall_profile(self, f: int, profile: int) -> int:
        return self._quantify_profile(f, profile, disjunctive=False)

    def and_exists(self, f: int, g: int, variables: Sequence[int]) -> int:
        """Relational product ``exists variables . (f & g)`` in one pass.

        This is the workhorse of symbolic image computation; fusing the
        conjunction with the quantification avoids building the (often huge)
        intermediate ``f & g``.
        """
        if not variables:
            return self.apply_and(f, g)
        profile = self._quant_profile(variables)
        return self._and_exists_profile(f, g, profile)

    def _and_exists_profile(self, f: int, g: int, profile: int) -> int:
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high
        qset = self._quant_profile_sets[profile]
        qmax = self._quant_profile_max[profile]
        cache = self._relprod_cache
        # Frames: (phase, a, b, c, d).  EXPAND carries (f, g); AFTER_LOW
        # carries (f, g, f1, g1) — the pending high cofactors, expanded only
        # when the low branch did not already decide the disjunction;
        # AFTER_HIGH carries (f, g, low); AFTER_BOTH carries (f, g).
        hits = misses = 0
        tasks: List[Tuple[int, int, int, int, int]] = [
            (_AE_EXPAND, f, g, 0, 0)
        ]
        results: List[int] = []
        while tasks:
            phase, f, g, c, d = tasks.pop()
            if phase == _AE_EXPAND:
                if f == FALSE or g == FALSE:
                    results.append(FALSE)
                    continue
                if f == TRUE and g == TRUE:
                    results.append(TRUE)
                    continue
                if f == TRUE:
                    results.append(self._exists_profile(g, profile))
                    continue
                if g == TRUE or f == g:
                    results.append(self._exists_profile(f, profile))
                    continue
                if level_arr[f] > qmax and level_arr[g] > qmax:
                    results.append(self.apply_and(f, g))
                    continue
                if f > g:
                    f, g = g, f
                cached = cache.get((f, g, profile))
                if cached is not None:
                    hits += 1
                    results.append(cached)
                    continue
                misses += 1
                lf, lg = level_arr[f], level_arr[g]
                level = lf if lf < lg else lg
                if lf == level:
                    f0, f1 = low_arr[f], high_arr[f]
                else:
                    f0 = f1 = f
                if lg == level:
                    g0, g1 = low_arr[g], high_arr[g]
                else:
                    g0 = g1 = g
                if level in qset:
                    # Quantified level: compute the low branch first and
                    # short-circuit the high branch when it is already TRUE.
                    tasks.append((_AE_AFTER_LOW, f, g, f1, g1))
                    tasks.append((_AE_EXPAND, f0, g0, 0, 0))
                else:
                    tasks.append((_AE_AFTER_BOTH, f, g, 0, 0))
                    tasks.append((_AE_EXPAND, f1, g1, 0, 0))
                    tasks.append((_AE_EXPAND, f0, g0, 0, 0))
            elif phase == _AE_AFTER_LOW:
                low = results.pop()
                if low == TRUE:
                    cache[(f, g, profile)] = TRUE
                    results.append(TRUE)
                    continue
                tasks.append((_AE_AFTER_HIGH, f, g, low, 0))
                tasks.append((_AE_EXPAND, c, d, 0, 0))
            elif phase == _AE_AFTER_HIGH:
                high = results.pop()
                result = self.apply_or(c, high)
                cache[(f, g, profile)] = result
                results.append(result)
            else:  # _AE_AFTER_BOTH
                high = results.pop()
                low = results.pop()
                lf, lg = level_arr[f], level_arr[g]
                result = self._mk(lf if lf < lg else lg, low, high)
                cache[(f, g, profile)] = result
                results.append(result)
        self._relprod_hits += hits
        self._relprod_misses += misses
        return results[0]

    def and_exists_chain(
        self,
        f: int,
        steps: Sequence[Tuple[int, Sequence[int]]],
    ) -> int:
        """Multi-conjunct relational product executing a quantification schedule.

        Computes ``exists (union of all step variables) . (f & g1 & ... & gk)``
        by folding one conjunct at a time::

            acc = f
            for (g_i, vars_i) in steps:
                acc = exists vars_i . (acc & g_i)

        This is only equal to quantifying everything at the end when the
        schedule is *legal*: a variable listed at step ``i`` must not occur
        in any later conjunct ``g_j`` (``j > i``).  Callers obtain legal
        schedules from :mod:`repro.fsm.partition`, which places each
        variable at its earliest legal step (early quantification).  The
        payoff is that the monolithic ``g1 & ... & gk`` — often the largest
        BDD of a model-checking run — is never built.
        """
        result = f
        executed = 0
        self._chain_runs += 1
        if len(steps) > self._chain_max_len:
            self._chain_max_len = len(steps)
        for conjunct, variables in steps:
            executed += 1
            result = self.and_exists(result, conjunct, variables)
            if result == FALSE:
                break
        self._chain_steps += executed
        return result

    # ------------------------------------------------------------------
    # Cofactor / composition / renaming
    # ------------------------------------------------------------------

    def restrict(self, f: int, var: int, value: bool) -> int:
        """Cofactor of ``f`` with variable id ``var`` fixed to ``value``."""
        level = self._var2level[var]
        return self._restrict_level(f, level, value)

    def _restrict_level(self, f: int, level: int, value: bool) -> int:
        level_arr = self._level
        cache = self._quant_cache
        tag = 2 if value else 3
        hits = misses = 0
        tasks: List[Tuple[int, bool]] = [(f, False)]
        results: List[int] = []
        while tasks:
            f, combine = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                result = self._mk(level_arr[f], low, high)
                cache[(tag, f, level)] = result
                results.append(result)
                continue
            if f <= TRUE or level_arr[f] > level:
                results.append(f)
                continue
            cached = cache.get((tag, f, level))
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            if level_arr[f] == level:
                # The restricted variable cannot reappear below its level,
                # so the chosen child is already fully restricted.
                result = self._high[f] if value else self._low[f]
                cache[(tag, f, level)] = result
                results.append(result)
                continue
            tasks.append((f, True))
            tasks.append((self._high[f], False))
            tasks.append((self._low[f], False))
        self._restrict_hits += hits
        self._restrict_misses += misses
        return results[0]

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable id ``var`` inside ``f``."""
        return self.compose_many(f, {var: g})

    def compose_many(self, f: int, substitution: Dict[int, int]) -> int:
        """Simultaneous substitution ``{var id -> replacement node}``.

        Simultaneity matters: ``compose_many(f, {x: y, y: x})`` swaps the two
        variables, which sequential composition would not.
        """
        if not substitution:
            return f
        by_level = {self._var2level[v]: g for v, g in substitution.items()}
        # A fresh token keys this substitution in the (shared) compose cache.
        # Entries of previous tokens can never be hit again; purge them once
        # enough generations have accumulated (policy.compose_generations).
        self._compose_token += 1
        if (
            self._compose_token - self._compose_purged_token
            >= self.policy.compose_generations
        ):
            self._compose_cache.clear()
            self._compose_purged_token = self._compose_token
        self._compose_max_level = max(by_level)
        return self._compose_rec(f, by_level)

    def _compose_rec(self, f: int, by_level: Dict[int, int]) -> int:
        level_arr = self._level
        max_level = self._compose_max_level
        token = self._compose_token
        cache = self._compose_cache
        hits = misses = 0
        tasks: List[Tuple[int, bool]] = [(f, False)]
        results: List[int] = []
        while tasks:
            f, combine = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                level = level_arr[f]
                replacement = by_level.get(level)
                if replacement is None:
                    replacement = self._mk(level, FALSE, TRUE)
                result = self.ite(replacement, high, low)
                cache[(token, f)] = result
                results.append(result)
                continue
            if f <= TRUE or level_arr[f] > max_level:
                results.append(f)
                continue
            cached = cache.get((token, f))
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            tasks.append((f, True))
            tasks.append((self._high[f], False))
            tasks.append((self._low[f], False))
        self._compose_hits += hits
        self._compose_misses += misses
        return results[0]

    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables of ``f`` according to ``{old var id -> new var id}``.

        Only the *support* of ``f`` matters: when the level map restricted to
        the support is strictly order-preserving (true for the interleaved
        current<->next FSM encoding), a fast direct rebuild is used;
        otherwise this falls back to simultaneous composition, which is
        always correct.
        """
        if not mapping or f <= TRUE:
            return f
        level_map = {
            self._var2level[old]: self._var2level[new]
            for old, new in mapping.items()
        }
        support_levels = sorted(self._var2level[v] for v in self.support(f))
        mapped = [level_map.get(level, level) for level in support_levels]
        monotone = all(mapped[i] < mapped[i + 1] for i in range(len(mapped) - 1))
        if monotone:
            return self._rename_rec(f, level_map)
        substitution = {
            old: self._mk(self._var2level[new], FALSE, TRUE)
            for old, new in mapping.items()
        }
        return self.compose_many(f, substitution)

    def _rename_rec(self, f: int, level_map: Dict[int, int]) -> int:
        level_arr = self._level
        cache: Dict[int, int] = {}
        tasks: List[Tuple[int, bool]] = [(f, False)]
        results: List[int] = []
        while tasks:
            f, combine = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                level = level_arr[f]
                result = self._mk(level_map.get(level, level), low, high)
                cache[f] = result
                results.append(result)
                continue
            if f <= TRUE:
                results.append(f)
                continue
            cached = cache.get(f)
            if cached is not None:
                results.append(cached)
                continue
            tasks.append((f, True))
            tasks.append((self._high[f], False))
            tasks.append((self._low[f], False))
        return results[0]

    # ------------------------------------------------------------------
    # Satisfying assignments
    # ------------------------------------------------------------------

    def satcount(self, f: int, variables: Optional[Sequence[int]] = None) -> int:
        """Number of satisfying assignments of ``f`` over ``variables``.

        ``variables`` (variable ids) defaults to all declared variables and
        must include the support of ``f``.  Variables skipped on a BDD path
        contribute a factor of two each.  The variable set need not be a
        contiguous block of levels — state variables interleaved with
        next-state variables count correctly.
        """
        if variables is None:
            variables = range(self.num_vars)
        levels = sorted(self._var2level[v] for v in variables)
        rank = {lvl: i for i, lvl in enumerate(levels)}
        n = len(levels)
        if f == FALSE:
            return 0
        if f == TRUE:
            return 1 << n
        for var in self.support(f):
            if self._var2level[var] not in rank:
                raise BDDError(
                    f"satcount: function depends on {self._var_names[var]!r} "
                    "which is outside the counting variables"
                )
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high
        memo: Dict[int, int] = {FALSE: 0, TRUE: 1}
        # Counts are over the counting-variables at ranks >= rank(level(node));
        # a child skipping ranks contributes a factor of two per skipped rank.
        tasks: List[Tuple[int, bool]] = [(f, False)]
        while tasks:
            node, combine = tasks.pop()
            if combine:
                r = rank[level_arr[node]]
                low, high = low_arr[node], high_arr[node]
                low_rank = rank[level_arr[low]] if low > TRUE else n
                high_rank = rank[level_arr[high]] if high > TRUE else n
                memo[node] = (memo[low] << (low_rank - r - 1)) + (
                    memo[high] << (high_rank - r - 1)
                )
                continue
            if node in memo:
                continue
            tasks.append((node, True))
            tasks.append((high_arr[node], False))
            tasks.append((low_arr[node], False))
        return memo[f] << rank[self._level[f]]

    def support(self, f: int) -> List[int]:
        """Variable ids (sorted by level) that ``f`` structurally depends on."""
        seen = set()
        levels = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            levels.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return [self._level2var[level] for level in sorted(levels)]

    def iter_cubes(self, f: int) -> Iterator[Dict[int, bool]]:
        """Yield the cubes (partial assignments ``{var id: bool}``) of ``f``.

        Each cube corresponds to one path from the root to TRUE; variables
        skipped on the path are omitted (don't-cares).  The root is pinned
        against garbage collection for the iterator's lifetime, so consumers
        may freely interleave other BDD work (which may hit GC safe points)
        with the enumeration.
        """
        if f == FALSE:
            return
        self._pin(f)
        try:
            path: List[Tuple[int, bool]] = []
            # Each entry: (node, path length to truncate to, literal to
            # append first — or -1 for the root).  Low branches are pushed
            # last so they are explored first, matching the historical
            # recursive enumeration order (trace rendering depends on it).
            stack: List[Tuple[int, int, int, bool]] = [(f, 0, -1, False)]
            while stack:
                node, plen, var, value = stack.pop()
                del path[plen:]
                if var >= 0:
                    path.append((var, value))
                if node == FALSE:
                    continue
                if node == TRUE:
                    yield dict(path)
                    continue
                v = self._level2var[self._level[node]]
                depth = len(path)
                stack.append((self._high[node], depth, v, True))
                stack.append((self._low[node], depth, v, False))
        finally:
            self._unpin(f)

    def iter_sat(self, f: int, variables: Sequence[int]) -> Iterator[Dict[int, bool]]:
        """Yield complete assignments over ``variables`` satisfying ``f``.

        ``f`` must not depend on variables outside ``variables``.
        """
        var_set = set(variables)
        for var in self.support(f):
            if var not in var_set:
                raise BDDError(
                    f"function depends on {self._var_names[var]!r} which is "
                    "not among the enumeration variables"
                )
        ordered = sorted(variables, key=lambda v: self._var2level[v])
        for cube in self.iter_cubes(f):
            free = [v for v in ordered if v not in cube]
            for bits in range(1 << len(free)):
                assignment = dict(cube)
                for i, v in enumerate(free):
                    assignment[v] = bool((bits >> i) & 1)
                yield assignment

    def pick_sat(self, f: int, variables: Sequence[int]) -> Optional[Dict[int, bool]]:
        """Return one satisfying assignment over ``variables`` or ``None``.

        The result assigns **exactly** the requested ``variables`` (support
        variables outside ``variables`` are projected away): it is the
        restriction to ``variables`` of some full satisfying assignment of
        ``f``, with don't-care variables defaulting to ``False``.
        """
        if f == FALSE:
            return None
        cube = next(self.iter_cubes(f))
        return {v: cube.get(v, False) for v in variables}

    def eval_node(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate ``f`` under a complete assignment ``{var id: bool}``."""
        node = f
        while node > TRUE:
            var = self._level2var[self._level[node]]
            try:
                value = assignment[var]
            except KeyError:
                raise BDDError(
                    f"assignment missing variable {self._var_names[var]!r}"
                ) from None
            node = self._high[node] if value else self._low[node]
        return node == TRUE

    def cube(self, assignment: Dict[int, bool]) -> int:
        """Build the conjunction-of-literals node for ``{var id: bool}``."""
        result = TRUE
        for var in sorted(assignment, key=lambda v: self._var2level[v], reverse=True):
            level = self._var2level[var]
            if assignment[var]:
                result = self._mk(level, FALSE, result)
            else:
                result = self._mk(level, result, FALSE)
        return result

    # ------------------------------------------------------------------
    # Cache & garbage management
    # ------------------------------------------------------------------

    def register_external(self, obj) -> None:
        """Track a wrapper object whose ``node`` attribute must stay live."""
        external = self._external
        key = id(obj)

        def _drop(_ref, _key=key, _external=external):
            _external.pop(_key, None)

        external[key] = weakref.ref(obj, _drop)

    def _pin(self, node: int) -> None:
        """Protect ``node`` (and its cone) from GC until :meth:`_unpin`."""
        self._pinned[node] = self._pinned.get(node, 0) + 1

    def _unpin(self, node: int) -> None:
        count = self._pinned.get(node, 0) - 1
        if count > 0:
            self._pinned[node] = count
        else:
            self._pinned.pop(node, None)

    def set_policy(self, policy: ResourcePolicy) -> None:
        """Install a new resource policy and re-arm its triggers."""
        self.policy = policy
        self._gc_trigger = policy.gc_node_threshold
        self._reorder_trigger = policy.reorder_node_threshold

    def cache_entry_count(self) -> int:
        """Combined entry count of all operation caches."""
        return (
            len(self._ite_cache)
            + len(self._bin_cache)
            + len(self._not_cache)
            + len(self._quant_cache)
            + len(self._relprod_cache)
            + len(self._compose_cache)
        )

    def checkpoint(self) -> None:
        """Safe-point hook of the automatic resource manager.

        Called whenever a :class:`~repro.bdd.function.Function` wrapper is
        created — the one moment when every intermediate the caller still
        needs is wrapper-rooted and no raw-node traversal is in flight (the
        manager's own operators never create wrappers mid-computation).
        Runs auto-GC / cache eviction / the opt-in auto-sift hook when the
        policy's thresholds are crossed; cheap (a few integer compares)
        otherwise.
        """
        if self._in_checkpoint:
            return
        count = self._note_peak()
        policy = self.policy
        self._in_checkpoint = True
        try:
            if (
                policy.auto_reorder
                and count >= self._reorder_trigger
                # Reordering rewrites nodes in place; never do it while a
                # cube iterator is walking the graph.
                and not self._pinned
            ):
                from .reorder import sift  # local import: reorder imports us

                sift(self, max_vars=policy.reorder_max_vars or None)
                self._reorder_runs += 1
                live = self.node_count()
                self._reorder_trigger = max(
                    policy.reorder_node_threshold,
                    int(live * policy.reorder_growth) + 1,
                )
                count = live
            if policy.gc_enabled and count >= self._gc_trigger:
                self.collect_garbage()
                live = self.node_count()
                self._gc_trigger = max(
                    policy.gc_node_threshold, int(live * policy.gc_growth)
                )
            elif (
                policy.cache_entry_threshold
                and self.cache_entry_count() >= policy.cache_entry_threshold
            ):
                self.clear_caches()
        finally:
            self._in_checkpoint = False

    def clear_caches(self) -> None:
        """Drop all operation caches (automatically done by GC/reorder)."""
        self._ite_cache.clear()
        self._bin_cache.clear()
        self._not_cache.clear()
        self._quant_cache.clear()
        self._relprod_cache.clear()
        self._compose_cache.clear()
        self._compose_purged_token = self._compose_token

    def collect_garbage(self, extra_roots: Iterable[int] = ()) -> int:
        """Mark-and-sweep: recycle nodes unreachable from live references.

        Roots are the nodes of all live :class:`Function` wrappers, all
        single-variable nodes, all pinned nodes (in-flight enumerations),
        and ``extra_roots``.  Returns the number of node slots freed.  All
        operation caches are invalidated.
        """
        started = time.perf_counter()
        self._note_peak()
        roots = set(extra_roots)
        for ref in list(self._external.values()):
            obj = ref()
            if obj is not None:
                roots.add(obj.node)
        roots.update(self._pinned)
        for var in range(self.num_vars):
            level = self._var2level[var]
            node = self._unique.get((level, FALSE, TRUE))
            if node is not None:
                roots.add(node)
        marked = {FALSE, TRUE}
        stack = [r for r in roots if r > TRUE]
        while stack:
            node = stack.pop()
            if node in marked:
                continue
            marked.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        freed = 0
        dead_keys = [
            key for key, node in self._unique.items() if node not in marked
        ]
        for key in dead_keys:
            node = self._unique.pop(key)
            self._free.append(node)
            freed += 1
        if freed:
            # Cache entries may reference recycled slots — drop them.  When
            # the sweep freed nothing, every cached operand/result was just
            # proven live, so the caches stay valid and are kept: this is
            # what makes dense GC schedules (the stress suite collects at
            # every safe point) affordable — repeated no-op collections do
            # not forfeit memoisation.
            self.clear_caches()
        self._gc_runs += 1
        self._gc_freed_total += freed
        self._gc_seconds += time.perf_counter() - started
        return freed

    def live_node_count(self, extra_roots: Iterable[int] = ()) -> int:
        """Nodes reachable from live references (terminals included).

        Marks from the same root set as :meth:`collect_garbage` without
        sweeping — the size measure dynamic reordering optimises (the raw
        unique-table size would count dead-but-uncollected nodes and skew
        placement decisions).
        """
        roots = set(extra_roots)
        for ref in list(self._external.values()):
            obj = ref()
            if obj is not None:
                roots.add(obj.node)
        roots.update(self._pinned)
        for var in range(self.num_vars):
            level = self._var2level[var]
            node = self._unique.get((level, FALSE, TRUE))
            if node is not None:
                roots.add(node)
        marked = {FALSE, TRUE}
        stack = [r for r in roots if r > TRUE]
        while stack:
            node = stack.pop()
            if node in marked:
                continue
            marked.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(marked)

    # ------------------------------------------------------------------
    # Resource statistics
    # ------------------------------------------------------------------

    @property
    def gc_runs(self) -> int:
        """Number of completed garbage collections (manual + automatic)."""
        return self._gc_runs

    @property
    def gc_seconds(self) -> float:
        """Total wall-clock time spent inside garbage collection."""
        return self._gc_seconds

    def _note_peak(self) -> int:
        """Fold the current node count into the stored high-water mark.

        Called at the manager's own observation points (safe points, GC
        entry).  Returns the current count so callers need not recompute it.
        """
        count = len(self._level) - len(self._free)
        if count > self._peak_nodes:
            self._peak_nodes = count
        return count

    @property
    def peak_nodes(self) -> int:
        """High-water mark of the live node count.

        Reading is side-effect free: the returned value folds in the
        current live count without storing it, so stats snapshots (which
        may run at arbitrary moments) never mutate manager state.  The
        stored mark is advanced only at the manager's own observation
        points (:meth:`checkpoint`, :meth:`collect_garbage`).
        """
        count = len(self._level) - len(self._free)
        peak = self._peak_nodes
        return count if count > peak else peak

    @property
    def reorder_runs(self) -> int:
        """Number of completed automatic reordering passes."""
        return self._reorder_runs

    @property
    def gc_freed(self) -> int:
        """Total node slots recycled across all collections."""
        return self._gc_freed_total

    def resource_stats(self) -> Dict[str, float]:
        """Every resource and op-level counter as one JSON-friendly dict.

        This is *the* counter schema: :class:`~repro.mc.stats.WorkMeter`
        deltas it across phases, ``repro.obs`` spans snapshot it at span
        boundaries, and ``repro bench`` baselines persist it — the names
        below appear verbatim in suite JSON, trace exports, and
        ``BENCH_*.json`` files (see ``docs/observability.md``).  Reading it
        never mutates manager state.
        """
        return {
            # Node-store gauges and totals.
            "nodes_live": self.node_count(),
            "peak_live_nodes": self.peak_nodes,
            "nodes_created": self._created_nodes,
            # Resource-manager activity.
            "gc_runs": self._gc_runs,
            "gc_freed": self._gc_freed_total,
            "gc_seconds": self._gc_seconds,
            "reorder_runs": self._reorder_runs,
            "cache_entries": self.cache_entry_count(),
            # Unique-table (hash-consing) pressure.
            "unique_probes": self._unique_probes,
            "unique_hits": self._unique_hits,
            # Op-cache hits/misses per operation kind.
            "ite_hits": self._ite_hits,
            "ite_misses": self._ite_misses,
            "and_hits": self._bin_hits[_OP_AND],
            "and_misses": self._bin_misses[_OP_AND],
            "or_hits": self._bin_hits[_OP_OR],
            "or_misses": self._bin_misses[_OP_OR],
            "xor_hits": self._bin_hits[_OP_XOR],
            "xor_misses": self._bin_misses[_OP_XOR],
            "not_hits": self._not_hits,
            "not_misses": self._not_misses,
            "quant_hits": self._quant_hits,
            "quant_misses": self._quant_misses,
            "restrict_hits": self._restrict_hits,
            "restrict_misses": self._restrict_misses,
            "relprod_hits": self._relprod_hits,
            "relprod_misses": self._relprod_misses,
            "compose_hits": self._compose_hits,
            "compose_misses": self._compose_misses,
            # Relational-product chain shape (and_exists_chain).
            "chain_runs": self._chain_runs,
            "chain_steps": self._chain_steps,
            "chain_max_len": self._chain_max_len,
        }

    # ------------------------------------------------------------------
    # Debugging helpers
    # ------------------------------------------------------------------

    def to_expr_str(self, f: int, max_nodes: int = 64) -> str:
        """Small human-readable rendering (sum of cubes), for debugging."""
        if f == FALSE:
            return "FALSE"
        if f == TRUE:
            return "TRUE"
        terms = []
        for i, cube in enumerate(self.iter_cubes(f)):
            if i >= max_nodes:
                terms.append("...")
                break
            literals = [
                self._var_names[var] if value else f"!{self._var_names[var]}"
                for var, value in sorted(
                    cube.items(), key=lambda kv: self._var2level[kv[0]]
                )
            ]
            terms.append(" & ".join(literals) if literals else "TRUE")
        return " | ".join(terms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BDDManager vars={self.num_vars} nodes={self.node_count()} "
            f"created={self._created_nodes}>"
        )
