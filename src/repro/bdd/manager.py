"""A self-contained reduced ordered binary decision diagram (ROBDD) engine.

This module provides the symbolic substrate that the DAC'99 coverage paper
gets from SMV's BDD package: hash-consed nodes, the ``ite`` operator with
memoisation, specialised binary operators, existential/universal
quantification, relational products (``and_exists``), functional composition,
variable renaming, satisfying-assignment counting and enumeration.

Since PR 7 the manager is a *facade*: node storage, the unique table, the
operation caches, and every kernel algorithm live in a pluggable
:class:`~repro.bdd.backends.base.BDDBackend` (``dict`` or ``array``,
selected by :class:`~repro.engine.EngineConfig.backend`).  What remains
here is the engine-facing policy layer — variable naming and the
variable<->level maps, external root tracking for the
:class:`~repro.bdd.function.Function` wrappers, pinning for in-flight
enumerations, the :class:`~repro.bdd.policy.ResourcePolicy` safe points
(:meth:`BDDManager.checkpoint`), and the :meth:`BDDManager.resource_stats`
schema — plus the var-id to level translation in front of every kernel.

Nodes are integers; the two terminals are the reserved node ids ``0``
(FALSE) and ``1`` (TRUE).  Nodes store *levels* rather than variable ids so
that variable reordering can swap adjacent levels in place without
invalidating outstanding node references (see :mod:`repro.bdd.reorder`).
Every kernel is **iterative** (explicit work stacks), so the engine's depth
limit is available memory, not Python's recursion limit.

The user-facing wrapper with operator overloading lives in
:mod:`repro.bdd.function`; this module works on raw node ids and is the
layer the FSM/model-checking code talks to for performance.
"""

from __future__ import annotations

import time
import weakref
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import BDDError
from .backends import BDDBackend, create_backend
from .backends.base import FALSE, TERMINAL_LEVEL, TRUE
from .policy import DEFAULT_POLICY, ResourcePolicy

__all__ = ["BDDManager", "FALSE", "TRUE", "TERMINAL_LEVEL"]


class BDDManager:
    """Owner of a shared ROBDD node store and its operation caches.

    All functions created through one manager may be freely combined; mixing
    nodes from different managers is an error (checked by the high-level
    :class:`~repro.bdd.function.Function` wrapper).

    Parameters
    ----------
    var_names:
        Optional initial variable names, declared in order (first name gets
        the topmost level).
    policy:
        Resource-management thresholds (automatic GC, cache caps, the
        auto-sift hook).  Defaults to
        :data:`~repro.bdd.policy.DEFAULT_POLICY`.
    backend:
        Node-store/kernel implementation: a registry name (``"dict"``,
        ``"array"``) or an already-constructed, unused
        :class:`~repro.bdd.backends.base.BDDBackend` instance.
    """

    def __init__(
        self,
        var_names: Optional[Iterable[str]] = None,
        policy: Optional[ResourcePolicy] = None,
        backend: Union[str, BDDBackend] = "dict",
    ):
        if isinstance(backend, str):
            backend = create_backend(backend)
        self.backend: BDDBackend = backend

        # Variable bookkeeping.  A "variable" is a stable integer id; its
        # position in the order is a "level".  Initially id == level.
        self._var_names: List[str] = []
        self._name_to_var: Dict[str, int] = {}
        self._var2level: List[int] = []
        self._level2var: List[int] = []

        # Live external references (Function wrappers), for garbage marking.
        # Keyed by wrapper *identity*: Function equality is structural (two
        # wrappers for the same node compare equal), so a WeakSet would
        # collapse equal wrappers into one entry and drop the root when the
        # stored one died — recycling nodes a live wrapper still denotes.
        self._external: Dict[int, "weakref.ref"] = {}
        # Nodes pinned by in-flight enumerations (node -> pin count): cube
        # iterators hold raw node ids across yields, so their roots must
        # survive any GC a consumer triggers between items.
        self._pinned: Dict[int, int] = {}

        # Resource management.
        self.policy: ResourcePolicy = policy if policy is not None else DEFAULT_POLICY
        self.backend.compose_generations = self.policy.compose_generations
        self._gc_trigger = self.policy.gc_node_threshold
        self._reorder_trigger = self.policy.reorder_node_threshold
        self._in_checkpoint = False

        # Manager-side statistics (kernel counters live in the backend).
        self._gc_runs = 0
        self._gc_seconds = 0.0
        self._gc_freed_total = 0
        self._reorder_runs = 0
        self._peak_nodes = 2
        # Relational-product chain shape (and_exists_chain schedules).
        self._chain_runs = 0
        self._chain_steps = 0
        self._chain_max_len = 0

        if var_names is not None:
            for name in var_names:
                self.add_var(name)

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------

    def add_var(self, name: str) -> int:
        """Declare a new variable at the bottom of the order; return its id."""
        if name in self._name_to_var:
            raise BDDError(f"variable {name!r} already declared")
        var = len(self._var_names)
        self._var_names.append(name)
        self._name_to_var[name] = var
        self._var2level.append(len(self._level2var))
        self._level2var.append(var)
        return var

    def var_id(self, name: str) -> int:
        """Return the variable id for ``name`` (raises if undeclared)."""
        try:
            return self._name_to_var[name]
        except KeyError:
            raise BDDError(f"unknown variable {name!r}") from None

    def var_name(self, var: int) -> str:
        """Return the declared name of variable id ``var``."""
        return self._var_names[var]

    def var_level(self, var: int) -> int:
        """Current level (order position) of variable id ``var``."""
        return self._var2level[var]

    def level_var(self, level: int) -> int:
        """Variable id currently sitting at ``level``."""
        return self._level2var[level]

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    @property
    def var_names(self) -> List[str]:
        """Names of all declared variables in declaration order."""
        return list(self._var_names)

    def current_order(self) -> List[str]:
        """Variable names from top level to bottom level."""
        return [self._var_names[v] for v in self._level2var]

    def var(self, name: str) -> int:
        """Return the node for the positive literal of variable ``name``."""
        var = self._name_to_var.get(name)
        if var is None:
            var = self.add_var(name)
        return self.backend.mk(self._var2level[var], FALSE, TRUE)

    def nvar(self, name: str) -> int:
        """Return the node for the negative literal of variable ``name``."""
        var = self._name_to_var.get(name)
        if var is None:
            var = self.add_var(name)
        return self.backend.mk(self._var2level[var], TRUE, FALSE)

    # ------------------------------------------------------------------
    # Node primitives (delegated to the backend)
    # ------------------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (the reduce rule)."""
        return self.backend.mk(level, low, high)

    def level_of(self, node: int) -> int:
        """Level of ``node`` (``TERMINAL_LEVEL`` for constants)."""
        return self.backend.level_of(node)

    def low_of(self, node: int) -> int:
        """Low (else) child of ``node``."""
        return self.backend.low_of(node)

    def high_of(self, node: int) -> int:
        """High (then) child of ``node``."""
        return self.backend.high_of(node)

    def node_count(self) -> int:
        """Number of live (non-recycled) nodes including terminals."""
        return self.backend.node_count()

    @property
    def created_nodes(self) -> int:
        """Total number of nodes ever created (a work measure, akin to the
        paper's "BDD nodes" column in Table 2)."""
        return self.backend.created_nodes

    def size(self, node: int) -> int:
        """Number of DAG nodes reachable from ``node`` (including terminals)."""
        return self.backend.size(node)

    # ------------------------------------------------------------------
    # Core operators
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f & g) | (~f & h)``, the universal connective."""
        return self.backend.ite(f, g, h)

    def apply_not(self, f: int) -> int:
        """Negation (O(size) without complement edges, memoised)."""
        return self.backend.apply_not(f)

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction with a commutativity-normalised cache."""
        return self.backend.apply_and(f, g)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction with a commutativity-normalised cache."""
        return self.backend.apply_or(f, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.backend.apply_xor(f, g)

    def apply_iff(self, f: int, g: int) -> int:
        """Equivalence ``f <-> g``."""
        return self.apply_not(self.apply_xor(f, g))

    def apply_implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self.apply_or(self.apply_not(f), g)

    def apply_diff(self, f: int, g: int) -> int:
        """Set difference ``f & ~g`` (reads naturally on state sets)."""
        return self.apply_and(f, self.apply_not(g))

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------

    def _levels_of(self, variables: Iterable[int]) -> List[int]:
        """Sorted levels of the given variable ids (the backend currency)."""
        return sorted(self._var2level[v] for v in variables)

    def exists(self, f: int, variables: Sequence[int]) -> int:
        """Existential quantification of ``variables`` (ids) out of ``f``."""
        if not variables:
            return f
        return self.backend.exists_levels(f, self._levels_of(variables))

    def forall(self, f: int, variables: Sequence[int]) -> int:
        """Universal quantification of ``variables`` (ids) out of ``f``."""
        if not variables:
            return f
        return self.backend.forall_levels(f, self._levels_of(variables))

    def and_exists(self, f: int, g: int, variables: Sequence[int]) -> int:
        """Relational product ``exists variables . (f & g)`` in one pass.

        This is the workhorse of symbolic image computation; fusing the
        conjunction with the quantification avoids building the (often huge)
        intermediate ``f & g``.
        """
        if not variables:
            return self.apply_and(f, g)
        return self.backend.and_exists_levels(f, g, self._levels_of(variables))

    def and_exists_chain(
        self,
        f: int,
        steps: Sequence[Tuple[int, Sequence[int]]],
    ) -> int:
        """Multi-conjunct relational product executing a quantification schedule.

        Computes ``exists (union of all step variables) . (f & g1 & ... & gk)``
        by folding one conjunct at a time::

            acc = f
            for (g_i, vars_i) in steps:
                acc = exists vars_i . (acc & g_i)

        This is only equal to quantifying everything at the end when the
        schedule is *legal*: a variable listed at step ``i`` must not occur
        in any later conjunct ``g_j`` (``j > i``).  Callers obtain legal
        schedules from :mod:`repro.fsm.partition`, which places each
        variable at its earliest legal step (early quantification).  The
        payoff is that the monolithic ``g1 & ... & gk`` — often the largest
        BDD of a model-checking run — is never built.
        """
        result = f
        executed = 0
        self._chain_runs += 1
        if len(steps) > self._chain_max_len:
            self._chain_max_len = len(steps)
        for conjunct, variables in steps:
            executed += 1
            result = self.and_exists(result, conjunct, variables)
            if result == FALSE:
                break
        self._chain_steps += executed
        return result

    # ------------------------------------------------------------------
    # Cofactor / composition / renaming
    # ------------------------------------------------------------------

    def restrict(self, f: int, var: int, value: bool) -> int:
        """Cofactor of ``f`` with variable id ``var`` fixed to ``value``."""
        return self.backend.restrict_level(f, self._var2level[var], value)

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable id ``var`` inside ``f``."""
        return self.compose_many(f, {var: g})

    def compose_many(self, f: int, substitution: Dict[int, int]) -> int:
        """Simultaneous substitution ``{var id -> replacement node}``.

        Simultaneity matters: ``compose_many(f, {x: y, y: x})`` swaps the two
        variables, which sequential composition would not.
        """
        if not substitution:
            return f
        by_level = {self._var2level[v]: g for v, g in substitution.items()}
        return self.backend.compose_levels(f, by_level)

    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables of ``f`` according to ``{old var id -> new var id}``.

        Only the *support* of ``f`` matters: when the level map restricted to
        the support is strictly order-preserving (true for the interleaved
        current<->next FSM encoding), a fast direct rebuild is used;
        otherwise this falls back to simultaneous composition, which is
        always correct.
        """
        if not mapping or f <= TRUE:
            return f
        level_map = {
            self._var2level[old]: self._var2level[new]
            for old, new in mapping.items()
        }
        support_levels = sorted(self._var2level[v] for v in self.support(f))
        mapped = [level_map.get(level, level) for level in support_levels]
        monotone = all(mapped[i] < mapped[i + 1] for i in range(len(mapped) - 1))
        if monotone:
            return self.backend.rename_monotone(f, level_map)
        substitution = {
            old: self.backend.mk(self._var2level[new], FALSE, TRUE)
            for old, new in mapping.items()
        }
        return self.compose_many(f, substitution)

    # ------------------------------------------------------------------
    # Satisfying assignments
    # ------------------------------------------------------------------

    def satcount(self, f: int, variables: Optional[Sequence[int]] = None) -> int:
        """Number of satisfying assignments of ``f`` over ``variables``.

        ``variables`` (variable ids) defaults to all declared variables and
        must include the support of ``f``.  Variables skipped on a BDD path
        contribute a factor of two each.  The variable set need not be a
        contiguous block of levels — state variables interleaved with
        next-state variables count correctly.
        """
        if variables is None:
            variables = range(self.num_vars)
        levels = self._levels_of(variables)
        if f == FALSE:
            return 0
        if f == TRUE:
            return 1 << len(levels)
        level_set = set(levels)
        for var in self.support(f):
            if self._var2level[var] not in level_set:
                raise BDDError(
                    f"satcount: function depends on {self._var_names[var]!r} "
                    "which is outside the counting variables"
                )
        return self.backend.satcount_levels(f, levels)

    def support(self, f: int) -> List[int]:
        """Variable ids (sorted by level) that ``f`` structurally depends on."""
        return [
            self._level2var[level] for level in self.backend.support_levels(f)
        ]

    def iter_cubes(self, f: int) -> Iterator[Dict[int, bool]]:
        """Yield the cubes (partial assignments ``{var id: bool}``) of ``f``.

        Each cube corresponds to one path from the root to TRUE; variables
        skipped on the path are omitted (don't-cares).  The root is pinned
        against garbage collection for the iterator's lifetime, so consumers
        may freely interleave other BDD work (which may hit GC safe points)
        with the enumeration.
        """
        if f == FALSE:
            return
        self._pin(f)
        try:
            level2var = self._level2var
            for path in self.backend.iter_cube_paths(f):
                yield {level2var[level]: value for level, value in path}
        finally:
            self._unpin(f)

    def iter_sat(self, f: int, variables: Sequence[int]) -> Iterator[Dict[int, bool]]:
        """Yield complete assignments over ``variables`` satisfying ``f``.

        ``f`` must not depend on variables outside ``variables``.
        """
        var_set = set(variables)
        for var in self.support(f):
            if var not in var_set:
                raise BDDError(
                    f"function depends on {self._var_names[var]!r} which is "
                    "not among the enumeration variables"
                )
        ordered = sorted(variables, key=lambda v: self._var2level[v])
        for cube in self.iter_cubes(f):
            free = [v for v in ordered if v not in cube]
            for bits in range(1 << len(free)):
                assignment = dict(cube)
                for i, v in enumerate(free):
                    assignment[v] = bool((bits >> i) & 1)
                yield assignment

    def pick_sat(self, f: int, variables: Sequence[int]) -> Optional[Dict[int, bool]]:
        """Return one satisfying assignment over ``variables`` or ``None``.

        The result assigns **exactly** the requested ``variables`` (support
        variables outside ``variables`` are projected away): it is the
        restriction to ``variables`` of some full satisfying assignment of
        ``f``, with don't-care variables defaulting to ``False``.
        """
        if f == FALSE:
            return None
        cube = next(self.iter_cubes(f))
        return {v: cube.get(v, False) for v in variables}

    def eval_node(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate ``f`` under a complete assignment ``{var id: bool}``."""
        backend = self.backend
        node = f
        while node > TRUE:
            var = self._level2var[backend.level_of(node)]
            try:
                value = assignment[var]
            except KeyError:
                raise BDDError(
                    f"assignment missing variable {self._var_names[var]!r}"
                ) from None
            node = backend.high_of(node) if value else backend.low_of(node)
        return node == TRUE

    def cube(self, assignment: Dict[int, bool]) -> int:
        """Build the conjunction-of-literals node for ``{var id: bool}``."""
        return self.backend.cube_levels(
            {self._var2level[var]: value for var, value in assignment.items()}
        )

    # ------------------------------------------------------------------
    # Cache & garbage management
    # ------------------------------------------------------------------

    def register_external(self, obj) -> None:
        """Track a wrapper object whose ``node`` attribute must stay live."""
        external = self._external
        key = id(obj)

        def _drop(_ref, _key=key, _external=external):
            _external.pop(_key, None)

        external[key] = weakref.ref(obj, _drop)

    def _pin(self, node: int) -> None:
        """Protect ``node`` (and its cone) from GC until :meth:`_unpin`."""
        self._pinned[node] = self._pinned.get(node, 0) + 1

    def _unpin(self, node: int) -> None:
        count = self._pinned.get(node, 0) - 1
        if count > 0:
            self._pinned[node] = count
        else:
            self._pinned.pop(node, None)

    def set_policy(self, policy: ResourcePolicy) -> None:
        """Install a new resource policy and re-arm its triggers."""
        self.policy = policy
        self.backend.compose_generations = policy.compose_generations
        self._gc_trigger = policy.gc_node_threshold
        self._reorder_trigger = policy.reorder_node_threshold

    def cache_entry_count(self) -> int:
        """Combined entry count of all operation caches."""
        return self.backend.cache_entry_count()

    def checkpoint(self) -> None:
        """Safe-point hook of the automatic resource manager.

        Called whenever a :class:`~repro.bdd.function.Function` wrapper is
        created — the one moment when every intermediate the caller still
        needs is wrapper-rooted and no raw-node traversal is in flight (the
        manager's own operators never create wrappers mid-computation).
        Runs auto-GC / cache eviction / the opt-in auto-sift hook when the
        policy's thresholds are crossed; cheap (a few integer compares)
        otherwise.
        """
        if self._in_checkpoint:
            return
        count = self._note_peak()
        policy = self.policy
        self._in_checkpoint = True
        try:
            if (
                policy.auto_reorder
                and count >= self._reorder_trigger
                # Reordering rewrites nodes in place; never do it while a
                # cube iterator is walking the graph.
                and not self._pinned
            ):
                from .reorder import sift  # local import: reorder imports us

                sift(self, max_vars=policy.reorder_max_vars or None)
                self._reorder_runs += 1
                live = self.node_count()
                self._reorder_trigger = max(
                    policy.reorder_node_threshold,
                    int(live * policy.reorder_growth) + 1,
                )
                count = live
            if policy.gc_enabled and count >= self._gc_trigger:
                self.collect_garbage()
                live = self.node_count()
                self._gc_trigger = max(
                    policy.gc_node_threshold, int(live * policy.gc_growth)
                )
            elif (
                policy.cache_entry_threshold
                and self.cache_entry_count() >= policy.cache_entry_threshold
            ):
                self.clear_caches()
        finally:
            self._in_checkpoint = False

    def clear_caches(self) -> None:
        """Drop all operation caches (automatically done by GC/reorder)."""
        self.backend.clear_caches()

    def _gc_roots(self, extra_roots: Iterable[int] = ()) -> set:
        """The root set: live wrappers, pins, literals, ``extra_roots``."""
        roots = set(extra_roots)
        for ref in list(self._external.values()):
            obj = ref()
            if obj is not None:
                roots.add(obj.node)
        roots.update(self._pinned)
        backend = self.backend
        for var in range(self.num_vars):
            node = backend.find(self._var2level[var], FALSE, TRUE)
            if node is not None:
                roots.add(node)
        return roots

    def collect_garbage(self, extra_roots: Iterable[int] = ()) -> int:
        """Mark-and-sweep: recycle nodes unreachable from live references.

        Roots are the nodes of all live :class:`Function` wrappers, all
        single-variable nodes, all pinned nodes (in-flight enumerations),
        and ``extra_roots``.  Returns the number of node slots freed.  All
        operation caches are invalidated (unless nothing was freed — a
        no-op sweep just proved every cached operand live).
        """
        started = time.perf_counter()
        self._note_peak()
        freed = self.backend.collect(self._gc_roots(extra_roots))
        self._gc_runs += 1
        self._gc_freed_total += freed
        self._gc_seconds += time.perf_counter() - started
        return freed

    def live_node_count(self, extra_roots: Iterable[int] = ()) -> int:
        """Nodes reachable from live references (terminals included).

        Marks from the same root set as :meth:`collect_garbage` without
        sweeping — the size measure dynamic reordering optimises (the raw
        unique-table size would count dead-but-uncollected nodes and skew
        placement decisions).
        """
        return self.backend.live_count(self._gc_roots(extra_roots))

    # ------------------------------------------------------------------
    # Resource statistics
    # ------------------------------------------------------------------

    @property
    def gc_runs(self) -> int:
        """Number of completed garbage collections (manual + automatic)."""
        return self._gc_runs

    @property
    def gc_seconds(self) -> float:
        """Total wall-clock time spent inside garbage collection."""
        return self._gc_seconds

    def _note_peak(self) -> int:
        """Fold the current node count into the stored high-water mark.

        Called at the manager's own observation points (safe points, GC
        entry).  Returns the current count so callers need not recompute it.
        """
        count = self.backend.node_count()
        if count > self._peak_nodes:
            self._peak_nodes = count
        return count

    @property
    def peak_nodes(self) -> int:
        """High-water mark of the live node count.

        Reading is side-effect free: the returned value folds in the
        current live count without storing it, so stats snapshots (which
        may run at arbitrary moments) never mutate manager state.  The
        stored mark is advanced only at the manager's own observation
        points (:meth:`checkpoint`, :meth:`collect_garbage`).
        """
        count = self.backend.node_count()
        peak = self._peak_nodes
        return count if count > peak else peak

    @property
    def reorder_runs(self) -> int:
        """Number of completed automatic reordering passes."""
        return self._reorder_runs

    @property
    def gc_freed(self) -> int:
        """Total node slots recycled across all collections."""
        return self._gc_freed_total

    def resource_stats(self) -> Dict[str, float]:
        """Every resource and op-level counter as one JSON-friendly dict.

        This is *the* counter schema: :class:`~repro.mc.stats.WorkMeter`
        deltas it across phases, ``repro.obs`` spans snapshot it at span
        boundaries, and ``repro bench`` baselines persist it — the names
        below appear verbatim in suite JSON, trace exports, and
        ``BENCH_*.json`` files (see ``docs/observability.md``).  Reading it
        never mutates manager state.  The schema is backend-independent:
        the kernel counters come from :meth:`BDDBackend.counters` under the
        same names for every backend.
        """
        kernel = self.backend.counters()
        return {
            # Node-store gauges and totals.
            "nodes_live": self.node_count(),
            "peak_live_nodes": self.peak_nodes,
            "nodes_created": kernel["nodes_created"],
            # Resource-manager activity.
            "gc_runs": self._gc_runs,
            "gc_freed": self._gc_freed_total,
            "gc_seconds": self._gc_seconds,
            "reorder_runs": self._reorder_runs,
            "cache_entries": self.cache_entry_count(),
            # Unique-table (hash-consing) pressure.
            "unique_probes": kernel["unique_probes"],
            "unique_hits": kernel["unique_hits"],
            # Op-cache hits/misses per operation kind.
            "ite_hits": kernel["ite_hits"],
            "ite_misses": kernel["ite_misses"],
            "and_hits": kernel["and_hits"],
            "and_misses": kernel["and_misses"],
            "or_hits": kernel["or_hits"],
            "or_misses": kernel["or_misses"],
            "xor_hits": kernel["xor_hits"],
            "xor_misses": kernel["xor_misses"],
            "not_hits": kernel["not_hits"],
            "not_misses": kernel["not_misses"],
            "quant_hits": kernel["quant_hits"],
            "quant_misses": kernel["quant_misses"],
            "restrict_hits": kernel["restrict_hits"],
            "restrict_misses": kernel["restrict_misses"],
            "relprod_hits": kernel["relprod_hits"],
            "relprod_misses": kernel["relprod_misses"],
            "compose_hits": kernel["compose_hits"],
            "compose_misses": kernel["compose_misses"],
            # Relational-product chain shape (and_exists_chain).
            "chain_runs": self._chain_runs,
            "chain_steps": self._chain_steps,
            "chain_max_len": self._chain_max_len,
        }

    # ------------------------------------------------------------------
    # Debugging helpers
    # ------------------------------------------------------------------

    def to_expr_str(self, f: int, max_nodes: int = 64) -> str:
        """Small human-readable rendering (sum of cubes), for debugging."""
        if f == FALSE:
            return "FALSE"
        if f == TRUE:
            return "TRUE"
        terms = []
        for i, cube in enumerate(self.iter_cubes(f)):
            if i >= max_nodes:
                terms.append("...")
                break
            literals = [
                self._var_names[var] if value else f"!{self._var_names[var]}"
                for var, value in sorted(
                    cube.items(), key=lambda kv: self._var2level[kv[0]]
                )
            ]
            terms.append(" & ".join(literals) if literals else "TRUE")
        return " | ".join(terms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BDDManager vars={self.num_vars} nodes={self.node_count()} "
            f"backend={self.backend.name!r} created={self.created_nodes}>"
        )
