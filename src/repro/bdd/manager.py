"""A self-contained reduced ordered binary decision diagram (ROBDD) engine.

This module provides the symbolic substrate that the DAC'99 coverage paper
gets from SMV's BDD package: hash-consed nodes, the ``ite`` operator with
memoisation, specialised binary operators, existential/universal
quantification, relational products (``and_exists``), functional composition,
variable renaming, satisfying-assignment counting and enumeration.

Nodes are integers indexing three parallel arrays (level, low, high); the two
terminals are the reserved node ids ``0`` (FALSE) and ``1`` (TRUE).  Nodes
store *levels* rather than variable ids so that variable reordering can swap
adjacent levels in place without invalidating outstanding node references
(see :mod:`repro.bdd.reorder`).

The user-facing wrapper with operator overloading lives in
:mod:`repro.bdd.function`; this module works on raw node ids and is the
layer the FSM/model-checking code talks to for performance.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import BDDError

#: Pseudo-level assigned to the two terminal nodes; orders after any variable.
TERMINAL_LEVEL = 1 << 30

#: Reserved node ids for the constant functions.
FALSE = 0
TRUE = 1

# Tags used to keep the shared binary-op cache collision free.
_OP_AND = 0
_OP_OR = 1
_OP_XOR = 2


class BDDManager:
    """Owner of a shared ROBDD node store and its operation caches.

    All functions created through one manager may be freely combined; mixing
    nodes from different managers is an error (checked by the high-level
    :class:`~repro.bdd.function.Function` wrapper).

    Parameters
    ----------
    var_names:
        Optional initial variable names, declared in order (first name gets
        the topmost level).
    """

    def __init__(self, var_names: Optional[Iterable[str]] = None):
        # Parallel node arrays; slots 0/1 are the terminals.  The terminal
        # low/high fields are never read but keep the arrays aligned.
        self._level: List[int] = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self._low: List[int] = [FALSE, TRUE]
        self._high: List[int] = [FALSE, TRUE]
        # Hash-consing table: (level, low, high) -> node id.
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Recycled node slots (filled by collect_garbage).
        self._free: List[int] = []

        # Variable bookkeeping.  A "variable" is a stable integer id; its
        # position in the order is a "level".  Initially id == level.
        self._var_names: List[str] = []
        self._name_to_var: Dict[str, int] = {}
        self._var2level: List[int] = []
        self._level2var: List[int] = []

        # Operation caches.
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._bin_cache: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._quant_cache: Dict[Tuple[int, int, int], int] = {}
        self._relprod_cache: Dict[Tuple[int, int, int], int] = {}
        self._compose_cache: Dict[Tuple[int, int], int] = {}
        self._compose_token = 0
        # Registered quantification profiles: canonical tuple of levels -> id.
        self._quant_profiles: Dict[Tuple[int, ...], int] = {}
        self._quant_profile_sets: List[frozenset] = []
        self._quant_profile_max: List[int] = []

        # Live external references (Function wrappers), for garbage marking.
        self._external: "weakref.WeakSet" = weakref.WeakSet()

        # Statistics.
        self._created_nodes = 2
        self._gc_runs = 0

        if var_names is not None:
            for name in var_names:
                self.add_var(name)

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------

    def add_var(self, name: str) -> int:
        """Declare a new variable at the bottom of the order; return its id."""
        if name in self._name_to_var:
            raise BDDError(f"variable {name!r} already declared")
        var = len(self._var_names)
        self._var_names.append(name)
        self._name_to_var[name] = var
        self._var2level.append(len(self._level2var))
        self._level2var.append(var)
        return var

    def var_id(self, name: str) -> int:
        """Return the variable id for ``name`` (raises if undeclared)."""
        try:
            return self._name_to_var[name]
        except KeyError:
            raise BDDError(f"unknown variable {name!r}") from None

    def var_name(self, var: int) -> str:
        """Return the declared name of variable id ``var``."""
        return self._var_names[var]

    def var_level(self, var: int) -> int:
        """Current level (order position) of variable id ``var``."""
        return self._var2level[var]

    def level_var(self, level: int) -> int:
        """Variable id currently sitting at ``level``."""
        return self._level2var[level]

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    @property
    def var_names(self) -> List[str]:
        """Names of all declared variables in declaration order."""
        return list(self._var_names)

    def current_order(self) -> List[str]:
        """Variable names from top level to bottom level."""
        return [self._var_names[v] for v in self._level2var]

    def var(self, name: str) -> int:
        """Return the node for the positive literal of variable ``name``."""
        var = self._name_to_var.get(name)
        if var is None:
            var = self.add_var(name)
        return self._mk(self._var2level[var], FALSE, TRUE)

    def nvar(self, name: str) -> int:
        """Return the node for the negative literal of variable ``name``."""
        var = self._name_to_var.get(name)
        if var is None:
            var = self.add_var(name)
        return self._mk(self._var2level[var], TRUE, FALSE)

    # ------------------------------------------------------------------
    # Node primitives
    # ------------------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (the reduce rule)."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if self._free:
            node = self._free.pop()
            self._level[node] = level
            self._low[node] = low
            self._high[node] = high
        else:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
        self._unique[key] = node
        self._created_nodes += 1
        return node

    def level_of(self, node: int) -> int:
        """Level of ``node`` (``TERMINAL_LEVEL`` for constants)."""
        return self._level[node]

    def low_of(self, node: int) -> int:
        """Low (else) child of ``node``."""
        return self._low[node]

    def high_of(self, node: int) -> int:
        """High (then) child of ``node``."""
        return self._high[node]

    def node_count(self) -> int:
        """Number of live (non-recycled) nodes including terminals."""
        return len(self._level) - len(self._free)

    @property
    def created_nodes(self) -> int:
        """Total number of nodes ever created (a work measure, akin to the
        paper's "BDD nodes" column in Table 2)."""
        return self._created_nodes

    def size(self, node: int) -> int:
        """Number of DAG nodes reachable from ``node`` (including terminals)."""
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if n > TRUE:
                stack.append(self._low[n])
                stack.append(self._high[n])
        return len(seen)

    # ------------------------------------------------------------------
    # Core operators
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f & g) | (~f & h)``, the universal connective."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g], self._level[h])
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        result = self._mk(level, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        """Shannon cofactors of ``node`` with respect to ``level``."""
        if self._level[node] == level:
            return self._low[node], self._high[node]
        return node, node

    def apply_not(self, f: int) -> int:
        """Negation (O(size) without complement edges, memoised)."""
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        cached = self._not_cache.get(f)
        if cached is not None:
            return cached
        result = self._mk(
            self._level[f], self.apply_not(self._low[f]), self.apply_not(self._high[f])
        )
        self._not_cache[f] = result
        # Negation is an involution: seed the reverse direction too.
        self._not_cache[result] = f
        return result

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction with a commutativity-normalised cache."""
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE:
            return f
        if f == g:
            return f
        if f > g:
            f, g = g, f
        key = (_OP_AND, f, g)
        cached = self._bin_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g])
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        result = self._mk(level, self.apply_and(f0, g0), self.apply_and(f1, g1))
        self._bin_cache[key] = result
        return result

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction with a commutativity-normalised cache."""
        if f == TRUE or g == TRUE:
            return TRUE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == g:
            return f
        if f > g:
            f, g = g, f
        key = (_OP_OR, f, g)
        cached = self._bin_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g])
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        result = self._mk(level, self.apply_or(f0, g0), self.apply_or(f1, g1))
        self._bin_cache[key] = result
        return result

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == TRUE:
            return self.apply_not(g)
        if g == TRUE:
            return self.apply_not(f)
        if f > g:
            f, g = g, f
        key = (_OP_XOR, f, g)
        cached = self._bin_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g])
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        result = self._mk(level, self.apply_xor(f0, g0), self.apply_xor(f1, g1))
        self._bin_cache[key] = result
        return result

    def apply_iff(self, f: int, g: int) -> int:
        """Equivalence ``f <-> g``."""
        return self.apply_not(self.apply_xor(f, g))

    def apply_implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self.apply_or(self.apply_not(f), g)

    def apply_diff(self, f: int, g: int) -> int:
        """Set difference ``f & ~g`` (reads naturally on state sets)."""
        return self.apply_and(f, self.apply_not(g))

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------

    def _quant_profile(self, variables: Iterable[int]) -> int:
        """Intern a set of variables to quantify as a small profile id.

        Image computations quantify the same variable sets over and over;
        interning keeps the quantification cache keys small and hashable.
        Profiles are expressed in *levels* and therefore invalidated (cleared)
        by reordering.
        """
        levels = tuple(sorted(self._var2level[v] for v in variables))
        profile = self._quant_profiles.get(levels)
        if profile is None:
            profile = len(self._quant_profile_sets)
            self._quant_profiles[levels] = profile
            self._quant_profile_sets.append(frozenset(levels))
            self._quant_profile_max.append(max(levels) if levels else -1)
        return profile

    def exists(self, f: int, variables: Sequence[int]) -> int:
        """Existential quantification of ``variables`` (ids) out of ``f``."""
        if not variables:
            return f
        return self._exists_profile(f, self._quant_profile(variables))

    def _exists_profile(self, f: int, profile: int) -> int:
        if f <= TRUE:
            return f
        level = self._level[f]
        if level > self._quant_profile_max[profile]:
            return f
        key = (0, f, profile)
        cached = self._quant_cache.get(key)
        if cached is not None:
            return cached
        low = self._exists_profile(self._low[f], profile)
        high = self._exists_profile(self._high[f], profile)
        if level in self._quant_profile_sets[profile]:
            result = self.apply_or(low, high)
        else:
            result = self._mk(level, low, high)
        self._quant_cache[key] = result
        return result

    def forall(self, f: int, variables: Sequence[int]) -> int:
        """Universal quantification of ``variables`` (ids) out of ``f``."""
        if not variables:
            return f
        profile = self._quant_profile(variables)
        return self._forall_profile(f, profile)

    def _forall_profile(self, f: int, profile: int) -> int:
        if f <= TRUE:
            return f
        level = self._level[f]
        if level > self._quant_profile_max[profile]:
            return f
        key = (1, f, profile)
        cached = self._quant_cache.get(key)
        if cached is not None:
            return cached
        low = self._forall_profile(self._low[f], profile)
        high = self._forall_profile(self._high[f], profile)
        if level in self._quant_profile_sets[profile]:
            result = self.apply_and(low, high)
        else:
            result = self._mk(level, low, high)
        self._quant_cache[key] = result
        return result

    def and_exists(self, f: int, g: int, variables: Sequence[int]) -> int:
        """Relational product ``exists variables . (f & g)`` in one pass.

        This is the workhorse of symbolic image computation; fusing the
        conjunction with the quantification avoids building the (often huge)
        intermediate ``f & g``.
        """
        if not variables:
            return self.apply_and(f, g)
        profile = self._quant_profile(variables)
        return self._and_exists_profile(f, g, profile)

    def _and_exists_profile(self, f: int, g: int, profile: int) -> int:
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE and g == TRUE:
            return TRUE
        if f == TRUE:
            return self._exists_profile(g, profile)
        if g == TRUE:
            return self._exists_profile(f, profile)
        if f == g:
            return self._exists_profile(f, profile)
        max_level = self._quant_profile_max[profile]
        if self._level[f] > max_level and self._level[g] > max_level:
            return self.apply_and(f, g)
        if f > g:
            f, g = g, f
        key = (f, g, profile)
        cached = self._relprod_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g])
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        if level in self._quant_profile_sets[profile]:
            low = self._and_exists_profile(f0, g0, profile)
            if low == TRUE:
                result = TRUE
            else:
                result = self.apply_or(low, self._and_exists_profile(f1, g1, profile))
        else:
            result = self._mk(
                level,
                self._and_exists_profile(f0, g0, profile),
                self._and_exists_profile(f1, g1, profile),
            )
        self._relprod_cache[key] = result
        return result

    def and_exists_chain(
        self,
        f: int,
        steps: Sequence[Tuple[int, Sequence[int]]],
    ) -> int:
        """Multi-conjunct relational product executing a quantification schedule.

        Computes ``exists (union of all step variables) . (f & g1 & ... & gk)``
        by folding one conjunct at a time::

            acc = f
            for (g_i, vars_i) in steps:
                acc = exists vars_i . (acc & g_i)

        This is only equal to quantifying everything at the end when the
        schedule is *legal*: a variable listed at step ``i`` must not occur
        in any later conjunct ``g_j`` (``j > i``).  Callers obtain legal
        schedules from :mod:`repro.fsm.partition`, which places each
        variable at its earliest legal step (early quantification).  The
        payoff is that the monolithic ``g1 & ... & gk`` — often the largest
        BDD of a model-checking run — is never built.
        """
        result = f
        for conjunct, variables in steps:
            result = self.and_exists(result, conjunct, variables)
            if result == FALSE:
                return FALSE
        return result

    # ------------------------------------------------------------------
    # Cofactor / composition / renaming
    # ------------------------------------------------------------------

    def restrict(self, f: int, var: int, value: bool) -> int:
        """Cofactor of ``f`` with variable id ``var`` fixed to ``value``."""
        level = self._var2level[var]
        return self._restrict_level(f, level, value)

    def _restrict_level(self, f: int, level: int, value: bool) -> int:
        if f <= TRUE or self._level[f] > level:
            return f
        key = (2 if value else 3, f, level)
        cached = self._quant_cache.get(key)
        if cached is not None:
            return cached
        if self._level[f] == level:
            result = self._high[f] if value else self._low[f]
        else:
            result = self._mk(
                self._level[f],
                self._restrict_level(self._low[f], level, value),
                self._restrict_level(self._high[f], level, value),
            )
        self._quant_cache[key] = result
        return result

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable id ``var`` inside ``f``."""
        return self.compose_many(f, {var: g})

    def compose_many(self, f: int, substitution: Dict[int, int]) -> int:
        """Simultaneous substitution ``{var id -> replacement node}``.

        Simultaneity matters: ``compose_many(f, {x: y, y: x})`` swaps the two
        variables, which sequential composition would not.
        """
        if not substitution:
            return f
        by_level = {self._var2level[v]: g for v, g in substitution.items()}
        # A fresh token keys this substitution in the (shared) compose cache.
        self._compose_token += 1
        self._compose_max_level = max(by_level)
        return self._compose_rec(f, by_level)

    def _compose_rec(self, f: int, by_level: Dict[int, int]) -> int:
        if f <= TRUE or self._level[f] > self._compose_max_level:
            return f
        key = (self._compose_token, f)
        cached = self._compose_cache.get(key)
        if cached is not None:
            return cached
        level = self._level[f]
        low = self._compose_rec(self._low[f], by_level)
        high = self._compose_rec(self._high[f], by_level)
        replacement = by_level.get(level)
        if replacement is None:
            replacement = self._mk(level, FALSE, TRUE)
        result = self.ite(replacement, high, low)
        self._compose_cache[key] = result
        return result

    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables of ``f`` according to ``{old var id -> new var id}``.

        Only the *support* of ``f`` matters: when the level map restricted to
        the support is strictly order-preserving (true for the interleaved
        current<->next FSM encoding), a fast direct rebuild is used;
        otherwise this falls back to simultaneous composition, which is
        always correct.
        """
        if not mapping or f <= TRUE:
            return f
        level_map = {
            self._var2level[old]: self._var2level[new]
            for old, new in mapping.items()
        }
        support_levels = sorted(self._var2level[v] for v in self.support(f))
        mapped = [level_map.get(level, level) for level in support_levels]
        monotone = all(mapped[i] < mapped[i + 1] for i in range(len(mapped) - 1))
        if monotone:
            cache: Dict[int, int] = {}
            return self._rename_rec(f, level_map, cache)
        substitution = {
            old: self._mk(self._var2level[new], FALSE, TRUE)
            for old, new in mapping.items()
        }
        return self.compose_many(f, substitution)

    def _rename_rec(self, f: int, level_map: Dict[int, int], cache: Dict[int, int]) -> int:
        if f <= TRUE:
            return f
        cached = cache.get(f)
        if cached is not None:
            return cached
        level = self._level[f]
        result = self._mk(
            level_map.get(level, level),
            self._rename_rec(self._low[f], level_map, cache),
            self._rename_rec(self._high[f], level_map, cache),
        )
        cache[f] = result
        return result

    # ------------------------------------------------------------------
    # Satisfying assignments
    # ------------------------------------------------------------------

    def satcount(self, f: int, variables: Optional[Sequence[int]] = None) -> int:
        """Number of satisfying assignments of ``f`` over ``variables``.

        ``variables`` (variable ids) defaults to all declared variables and
        must include the support of ``f``.  Variables skipped on a BDD path
        contribute a factor of two each.  The variable set need not be a
        contiguous block of levels — state variables interleaved with
        next-state variables count correctly.
        """
        if variables is None:
            variables = range(self.num_vars)
        levels = sorted(self._var2level[v] for v in variables)
        rank = {lvl: i for i, lvl in enumerate(levels)}
        n = len(levels)
        if f == FALSE:
            return 0
        if f == TRUE:
            return 1 << n
        for var in self.support(f):
            if self._var2level[var] not in rank:
                raise BDDError(
                    f"satcount: function depends on {self._var_names[var]!r} "
                    "which is outside the counting variables"
                )
        memo: Dict[int, int] = {}

        def rec(node: int) -> int:
            # Count over the counting-variables at ranks >= rank(level(node)).
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            cached = memo.get(node)
            if cached is not None:
                return cached
            r = rank[self._level[node]]
            low, high = self._low[node], self._high[node]
            low_rank = rank[self._level[low]] if low > TRUE else n
            high_rank = rank[self._level[high]] if high > TRUE else n
            count = (rec(low) << (low_rank - r - 1)) + (
                rec(high) << (high_rank - r - 1)
            )
            memo[node] = count
            return count

        return rec(f) << rank[self._level[f]]

    def support(self, f: int) -> List[int]:
        """Variable ids (sorted by level) that ``f`` structurally depends on."""
        seen = set()
        levels = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            levels.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return [self._level2var[level] for level in sorted(levels)]

    def iter_cubes(self, f: int) -> Iterator[Dict[int, bool]]:
        """Yield the cubes (partial assignments ``{var id: bool}``) of ``f``.

        Each cube corresponds to one path from the root to TRUE; variables
        skipped on the path are omitted (don't-cares).
        """
        path: Dict[int, bool] = {}

        def rec(node: int) -> Iterator[Dict[int, bool]]:
            if node == FALSE:
                return
            if node == TRUE:
                yield dict(path)
                return
            var = self._level2var[self._level[node]]
            path[var] = False
            yield from rec(self._low[node])
            path[var] = True
            yield from rec(self._high[node])
            del path[var]

        yield from rec(f)

    def iter_sat(self, f: int, variables: Sequence[int]) -> Iterator[Dict[int, bool]]:
        """Yield complete assignments over ``variables`` satisfying ``f``.

        ``f`` must not depend on variables outside ``variables``.
        """
        var_set = set(variables)
        for var in self.support(f):
            if var not in var_set:
                raise BDDError(
                    f"function depends on {self._var_names[var]!r} which is "
                    "not among the enumeration variables"
                )
        ordered = sorted(variables, key=lambda v: self._var2level[v])
        for cube in self.iter_cubes(f):
            free = [v for v in ordered if v not in cube]
            for bits in range(1 << len(free)):
                assignment = dict(cube)
                for i, v in enumerate(free):
                    assignment[v] = bool((bits >> i) & 1)
                yield assignment

    def pick_sat(self, f: int, variables: Sequence[int]) -> Optional[Dict[int, bool]]:
        """Return one satisfying assignment over ``variables`` or ``None``."""
        if f == FALSE:
            return None
        cube = next(self.iter_cubes(f))
        assignment = {v: cube.get(v, False) for v in variables}
        # Preserve cube values for any support variable outside `variables`.
        for var, value in cube.items():
            assignment[var] = value
        return assignment

    def eval_node(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate ``f`` under a complete assignment ``{var id: bool}``."""
        node = f
        while node > TRUE:
            var = self._level2var[self._level[node]]
            try:
                value = assignment[var]
            except KeyError:
                raise BDDError(
                    f"assignment missing variable {self._var_names[var]!r}"
                ) from None
            node = self._high[node] if value else self._low[node]
        return node == TRUE

    def cube(self, assignment: Dict[int, bool]) -> int:
        """Build the conjunction-of-literals node for ``{var id: bool}``."""
        result = TRUE
        for var in sorted(assignment, key=lambda v: self._var2level[v], reverse=True):
            level = self._var2level[var]
            if assignment[var]:
                result = self._mk(level, FALSE, result)
            else:
                result = self._mk(level, result, FALSE)
        return result

    # ------------------------------------------------------------------
    # Cache & garbage management
    # ------------------------------------------------------------------

    def register_external(self, obj) -> None:
        """Track a wrapper object whose ``node`` attribute must stay live."""
        self._external.add(obj)

    def clear_caches(self) -> None:
        """Drop all operation caches (automatically done by GC/reorder)."""
        self._ite_cache.clear()
        self._bin_cache.clear()
        self._not_cache.clear()
        self._quant_cache.clear()
        self._relprod_cache.clear()
        self._compose_cache.clear()

    def collect_garbage(self, extra_roots: Iterable[int] = ()) -> int:
        """Mark-and-sweep: recycle nodes unreachable from live references.

        Roots are the nodes of all live :class:`Function` wrappers, all
        single-variable nodes, and ``extra_roots``.  Returns the number of
        node slots freed.  All operation caches are invalidated.
        """
        roots = set(extra_roots)
        for obj in self._external:
            roots.add(obj.node)
        for var in range(self.num_vars):
            level = self._var2level[var]
            node = self._unique.get((level, FALSE, TRUE))
            if node is not None:
                roots.add(node)
        marked = {FALSE, TRUE}
        stack = [r for r in roots if r > TRUE]
        while stack:
            node = stack.pop()
            if node in marked:
                continue
            marked.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        freed = 0
        dead_keys = [
            key for key, node in self._unique.items() if node not in marked
        ]
        for key in dead_keys:
            node = self._unique.pop(key)
            self._free.append(node)
            freed += 1
        self.clear_caches()
        self._gc_runs += 1
        return freed

    # ------------------------------------------------------------------
    # Debugging helpers
    # ------------------------------------------------------------------

    def to_expr_str(self, f: int, max_nodes: int = 64) -> str:
        """Small human-readable rendering (sum of cubes), for debugging."""
        if f == FALSE:
            return "FALSE"
        if f == TRUE:
            return "TRUE"
        terms = []
        for i, cube in enumerate(self.iter_cubes(f)):
            if i >= max_nodes:
                terms.append("...")
                break
            literals = [
                self._var_names[var] if value else f"!{self._var_names[var]}"
                for var, value in sorted(
                    cube.items(), key=lambda kv: self._var2level[kv[0]]
                )
            ]
            terms.append(" & ".join(literals) if literals else "TRUE")
        return " | ".join(terms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BDDManager vars={self.num_vars} nodes={self.node_count()} "
            f"created={self._created_nodes}>"
        )
