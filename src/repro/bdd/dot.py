"""Graphviz DOT export for BDDs (debugging / documentation aid)."""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from .manager import FALSE, TRUE, BDDManager


def to_dot(
    manager: BDDManager,
    roots: Iterable[Tuple[str, int]],
    title: Optional[str] = None,
) -> str:
    """Render one or more rooted BDDs as a Graphviz ``digraph`` string.

    Parameters
    ----------
    manager:
        The owning manager (for levels and names).
    roots:
        ``(label, node)`` pairs; each labelled root gets an entry arrow.
    title:
        Optional graph label.

    Solid edges are high (then) children, dashed edges are low (else)
    children, matching the convention of Bryant's original paper.
    """
    lines = ["digraph bdd {"]
    if title:
        lines.append(f'  label="{title}";')
    lines.append("  node [shape=circle];")
    lines.append('  0 [shape=box, label="0"];')
    lines.append('  1 [shape=box, label="1"];')
    seen = {FALSE, TRUE}
    stack = []
    for label, node in roots:
        lines.append(f'  "root_{label}" [shape=plaintext, label="{label}"];')
        lines.append(f'  "root_{label}" -> {node};')
        stack.append(node)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        var = manager.level_var(manager.level_of(node))
        name = manager.var_name(var)
        low = manager.low_of(node)
        high = manager.high_of(node)
        lines.append(f'  {node} [label="{name}"];')
        lines.append(f"  {node} -> {low} [style=dashed];")
        lines.append(f"  {node} -> {high};")
        stack.append(low)
        stack.append(high)
    lines.append("}")
    return "\n".join(lines)
