"""Pure-Python ROBDD engine (the symbolic substrate for everything else).

Public surface:

* :class:`BDDManager` — node store and raw node-id operations.
* :class:`Function` — wrapper with Boolean operators, the type the rest of
  the library passes around.
* :class:`ResourcePolicy` — automatic GC / cache-eviction / auto-sift knobs.
* :func:`to_dot` — Graphviz export.
* :func:`sift`, :func:`set_order`, :func:`swap_adjacent` — dynamic variable
  reordering.
* :data:`BACKEND_NAMES` / :func:`create_backend` — pluggable node-store
  kernels (``dict`` and ``array``); see :mod:`repro.bdd.backends`.
"""

from .backends import BACKEND_NAMES, BDDBackend, create_backend
from .dot import to_dot
from .function import Function
from .manager import FALSE, TRUE, BDDManager
from .policy import DEFAULT_POLICY, ResourcePolicy
from .reorder import set_order, sift, swap_adjacent

__all__ = [
    "BDDManager",
    "Function",
    "ResourcePolicy",
    "DEFAULT_POLICY",
    "FALSE",
    "TRUE",
    "to_dot",
    "sift",
    "set_order",
    "swap_adjacent",
    "BDDBackend",
    "BACKEND_NAMES",
    "create_backend",
]
