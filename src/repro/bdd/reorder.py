"""Dynamic variable reordering: adjacent-level swap and Rudell sifting.

The coverage experiments in this repository use a fixed interleaved order
(chosen by the FSM builder), but a credible BDD engine offers reordering, and
the ordering ablation bench (`benchmarks/test_bench_ordering.py`) uses it to
quantify how much the interleaved order matters.

The implementation follows the classic unique-table formulation: swapping
levels ``i`` and ``i+1`` rewrites the nodes at level ``i`` in place, so node
ids (and therefore every outstanding :class:`~repro.bdd.function.Function`)
remain valid across reordering.
"""

from __future__ import annotations

from typing import List, Optional

from .manager import BDDManager


def swap_adjacent(manager: BDDManager, level: int) -> None:
    """Swap the variables at ``level`` and ``level + 1`` in place.

    All node ids keep denoting the same Boolean function.  The node-level
    rewrite (the three-phase sink/float/rewrite sweep) is the backend's
    :meth:`~repro.bdd.backends.base.BDDBackend.swap_adjacent_levels`; this
    function owns the variable<->level bookkeeping and invalidates the
    operation caches and quantification profiles afterwards.
    """
    m = manager
    upper = level
    lower = level + 1
    if lower >= len(m._level2var):
        raise IndexError(f"cannot swap level {level}: no level below it")

    m.backend.swap_adjacent_levels(upper)

    # Swap the variable <-> level bookkeeping.
    var_upper = m._level2var[upper]
    var_lower = m._level2var[lower]
    m._level2var[upper], m._level2var[lower] = var_lower, var_upper
    m._var2level[var_upper] = lower
    m._var2level[var_lower] = upper

    # Levels changed meaning: every cache and level-keyed profile is stale.
    m.backend.invalidate_level_structures()


def move_var_to_level(manager: BDDManager, var: int, target_level: int) -> None:
    """Move variable id ``var`` to ``target_level`` via adjacent swaps."""
    while manager.var_level(var) > target_level:
        swap_adjacent(manager, manager.var_level(var) - 1)
    while manager.var_level(var) < target_level:
        swap_adjacent(manager, manager.var_level(var))


def set_order(manager: BDDManager, names: List[str]) -> None:
    """Reorder so that ``names`` run from the top level downwards.

    ``names`` must be a permutation of all declared variable names.
    """
    declared = set(manager.var_names)
    if set(names) != declared or len(names) != len(declared):
        raise ValueError("set_order requires a permutation of all variables")
    for target_level, name in enumerate(names):
        move_var_to_level(manager, manager.var_id(name), target_level)


def sift(
    manager: BDDManager,
    max_growth: float = 1.2,
    max_vars: Optional[int] = None,
) -> int:
    """Rudell's sifting: greedily move each variable to its best level.

    Variables are processed from the most populated level downwards.  Each
    variable is swapped through every position; it settles where the *live*
    BDD is smallest.  ``max_growth`` aborts a directional sweep early when
    the live size exceeds ``max_growth`` times its size at the sweep start.
    ``max_vars`` sifts only that many variables (the most populated ones) —
    a full pass is O(vars² · live), which the automatic reorder hook cannot
    afford on wide managers; sifting the heaviest few captures most of the
    win (CUDD's ``siftMaxVar`` plays the same role).

    Sizes are measured with :meth:`BDDManager.live_node_count` — nodes
    reachable from live references — after an up-front garbage collection.
    The raw unique-table size would also count dead nodes (accumulated
    garbage from earlier operations plus the dead halves of the swaps the
    sweep itself performs), which skews placement decisions toward whatever
    order happened to leave the most garbage behind.

    Returns the net change in live size (negative is an improvement).
    """
    m = manager
    # Drop accumulated garbage first so the sweep starts from (and measures
    # against) the real live structure, not historical leftovers.
    m.collect_garbage()
    start_size = m.live_node_count()
    nlevels = len(m._level2var)
    # Order variables by how many nodes currently sit at their level.
    occupancy = m.backend.level_occupancy()
    todo = sorted(range(m.num_vars), key=lambda v: -occupancy.get(m.var_level(v), 0))
    if max_vars is not None:
        todo = todo[: max(0, max_vars)]

    for var in todo:
        # Reclaim the previous variable's sweep garbage: swap_adjacent
        # scans the whole unique table per swap, so letting dead nodes
        # accumulate across sweeps turns sifting quadratic in practice.
        m.collect_garbage()
        best_size = m.live_node_count()
        sweep_limit = best_size * max_growth
        original_level = m.var_level(var)
        best_level = original_level

        def measure() -> int:
            # Keep the table near the live size mid-sweep too — one long
            # sweep over a big level strands enough garbage to dominate
            # every later swap's table scan otherwise.
            if m.backend.unique_size() > 2 * best_size + 256:
                m.collect_garbage()
            return m.live_node_count()

        # Sweep down to the bottom.
        while m.var_level(var) < nlevels - 1:
            swap_adjacent(m, m.var_level(var))
            size = measure()
            if size < best_size:
                best_size, best_level = size, m.var_level(var)
            if size > sweep_limit:
                break
        # Sweep up to the top.
        while m.var_level(var) > 0:
            swap_adjacent(m, m.var_level(var) - 1)
            size = measure()
            if size < best_size:
                best_size, best_level = size, m.var_level(var)
            if size > sweep_limit:
                break
        # Settle at the best position seen.
        move_var_to_level(m, var, best_level)

    # The sweeps themselves strand dead nodes in the unique table; reclaim
    # them so the table reflects the chosen order.
    m.collect_garbage()
    return m.live_node_count() - start_size
