"""Resource-management policy for the BDD engine.

A :class:`ResourcePolicy` bundles the knobs of the manager's automatic
resource manager: when to garbage-collect, when to drop operation caches,
how aggressively to evict the compose cache, and whether to trigger
dynamic variable reordering.  The policy travels with the
:class:`~repro.bdd.manager.BDDManager` and is consulted only at *safe
points* — moments when every live BDD is rooted in a
:class:`~repro.bdd.function.Function` wrapper and no raw-node computation
is in flight (see :meth:`~repro.bdd.manager.BDDManager.checkpoint`).

The thresholds use *live node counts* (allocated minus recycled slots),
the quantity that actually bounds memory.  Triggers grow after each
collection (``gc_growth``) so a working set that legitimately exceeds the
threshold does not degenerate into a GC per operation — the classic CUDD
behaviour.  Setting ``gc_growth`` to ``1.0`` pins the trigger at the live
size, which forces a collection at *every* safe point; the GC-safety
stress suite runs entire coverage workloads that way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ResourcePolicy", "DEFAULT_POLICY"]


@dataclass(frozen=True)
class ResourcePolicy:
    """Thresholds and switches of the automatic resource manager.

    Attributes
    ----------
    gc_node_threshold:
        Run a mark-and-sweep collection at the next safe point once the
        live node count reaches this value.  ``0`` disables automatic GC
        entirely (explicit :meth:`~repro.bdd.manager.BDDManager.collect_garbage`
        calls still work).
    gc_growth:
        After an automatic collection the trigger becomes
        ``max(gc_node_threshold, live * gc_growth)``, so a design whose
        live set outgrows the threshold is collected at a geometric rhythm
        instead of every operation.  ``1.0`` forces GC at every safe point.
    cache_entry_threshold:
        Drop all operation caches (without a full GC) once their combined
        entry count reaches this value.  ``0`` disables the cache cap.
    compose_generations:
        The compose cache is keyed by a per-substitution token, so entries
        from finished ``compose_many`` calls can never be hit again; the
        cache is purged after this many substitution generations.  Must be
        at least 1.
    auto_reorder:
        Opt-in hook: sift the variable order at a safe point once the live
        node count reaches ``reorder_node_threshold``.  Off by default —
        reordering changes BDD shapes, hence cube enumeration order, and
        therefore the rendering of traces.
    reorder_node_threshold:
        Live-node trigger for the auto-sift hook.
    reorder_growth:
        Multiplier applied to the reorder trigger after each automatic
        sift (sifting is far too expensive to run at a fixed threshold).
    reorder_max_vars:
        Automatic sifts move only this many variables (the most populated
        ones) per invocation — a full Rudell pass is O(vars² · live) and
        would stall wide managers for minutes; the heaviest few variables
        capture most of the reduction.  ``0`` means sift every variable.
    """

    gc_node_threshold: int = 250_000
    gc_growth: float = 2.0
    cache_entry_threshold: int = 1_000_000
    compose_generations: int = 8
    auto_reorder: bool = False
    reorder_node_threshold: int = 100_000
    reorder_growth: float = 2.0
    reorder_max_vars: int = 12

    def __post_init__(self) -> None:
        if self.gc_node_threshold < 0:
            raise ValueError("gc_node_threshold must be >= 0")
        if self.gc_growth < 1.0:
            raise ValueError("gc_growth must be >= 1.0")
        if self.cache_entry_threshold < 0:
            raise ValueError("cache_entry_threshold must be >= 0")
        if self.compose_generations < 1:
            raise ValueError("compose_generations must be >= 1")
        if self.reorder_node_threshold < 1:
            raise ValueError("reorder_node_threshold must be >= 1")
        if self.reorder_growth < 1.0:
            raise ValueError("reorder_growth must be >= 1.0")
        if self.reorder_max_vars < 0:
            raise ValueError("reorder_max_vars must be >= 0")

    @property
    def gc_enabled(self) -> bool:
        """Whether automatic garbage collection is active."""
        return self.gc_node_threshold > 0

    @classmethod
    def aggressive(cls) -> "ResourcePolicy":
        """Force a collection at every safe point (GC-safety stress mode)."""
        return cls(gc_node_threshold=1, gc_growth=1.0)

    @classmethod
    def disabled(cls) -> "ResourcePolicy":
        """No automatic GC, no cache cap (the pre-policy engine behaviour)."""
        return cls(gc_node_threshold=0, cache_entry_threshold=0)

    def with_(self, **changes) -> "ResourcePolicy":
        """A copy with the given fields replaced (a readable ``replace``)."""
        return replace(self, **changes)


#: The policy a manager gets when none is supplied: auto-GC on with a
#: generous threshold, auto-reorder off.
DEFAULT_POLICY = ResourcePolicy()
