"""The ``array`` backend: struct-of-arrays kernel on flat integer buffers.

Node storage is three parallel ``array('q')`` buffers (level, low, high)
indexed by node id — the struct-of-arrays layout compiled DD packages use,
with no per-node Python object and no per-key tuple.  On top of that:

* an **open-addressed unique table**: one flat ``array('q')`` of node ids,
  probed linearly from an integer hash of ``(level, low, high)``; slot
  value ``0`` means empty (the FALSE terminal is never hash-consed),
* **open-addressed operation caches** (:class:`_OpenCache`): parallel key
  arrays plus a result array, probed the same way.  The caches are *exact*
  growing memo tables — never lossy — so cache hit/miss counters stay
  bit-identical to the ``dict`` backend's (the conformance suite pins
  this),
* **preallocated explicit-iteration stacks**: each kernel reuses one flat
  Python list of integers across calls (frames are pushed as individual
  ints, not tuples).  A checkout protocol (the attribute is ``None`` while
  a kernel runs) keeps the rare reentrant chains — ``and_exists`` calls
  ``exists`` / ``apply_or`` mid-frame — on their own stacks,
* an **index-based GC sweep**: marking paints a ``bytearray`` indexed by
  node id, the sweep walks the node arrays once, rewrites the free list in
  place (``_free[0:_free_len]``), brands freed slots with level ``-1``,
  and rebuilds the unique table without tombstones.

Same algorithms as :mod:`repro.bdd.backends.dict_backend`, different
physics: identical ROBDD structure, identical enumeration order, identical
work counters — only the memory layout and probing differ.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .base import FALSE, TERMINAL_LEVEL, TRUE, BDDBackend

# Tags used to keep the shared binary-op cache collision free.
_OP_AND = 0
_OP_OR = 1
_OP_XOR = 2

# Frame phases of the iterative relational product.
_AE_EXPAND = 0
_AE_AFTER_LOW = 1
_AE_AFTER_HIGH = 2
_AE_AFTER_BOTH = 3

#: Level branded onto recycled node slots (no real level is negative).
_FREE_LEVEL = -1

# Multipliers of the 3-lane integer hash mix (Knuth/murmur-style odd
# constants); shared by the unique table and the op caches.
_MIX_A = 0x9E3779B1
_MIX_B = 0x85EBCA77
_MIX_C = 0xC2B2AE3D

_MIN_CACHE_CAPACITY = 256
_MIN_TABLE_CAPACITY = 256


class _OpenCache:
    """Open-addressed exact memo table from 3 ints to 1 int.

    Three parallel key lanes plus a result lane, all ``array('q')``.  A
    slot is empty while its first key lane holds ``-1`` (all real keys are
    non-negative: node ids, op/phase tags, interned profile ids, compose
    tokens).  ``get`` returns ``-1`` for a miss — results are node ids,
    which are never negative.  The table doubles at 75% load and never
    evicts, so it memoises exactly like the dict it replaces.
    """

    __slots__ = ("_ka", "_kb", "_kc", "_rv", "_mask", "_len")

    def __init__(self, capacity: int = _MIN_CACHE_CAPACITY):
        self._mask = capacity - 1
        self._ka = array("q", [-1]) * capacity
        self._kb = array("q", [0]) * capacity
        self._kc = array("q", [0]) * capacity
        self._rv = array("q", [0]) * capacity
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def get(self, a: int, b: int, c: int) -> int:
        mask = self._mask
        ka = self._ka
        kb = self._kb
        kc = self._kc
        h = ((a * _MIX_A) ^ (b * _MIX_B) ^ (c * _MIX_C)) & mask
        while True:
            cur = ka[h]
            if cur == -1:
                return -1
            if cur == a and kb[h] == b and kc[h] == c:
                return self._rv[h]
            h = (h + 1) & mask

    def put(self, a: int, b: int, c: int, r: int) -> None:
        mask = self._mask
        ka = self._ka
        kb = self._kb
        kc = self._kc
        h = ((a * _MIX_A) ^ (b * _MIX_B) ^ (c * _MIX_C)) & mask
        while True:
            cur = ka[h]
            if cur == -1:
                break
            if cur == a and kb[h] == b and kc[h] == c:
                self._rv[h] = r
                return
            h = (h + 1) & mask
        ka[h] = a
        kb[h] = b
        kc[h] = c
        self._rv[h] = r
        self._len += 1
        if self._len * 4 >= (mask + 1) * 3:
            self._grow()

    def _grow(self) -> None:
        old_ka, old_kb, old_kc, old_rv = self._ka, self._kb, self._kc, self._rv
        capacity = (self._mask + 1) * 2
        self._mask = capacity - 1
        self._ka = array("q", [-1]) * capacity
        self._kb = array("q", [0]) * capacity
        self._kc = array("q", [0]) * capacity
        self._rv = array("q", [0]) * capacity
        mask = self._mask
        ka = self._ka
        kb = self._kb
        kc = self._kc
        rv = self._rv
        for i, a in enumerate(old_ka):
            if a == -1:
                continue
            b = old_kb[i]
            c = old_kc[i]
            h = ((a * _MIX_A) ^ (b * _MIX_B) ^ (c * _MIX_C)) & mask
            while ka[h] != -1:
                h = (h + 1) & mask
            ka[h] = a
            kb[h] = b
            kc[h] = c
            rv[h] = old_rv[i]

    def clear(self) -> None:
        if self._len == 0:
            return
        capacity = _MIN_CACHE_CAPACITY
        self._mask = capacity - 1
        self._ka = array("q", [-1]) * capacity
        self._kb = array("q", [0]) * capacity
        self._kc = array("q", [0]) * capacity
        self._rv = array("q", [0]) * capacity
        self._len = 0


class ArrayBackend(BDDBackend):
    """Node store + kernels on flat ``array('q')`` buffers."""

    name = "array"

    def __init__(self):
        # Parallel node arrays; slots 0/1 are the terminals.  The terminal
        # low/high fields are never read but keep the arrays aligned.
        self._level = array("q", [TERMINAL_LEVEL, TERMINAL_LEVEL])
        self._low = array("q", [FALSE, TRUE])
        self._high = array("q", [FALSE, TRUE])
        # Open-addressed unique table: slot holds a node id, 0 = empty.
        self._u_table = array("q", [0]) * _MIN_TABLE_CAPACITY
        self._u_mask = _MIN_TABLE_CAPACITY - 1
        self._u_len = 0
        # Free list, rewritten in place by the GC sweep: only the prefix
        # ``_free[0:_free_len]`` is meaningful.
        self._free = array("q")
        self._free_len = 0

        # Operation caches.
        self._ite_cache = _OpenCache()
        self._bin_cache = _OpenCache()
        self._not_cache = _OpenCache()
        self._quant_cache = _OpenCache()
        self._relprod_cache = _OpenCache()
        self._compose_cache = _OpenCache()
        self._compose_token = 0
        self._compose_purged_token = 0
        self._compose_max_level = -1
        # Registered quantification profiles: canonical tuple of levels -> id.
        self._quant_profiles: Dict[Tuple[int, ...], int] = {}
        self._quant_profile_sets: List[frozenset] = []
        self._quant_profile_max: List[int] = []

        # Preallocated kernel stacks (flat int lists).  ``None`` while the
        # owning kernel runs — a reentrant call then falls back to a fresh
        # list instead of corrupting the outer frame sequence.
        self._ite_tasks: Optional[List[int]] = []
        self._ite_results: Optional[List[int]] = []
        self._bin_tasks: Optional[List[int]] = []
        self._bin_results: Optional[List[int]] = []
        self._not_tasks: Optional[List[int]] = []
        self._not_results: Optional[List[int]] = []
        self._quant_tasks: Optional[List[int]] = []
        self._quant_results: Optional[List[int]] = []
        self._ae_tasks: Optional[List[int]] = []
        self._ae_results: Optional[List[int]] = []
        self._restrict_tasks: Optional[List[int]] = []
        self._restrict_results: Optional[List[int]] = []
        self._compose_tasks: Optional[List[int]] = []
        self._compose_results: Optional[List[int]] = []

        # Kernel counters — same names and increment points as the dict
        # backend (the conformance suite asserts equality).
        self._created_nodes = 2
        self._ite_hits = 0
        self._ite_misses = 0
        self._bin_hits = [0, 0, 0]
        self._bin_misses = [0, 0, 0]
        self._not_hits = 0
        self._not_misses = 0
        self._quant_hits = 0
        self._quant_misses = 0
        self._restrict_hits = 0
        self._restrict_misses = 0
        self._relprod_hits = 0
        self._relprod_misses = 0
        self._compose_hits = 0
        self._compose_misses = 0
        self._unique_probes = 0
        self._unique_hits = 0

    # ------------------------------------------------------------------
    # Node store
    # ------------------------------------------------------------------

    def mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (the reduce rule)."""
        if low == high:
            return low
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high
        table = self._u_table
        mask = self._u_mask
        self._unique_probes += 1
        h = ((level * _MIX_A) ^ (low * _MIX_B) ^ (high * _MIX_C)) & mask
        while True:
            node = table[h]
            if node == 0:
                break
            if (
                level_arr[node] == level
                and low_arr[node] == low
                and high_arr[node] == high
            ):
                self._unique_hits += 1
                return node
            h = (h + 1) & mask
        if self._free_len:
            self._free_len -= 1
            node = self._free[self._free_len]
            level_arr[node] = level
            low_arr[node] = low
            high_arr[node] = high
        else:
            node = len(level_arr)
            level_arr.append(level)
            low_arr.append(low)
            high_arr.append(high)
        table[h] = node
        self._u_len += 1
        self._created_nodes += 1
        if self._u_len * 4 >= (mask + 1) * 3:
            self._grow_table()
        return node

    def find(self, level: int, low: int, high: int) -> Optional[int]:
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high
        table = self._u_table
        mask = self._u_mask
        h = ((level * _MIX_A) ^ (low * _MIX_B) ^ (high * _MIX_C)) & mask
        while True:
            node = table[h]
            if node == 0:
                return None
            if (
                level_arr[node] == level
                and low_arr[node] == low
                and high_arr[node] == high
            ):
                return node
            h = (h + 1) & mask

    def _grow_table(self) -> None:
        self._rebuild_table(capacity=(self._u_mask + 1) * 2)

    def _table_insert(self, node: int) -> None:
        """Insert ``node`` under its current field key (no counters).

        Mirrors the dict backend's raw ``_unique[key] = node`` writes during
        level swaps: an existing entry with the same key is displaced.
        """
        level = self._level[node]
        low = self._low[node]
        high = self._high[node]
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high
        table = self._u_table
        mask = self._u_mask
        h = ((level * _MIX_A) ^ (low * _MIX_B) ^ (high * _MIX_C)) & mask
        while True:
            cur = table[h]
            if cur == 0:
                table[h] = node
                self._u_len += 1
                if self._u_len * 4 >= (mask + 1) * 3:
                    self._grow_table()
                return
            if (
                level_arr[cur] == level
                and low_arr[cur] == low
                and high_arr[cur] == high
            ):
                table[h] = node
                return
            h = (h + 1) & mask

    def _rebuild_table(
        self,
        capacity: Optional[int] = None,
        skip_levels: Tuple[int, ...] = (),
    ) -> None:
        """Re-hash every live node into a fresh table.

        Open addressing has no cheap deletion; bulk removals (the GC sweep,
        the two levels of an adjacent swap) rebuild instead, which also
        compacts probe chains.  Nodes whose level is in ``skip_levels`` are
        left out (the swap re-inserts them phase by phase).
        """
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high
        if capacity is None:
            # Enough room for every allocated slot at <= 50% load.
            capacity = _MIN_TABLE_CAPACITY
            need = (len(level_arr) - self._free_len) * 2
            while capacity < need:
                capacity *= 2
        table = array("q", [0]) * capacity
        mask = capacity - 1
        count = 0
        for node in range(2, len(level_arr)):
            level = level_arr[node]
            if level == _FREE_LEVEL or level in skip_levels:
                continue
            low = low_arr[node]
            high = high_arr[node]
            h = ((level * _MIX_A) ^ (low * _MIX_B) ^ (high * _MIX_C)) & mask
            while True:
                cur = table[h]
                if cur == 0:
                    table[h] = node
                    count += 1
                    break
                if (
                    level_arr[cur] == level
                    and low_arr[cur] == low
                    and high_arr[cur] == high
                ):
                    break  # duplicate function (transient swap artefact)
                h = (h + 1) & mask
        self._u_table = table
        self._u_mask = mask
        self._u_len = count

    def level_of(self, node: int) -> int:
        return self._level[node]

    def low_of(self, node: int) -> int:
        return self._low[node]

    def high_of(self, node: int) -> int:
        return self._high[node]

    def node_count(self) -> int:
        return len(self._level) - self._free_len

    def unique_size(self) -> int:
        return self._u_len

    @property
    def created_nodes(self) -> int:
        return self._created_nodes

    def size(self, node: int) -> int:
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if n > TRUE:
                stack.append(self._low[n])
                stack.append(self._high[n])
        return len(seen)

    # ------------------------------------------------------------------
    # Core operators
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high
        cache = self._ite_cache
        cache_get = cache.get
        cache_put = cache.put
        hits = misses = 0
        tasks = self._ite_tasks
        results = self._ite_results
        if tasks is None or results is None:
            tasks = []
            results = []
        else:
            self._ite_tasks = None
            self._ite_results = None
        # Frames are 4 flat ints: f, g, h, combine-flag.
        tasks.append(f)
        tasks.append(g)
        tasks.append(h)
        tasks.append(0)
        while tasks:
            combine = tasks.pop()
            h = tasks.pop()
            g = tasks.pop()
            f = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                level = min(level_arr[f], level_arr[g], level_arr[h])
                result = self.mk(level, low, high)
                cache_put(f, g, h, result)
                results.append(result)
                continue
            if f == TRUE:
                results.append(g)
                continue
            if f == FALSE:
                results.append(h)
                continue
            if g == h:
                results.append(g)
                continue
            if g == TRUE and h == FALSE:
                results.append(f)
                continue
            cached = cache_get(f, g, h)
            if cached >= 0:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            level = min(level_arr[f], level_arr[g], level_arr[h])
            if level_arr[f] == level:
                f0, f1 = low_arr[f], high_arr[f]
            else:
                f0 = f1 = f
            if level_arr[g] == level:
                g0, g1 = low_arr[g], high_arr[g]
            else:
                g0 = g1 = g
            if level_arr[h] == level:
                h0, h1 = low_arr[h], high_arr[h]
            else:
                h0 = h1 = h
            tasks.append(f)
            tasks.append(g)
            tasks.append(h)
            tasks.append(1)
            tasks.append(f1)
            tasks.append(g1)
            tasks.append(h1)
            tasks.append(0)
            tasks.append(f0)
            tasks.append(g0)
            tasks.append(h0)
            tasks.append(0)
        self._ite_hits += hits
        self._ite_misses += misses
        result = results.pop()
        self._ite_tasks = tasks
        self._ite_results = results
        return result

    def apply_not(self, f: int) -> int:
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        cache = self._not_cache
        cache_get = cache.get
        cache_put = cache.put
        cached = cache_get(f, 0, 0)
        if cached >= 0:
            self._not_hits += 1
            return cached
        level_arr = self._level
        hits = misses = 0
        tasks = self._not_tasks
        results = self._not_results
        if tasks is None or results is None:
            tasks = []
            results = []
        else:
            self._not_tasks = None
            self._not_results = None
        # Frames are 2 flat ints: f, combine-flag.
        tasks.append(f)
        tasks.append(0)
        while tasks:
            combine = tasks.pop()
            f = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                result = self.mk(level_arr[f], low, high)
                cache_put(f, 0, 0, result)
                # Negation is an involution: seed the reverse direction too.
                cache_put(result, 0, 0, f)
                results.append(result)
                continue
            if f == FALSE:
                results.append(TRUE)
                continue
            if f == TRUE:
                results.append(FALSE)
                continue
            cached = cache_get(f, 0, 0)
            if cached >= 0:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            tasks.append(f)
            tasks.append(1)
            tasks.append(self._high[f])
            tasks.append(0)
            tasks.append(self._low[f])
            tasks.append(0)
        self._not_hits += hits
        self._not_misses += misses
        result = results.pop()
        self._not_tasks = tasks
        self._not_results = results
        return result

    def _apply_bin(self, op: int, f: int, g: int) -> int:
        """Iterative core shared by the three memoised binary operators."""
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high
        cache = self._bin_cache
        cache_get = cache.get
        cache_put = cache.put
        hits = misses = 0
        tasks = self._bin_tasks
        results = self._bin_results
        if tasks is None or results is None:
            tasks = []
            results = []
        else:
            self._bin_tasks = None
            self._bin_results = None
        # Frames are 3 flat ints: f, g, combine-flag.
        tasks.append(f)
        tasks.append(g)
        tasks.append(0)
        while tasks:
            combine = tasks.pop()
            g = tasks.pop()
            f = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                lf, lg = level_arr[f], level_arr[g]
                result = self.mk(lf if lf < lg else lg, low, high)
                cache_put(op, f, g, result)
                results.append(result)
                continue
            # Operator-specific terminal cases (same rules as the classic
            # recursive formulation).
            if op == _OP_AND:
                if f == FALSE or g == FALSE:
                    results.append(FALSE)
                    continue
                if f == TRUE:
                    results.append(g)
                    continue
                if g == TRUE or f == g:
                    results.append(f)
                    continue
            elif op == _OP_OR:
                if f == TRUE or g == TRUE:
                    results.append(TRUE)
                    continue
                if f == FALSE:
                    results.append(g)
                    continue
                if g == FALSE or f == g:
                    results.append(f)
                    continue
            else:  # _OP_XOR
                if f == g:
                    results.append(FALSE)
                    continue
                if f == FALSE:
                    results.append(g)
                    continue
                if g == FALSE:
                    results.append(f)
                    continue
                if f == TRUE:
                    results.append(self.apply_not(g))
                    continue
                if g == TRUE:
                    results.append(self.apply_not(f))
                    continue
            if f > g:  # commutativity-normalised cache
                f, g = g, f
            cached = cache_get(op, f, g)
            if cached >= 0:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            lf, lg = level_arr[f], level_arr[g]
            level = lf if lf < lg else lg
            if lf == level:
                f0, f1 = low_arr[f], high_arr[f]
            else:
                f0 = f1 = f
            if lg == level:
                g0, g1 = low_arr[g], high_arr[g]
            else:
                g0 = g1 = g
            tasks.append(f)
            tasks.append(g)
            tasks.append(1)
            tasks.append(f1)
            tasks.append(g1)
            tasks.append(0)
            tasks.append(f0)
            tasks.append(g0)
            tasks.append(0)
        self._bin_hits[op] += hits
        self._bin_misses[op] += misses
        result = results.pop()
        self._bin_tasks = tasks
        self._bin_results = results
        return result

    def apply_and(self, f: int, g: int) -> int:
        return self._apply_bin(_OP_AND, f, g)

    def apply_or(self, f: int, g: int) -> int:
        return self._apply_bin(_OP_OR, f, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self._apply_bin(_OP_XOR, f, g)

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------

    def _quant_profile(self, levels: Sequence[int]) -> int:
        key = tuple(levels)
        profile = self._quant_profiles.get(key)
        if profile is None:
            profile = len(self._quant_profile_sets)
            self._quant_profiles[key] = profile
            self._quant_profile_sets.append(frozenset(key))
            self._quant_profile_max.append(max(key) if key else -1)
        return profile

    def _quantify_profile(self, f: int, profile: int, disjunctive: bool) -> int:
        level_arr = self._level
        qset = self._quant_profile_sets[profile]
        qmax = self._quant_profile_max[profile]
        cache = self._quant_cache
        cache_get = cache.get
        cache_put = cache.put
        tag = 0 if disjunctive else 1
        hits = misses = 0
        tasks = self._quant_tasks
        results = self._quant_results
        if tasks is None or results is None:
            tasks = []
            results = []
        else:
            self._quant_tasks = None
            self._quant_results = None
        tasks.append(f)
        tasks.append(0)
        while tasks:
            combine = tasks.pop()
            f = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                level = level_arr[f]
                if level in qset:
                    if disjunctive:
                        result = self.apply_or(low, high)
                    else:
                        result = self.apply_and(low, high)
                else:
                    result = self.mk(level, low, high)
                cache_put(tag, f, profile, result)
                results.append(result)
                continue
            if f <= TRUE or level_arr[f] > qmax:
                results.append(f)
                continue
            cached = cache_get(tag, f, profile)
            if cached >= 0:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            tasks.append(f)
            tasks.append(1)
            tasks.append(self._high[f])
            tasks.append(0)
            tasks.append(self._low[f])
            tasks.append(0)
        self._quant_hits += hits
        self._quant_misses += misses
        result = results.pop()
        self._quant_tasks = tasks
        self._quant_results = results
        return result

    def _exists_profile(self, f: int, profile: int) -> int:
        return self._quantify_profile(f, profile, disjunctive=True)

    def exists_levels(self, f: int, levels: Sequence[int]) -> int:
        if not levels:
            return f
        return self._exists_profile(f, self._quant_profile(levels))

    def forall_levels(self, f: int, levels: Sequence[int]) -> int:
        if not levels:
            return f
        return self._quantify_profile(
            f, self._quant_profile(levels), disjunctive=False
        )

    def and_exists_levels(self, f: int, g: int, levels: Sequence[int]) -> int:
        if not levels:
            return self.apply_and(f, g)
        return self._and_exists_profile(f, g, self._quant_profile(levels))

    def _and_exists_profile(self, f: int, g: int, profile: int) -> int:
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high
        qset = self._quant_profile_sets[profile]
        qmax = self._quant_profile_max[profile]
        cache = self._relprod_cache
        cache_get = cache.get
        cache_put = cache.put
        hits = misses = 0
        tasks = self._ae_tasks
        results = self._ae_results
        if tasks is None or results is None:
            tasks = []
            results = []
        else:
            self._ae_tasks = None
            self._ae_results = None
        # Frames are 5 flat ints: phase, f, g, c, d (see dict backend for
        # the per-phase payload meanings).
        tasks.append(_AE_EXPAND)
        tasks.append(f)
        tasks.append(g)
        tasks.append(0)
        tasks.append(0)
        while tasks:
            d = tasks.pop()
            c = tasks.pop()
            g = tasks.pop()
            f = tasks.pop()
            phase = tasks.pop()
            if phase == _AE_EXPAND:
                if f == FALSE or g == FALSE:
                    results.append(FALSE)
                    continue
                if f == TRUE and g == TRUE:
                    results.append(TRUE)
                    continue
                if f == TRUE:
                    results.append(self._exists_profile(g, profile))
                    continue
                if g == TRUE or f == g:
                    results.append(self._exists_profile(f, profile))
                    continue
                if level_arr[f] > qmax and level_arr[g] > qmax:
                    results.append(self.apply_and(f, g))
                    continue
                if f > g:
                    f, g = g, f
                cached = cache_get(f, g, profile)
                if cached >= 0:
                    hits += 1
                    results.append(cached)
                    continue
                misses += 1
                lf, lg = level_arr[f], level_arr[g]
                level = lf if lf < lg else lg
                if lf == level:
                    f0, f1 = low_arr[f], high_arr[f]
                else:
                    f0 = f1 = f
                if lg == level:
                    g0, g1 = low_arr[g], high_arr[g]
                else:
                    g0 = g1 = g
                if level in qset:
                    # Quantified level: compute the low branch first and
                    # short-circuit the high branch when it is already TRUE.
                    tasks.append(_AE_AFTER_LOW)
                    tasks.append(f)
                    tasks.append(g)
                    tasks.append(f1)
                    tasks.append(g1)
                    tasks.append(_AE_EXPAND)
                    tasks.append(f0)
                    tasks.append(g0)
                    tasks.append(0)
                    tasks.append(0)
                else:
                    tasks.append(_AE_AFTER_BOTH)
                    tasks.append(f)
                    tasks.append(g)
                    tasks.append(0)
                    tasks.append(0)
                    tasks.append(_AE_EXPAND)
                    tasks.append(f1)
                    tasks.append(g1)
                    tasks.append(0)
                    tasks.append(0)
                    tasks.append(_AE_EXPAND)
                    tasks.append(f0)
                    tasks.append(g0)
                    tasks.append(0)
                    tasks.append(0)
            elif phase == _AE_AFTER_LOW:
                low = results.pop()
                if low == TRUE:
                    cache_put(f, g, profile, TRUE)
                    results.append(TRUE)
                    continue
                tasks.append(_AE_AFTER_HIGH)
                tasks.append(f)
                tasks.append(g)
                tasks.append(low)
                tasks.append(0)
                tasks.append(_AE_EXPAND)
                tasks.append(c)
                tasks.append(d)
                tasks.append(0)
                tasks.append(0)
            elif phase == _AE_AFTER_HIGH:
                high = results.pop()
                result = self.apply_or(c, high)
                cache_put(f, g, profile, result)
                results.append(result)
            else:  # _AE_AFTER_BOTH
                high = results.pop()
                low = results.pop()
                lf, lg = level_arr[f], level_arr[g]
                result = self.mk(lf if lf < lg else lg, low, high)
                cache_put(f, g, profile, result)
                results.append(result)
        self._relprod_hits += hits
        self._relprod_misses += misses
        result = results.pop()
        self._ae_tasks = tasks
        self._ae_results = results
        return result

    # ------------------------------------------------------------------
    # Cofactor / composition / renaming
    # ------------------------------------------------------------------

    def restrict_level(self, f: int, level: int, value: bool) -> int:
        level_arr = self._level
        cache = self._quant_cache
        cache_get = cache.get
        cache_put = cache.put
        tag = 2 if value else 3
        hits = misses = 0
        tasks = self._restrict_tasks
        results = self._restrict_results
        if tasks is None or results is None:
            tasks = []
            results = []
        else:
            self._restrict_tasks = None
            self._restrict_results = None
        tasks.append(f)
        tasks.append(0)
        while tasks:
            combine = tasks.pop()
            f = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                result = self.mk(level_arr[f], low, high)
                cache_put(tag, f, level, result)
                results.append(result)
                continue
            if f <= TRUE or level_arr[f] > level:
                results.append(f)
                continue
            cached = cache_get(tag, f, level)
            if cached >= 0:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            if level_arr[f] == level:
                # The restricted variable cannot reappear below its level,
                # so the chosen child is already fully restricted.
                result = self._high[f] if value else self._low[f]
                cache_put(tag, f, level, result)
                results.append(result)
                continue
            tasks.append(f)
            tasks.append(1)
            tasks.append(self._high[f])
            tasks.append(0)
            tasks.append(self._low[f])
            tasks.append(0)
        self._restrict_hits += hits
        self._restrict_misses += misses
        result = results.pop()
        self._restrict_tasks = tasks
        self._restrict_results = results
        return result

    def compose_levels(self, f: int, by_level: Dict[int, int]) -> int:
        if not by_level:
            return f
        # A fresh token keys this substitution in the (shared) compose
        # cache; stale generations are purged wholesale (see dict backend).
        self._compose_token += 1
        if (
            self._compose_token - self._compose_purged_token
            >= self.compose_generations
        ):
            self._compose_cache.clear()
            self._compose_purged_token = self._compose_token
        self._compose_max_level = max(by_level)
        return self._compose_rec(f, by_level)

    def _compose_rec(self, f: int, by_level: Dict[int, int]) -> int:
        level_arr = self._level
        max_level = self._compose_max_level
        token = self._compose_token
        cache = self._compose_cache
        cache_get = cache.get
        cache_put = cache.put
        hits = misses = 0
        tasks = self._compose_tasks
        results = self._compose_results
        if tasks is None or results is None:
            tasks = []
            results = []
        else:
            self._compose_tasks = None
            self._compose_results = None
        tasks.append(f)
        tasks.append(0)
        while tasks:
            combine = tasks.pop()
            f = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                level = level_arr[f]
                replacement = by_level.get(level)
                if replacement is None:
                    replacement = self.mk(level, FALSE, TRUE)
                result = self.ite(replacement, high, low)
                cache_put(token, f, 0, result)
                results.append(result)
                continue
            if f <= TRUE or level_arr[f] > max_level:
                results.append(f)
                continue
            cached = cache_get(token, f, 0)
            if cached >= 0:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            tasks.append(f)
            tasks.append(1)
            tasks.append(self._high[f])
            tasks.append(0)
            tasks.append(self._low[f])
            tasks.append(0)
        self._compose_hits += hits
        self._compose_misses += misses
        result = results.pop()
        self._compose_tasks = tasks
        self._compose_results = results
        return result

    def rename_monotone(self, f: int, level_map: Dict[int, int]) -> int:
        level_arr = self._level
        cache: Dict[int, int] = {}
        tasks: List[int] = [f, 0]
        results: List[int] = []
        while tasks:
            combine = tasks.pop()
            f = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                level = level_arr[f]
                result = self.mk(level_map.get(level, level), low, high)
                cache[f] = result
                results.append(result)
                continue
            if f <= TRUE:
                results.append(f)
                continue
            cached = cache.get(f)
            if cached is not None:
                results.append(cached)
                continue
            tasks.append(f)
            tasks.append(1)
            tasks.append(self._high[f])
            tasks.append(0)
            tasks.append(self._low[f])
            tasks.append(0)
        return results[0]

    # ------------------------------------------------------------------
    # Satisfying assignments
    # ------------------------------------------------------------------

    def satcount_levels(self, f: int, levels: Sequence[int]) -> int:
        rank = {lvl: i for i, lvl in enumerate(levels)}
        n = len(rank)
        if f == FALSE:
            return 0
        if f == TRUE:
            return 1 << n
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high
        # Counts are arbitrary-precision, so the memo stays a Python dict.
        memo: Dict[int, int] = {FALSE: 0, TRUE: 1}
        tasks: List[int] = [f, 0]
        while tasks:
            combine = tasks.pop()
            node = tasks.pop()
            if combine:
                r = rank[level_arr[node]]
                low, high = low_arr[node], high_arr[node]
                low_rank = rank[level_arr[low]] if low > TRUE else n
                high_rank = rank[level_arr[high]] if high > TRUE else n
                memo[node] = (memo[low] << (low_rank - r - 1)) + (
                    memo[high] << (high_rank - r - 1)
                )
                continue
            if node in memo:
                continue
            tasks.append(node)
            tasks.append(1)
            tasks.append(high_arr[node])
            tasks.append(0)
            tasks.append(low_arr[node])
            tasks.append(0)
        return memo[f] << rank[self._level[f]]

    def support_levels(self, f: int) -> List[int]:
        seen = set()
        levels = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            levels.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return sorted(levels)

    def iter_cube_paths(self, f: int) -> Iterator[List[Tuple[int, bool]]]:
        if f == FALSE:
            return
        path: List[Tuple[int, bool]] = []
        # Same low-first DFS as the dict backend (enumeration order is part
        # of the backend contract).
        stack: List[Tuple[int, int, int, bool]] = [(f, 0, -1, False)]
        while stack:
            node, plen, level, value = stack.pop()
            del path[plen:]
            if level >= 0:
                path.append((level, value))
            if node == FALSE:
                continue
            if node == TRUE:
                yield list(path)
                continue
            lvl = self._level[node]
            depth = len(path)
            stack.append((self._high[node], depth, lvl, True))
            stack.append((self._low[node], depth, lvl, False))

    def cube_levels(self, assignment: Dict[int, bool]) -> int:
        result = TRUE
        for level in sorted(assignment, reverse=True):
            if assignment[level]:
                result = self.mk(level, FALSE, result)
            else:
                result = self.mk(level, result, FALSE)
        return result

    # ------------------------------------------------------------------
    # Caches, garbage, reordering support
    # ------------------------------------------------------------------

    def clear_caches(self) -> None:
        self._ite_cache.clear()
        self._bin_cache.clear()
        self._not_cache.clear()
        self._quant_cache.clear()
        self._relprod_cache.clear()
        self._compose_cache.clear()
        self._compose_purged_token = self._compose_token

    def cache_entry_count(self) -> int:
        return (
            len(self._ite_cache)
            + len(self._bin_cache)
            + len(self._not_cache)
            + len(self._quant_cache)
            + len(self._relprod_cache)
            + len(self._compose_cache)
        )

    def _mark(self, roots: Iterable[int]) -> bytearray:
        marked = bytearray(len(self._level))
        marked[FALSE] = 1
        marked[TRUE] = 1
        low_arr = self._low
        high_arr = self._high
        stack = [r for r in roots if r > TRUE]
        while stack:
            node = stack.pop()
            if marked[node]:
                continue
            marked[node] = 1
            stack.append(low_arr[node])
            stack.append(high_arr[node])
        return marked

    def collect(self, roots: Iterable[int]) -> int:
        marked = self._mark(roots)
        level_arr = self._level
        free = self._free
        free_len = self._free_len
        free_cap = len(free)
        freed = 0
        # Index sweep: brand dead slots and rewrite the free list in place
        # (only the prefix [0:_free_len] is live; the tail is reused
        # scratch from earlier sweeps).
        for node in range(2, len(level_arr)):
            if level_arr[node] != _FREE_LEVEL and not marked[node]:
                level_arr[node] = _FREE_LEVEL
                if free_len < free_cap:
                    free[free_len] = node
                else:
                    free.append(node)
                    free_cap += 1
                free_len += 1
                freed += 1
        self._free_len = free_len
        if freed:
            # The unique table still references the swept slots; rebuild it
            # from the survivors (open addressing has no cheap deletion).
            # Caches may reference recycled slots too — drop them.  As in
            # the dict backend, a sweep that freed nothing keeps both.
            self._rebuild_table()
            self.clear_caches()
        return freed

    def live_count(self, roots: Iterable[int]) -> int:
        marked = self._mark(roots)
        count = 0
        for flag in marked:
            count += flag
        return count

    def level_occupancy(self) -> Dict[int, int]:
        occupancy: Dict[int, int] = {}
        level_arr = self._level
        for node in range(2, len(level_arr)):
            lvl = level_arr[node]
            if lvl != _FREE_LEVEL:
                occupancy[lvl] = occupancy.get(lvl, 0) + 1
        return occupancy

    def swap_adjacent_levels(self, upper: int) -> None:
        lower = upper + 1
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high

        # Partition the two levels' nodes; rebuild the unique table without
        # them (they are re-inserted phase by phase below).
        upper_nodes: List[int] = []
        lower_nodes: List[int] = []
        for node in range(2, len(level_arr)):
            lvl = level_arr[node]
            if lvl == upper:
                upper_nodes.append(node)
            elif lvl == lower:
                lower_nodes.append(node)
        self._rebuild_table(skip_levels=(upper, lower))

        # Phase 1: old upper-level nodes that do NOT depend on the lower
        # variable simply sink one level (same children, same function).
        dependent: List[int] = []
        for node in upper_nodes:
            low, high = low_arr[node], high_arr[node]
            if level_arr[low] == lower or level_arr[high] == lower:
                dependent.append(node)
            else:
                level_arr[node] = lower
                self._table_insert(node)

        # Phase 2: old lower-level nodes float up (their children are
        # strictly below both levels, so they are well-formed at the upper
        # level).
        for node in lower_nodes:
            level_arr[node] = upper
            self._table_insert(node)

        # Phase 3: rewrite the dependent nodes in place (see the dict
        # backend for the cofactor algebra and the phase-2 invariant).
        for node in dependent:
            f0, f1 = low_arr[node], high_arr[node]
            if level_arr[f0] == upper:
                f00, f01 = low_arr[f0], high_arr[f0]
            else:
                f00 = f01 = f0
            if level_arr[f1] == upper:
                f10, f11 = low_arr[f1], high_arr[f1]
            else:
                f10 = f11 = f1
            new_low = self.mk(lower, f00, f10)
            new_high = self.mk(lower, f01, f11)
            level_arr[node] = upper
            low_arr[node] = new_low
            high_arr[node] = new_high
            self._table_insert(node)

    def invalidate_level_structures(self) -> None:
        self.clear_caches()
        self._quant_profiles.clear()
        self._quant_profile_sets.clear()
        self._quant_profile_max.clear()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {
            "nodes_created": self._created_nodes,
            "unique_probes": self._unique_probes,
            "unique_hits": self._unique_hits,
            "ite_hits": self._ite_hits,
            "ite_misses": self._ite_misses,
            "and_hits": self._bin_hits[_OP_AND],
            "and_misses": self._bin_misses[_OP_AND],
            "or_hits": self._bin_hits[_OP_OR],
            "or_misses": self._bin_misses[_OP_OR],
            "xor_hits": self._bin_hits[_OP_XOR],
            "xor_misses": self._bin_misses[_OP_XOR],
            "not_hits": self._not_hits,
            "not_misses": self._not_misses,
            "quant_hits": self._quant_hits,
            "quant_misses": self._quant_misses,
            "restrict_hits": self._restrict_hits,
            "restrict_misses": self._restrict_misses,
            "relprod_hits": self._relprod_hits,
            "relprod_misses": self._relprod_misses,
            "compose_hits": self._compose_hits,
            "compose_misses": self._compose_misses,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ArrayBackend nodes={self.node_count()} "
            f"created={self._created_nodes}>"
        )
