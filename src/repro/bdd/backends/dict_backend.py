"""The ``dict`` backend: tuple-keyed hash consing on Python dicts.

This is the historical engine of this repository, verbatim: parallel
Python lists for the node fields, a ``(level, low, high) -> node`` dict as
the unique table, and one dict per operation cache.  It is the reference
implementation the conformance suite measures every other backend against,
and the default engine (``EngineConfig(backend="dict")``).

Every traversal is **iterative** (explicit work stacks), so the kernel's
depth limit is available memory, not Python's recursion limit: a
1400-level BDD chain is as routine as a 14-level one.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .base import FALSE, TERMINAL_LEVEL, TRUE, BDDBackend

# Tags used to keep the shared binary-op cache collision free.
_OP_AND = 0
_OP_OR = 1
_OP_XOR = 2

# Frame phases of the iterative relational product.
_AE_EXPAND = 0
_AE_AFTER_LOW = 1
_AE_AFTER_HIGH = 2
_AE_AFTER_BOTH = 3


class DictBackend(BDDBackend):
    """Node store + kernels on Python dicts and lists."""

    name = "dict"

    def __init__(self):
        # Parallel node arrays; slots 0/1 are the terminals.  The terminal
        # low/high fields are never read but keep the arrays aligned.
        self._level: List[int] = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self._low: List[int] = [FALSE, TRUE]
        self._high: List[int] = [FALSE, TRUE]
        # Hash-consing table: (level, low, high) -> node id.
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Recycled node slots (filled by collect).
        self._free: List[int] = []

        # Operation caches.
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._bin_cache: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._quant_cache: Dict[Tuple[int, int, int], int] = {}
        self._relprod_cache: Dict[Tuple[int, int, int], int] = {}
        self._compose_cache: Dict[Tuple[int, int], int] = {}
        self._compose_token = 0
        self._compose_purged_token = 0
        self._compose_max_level = -1
        # Registered quantification profiles: canonical tuple of levels -> id.
        self._quant_profiles: Dict[Tuple[int, ...], int] = {}
        self._quant_profile_sets: List[frozenset] = []
        self._quant_profile_max: List[int] = []

        # Kernel counters (see :meth:`counters`).  All of them measure
        # *work*, never results: deterministic for a given operation
        # sequence, monotone, and cheap.
        self._created_nodes = 2
        self._ite_hits = 0
        self._ite_misses = 0
        self._bin_hits = [0, 0, 0]  # indexed by _OP_AND/_OP_OR/_OP_XOR
        self._bin_misses = [0, 0, 0]
        self._not_hits = 0
        self._not_misses = 0
        self._quant_hits = 0
        self._quant_misses = 0
        self._restrict_hits = 0
        self._restrict_misses = 0
        self._relprod_hits = 0
        self._relprod_misses = 0
        self._compose_hits = 0
        self._compose_misses = 0
        # Unique-table (hash-consing) pressure: probes are mk lookups that
        # reached the table (the reduce rule short-circuits before
        # probing); hits found an existing node, so probes - hits equals
        # nodes created.
        self._unique_probes = 0
        self._unique_hits = 0

    # ------------------------------------------------------------------
    # Node store
    # ------------------------------------------------------------------

    def mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (the reduce rule)."""
        if low == high:
            return low
        key = (level, low, high)
        self._unique_probes += 1
        node = self._unique.get(key)
        if node is not None:
            self._unique_hits += 1
            return node
        if self._free:
            node = self._free.pop()
            self._level[node] = level
            self._low[node] = low
            self._high[node] = high
        else:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
        self._unique[key] = node
        self._created_nodes += 1
        return node

    def find(self, level: int, low: int, high: int) -> Optional[int]:
        return self._unique.get((level, low, high))

    def level_of(self, node: int) -> int:
        return self._level[node]

    def low_of(self, node: int) -> int:
        return self._low[node]

    def high_of(self, node: int) -> int:
        return self._high[node]

    def node_count(self) -> int:
        return len(self._level) - len(self._free)

    def unique_size(self) -> int:
        return len(self._unique)

    @property
    def created_nodes(self) -> int:
        return self._created_nodes

    def size(self, node: int) -> int:
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if n > TRUE:
                stack.append(self._low[n])
                stack.append(self._high[n])
        return len(seen)

    # ------------------------------------------------------------------
    # Core operators
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high
        cache = self._ite_cache
        hits = misses = 0
        tasks: List[Tuple[int, int, int, bool]] = [(f, g, h, False)]
        results: List[int] = []
        while tasks:
            f, g, h, combine = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                level = min(level_arr[f], level_arr[g], level_arr[h])
                result = self.mk(level, low, high)
                cache[(f, g, h)] = result
                results.append(result)
                continue
            if f == TRUE:
                results.append(g)
                continue
            if f == FALSE:
                results.append(h)
                continue
            if g == h:
                results.append(g)
                continue
            if g == TRUE and h == FALSE:
                results.append(f)
                continue
            cached = cache.get((f, g, h))
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            level = min(level_arr[f], level_arr[g], level_arr[h])
            if level_arr[f] == level:
                f0, f1 = low_arr[f], high_arr[f]
            else:
                f0 = f1 = f
            if level_arr[g] == level:
                g0, g1 = low_arr[g], high_arr[g]
            else:
                g0 = g1 = g
            if level_arr[h] == level:
                h0, h1 = low_arr[h], high_arr[h]
            else:
                h0 = h1 = h
            tasks.append((f, g, h, True))
            tasks.append((f1, g1, h1, False))
            tasks.append((f0, g0, h0, False))
        self._ite_hits += hits
        self._ite_misses += misses
        return results[0]

    def apply_not(self, f: int) -> int:
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        cache = self._not_cache
        cached = cache.get(f)
        if cached is not None:
            self._not_hits += 1
            return cached
        level_arr = self._level
        hits = misses = 0
        tasks: List[Tuple[int, bool]] = [(f, False)]
        results: List[int] = []
        while tasks:
            f, combine = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                result = self.mk(level_arr[f], low, high)
                cache[f] = result
                # Negation is an involution: seed the reverse direction too.
                cache[result] = f
                results.append(result)
                continue
            if f == FALSE:
                results.append(TRUE)
                continue
            if f == TRUE:
                results.append(FALSE)
                continue
            cached = cache.get(f)
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            tasks.append((f, True))
            tasks.append((self._high[f], False))
            tasks.append((self._low[f], False))
        self._not_hits += hits
        self._not_misses += misses
        return results[0]

    def _apply_bin(self, op: int, f: int, g: int) -> int:
        """Iterative core shared by the three memoised binary operators."""
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high
        cache = self._bin_cache
        hits = misses = 0
        tasks: List[Tuple[int, int, bool]] = [(f, g, False)]
        results: List[int] = []
        while tasks:
            f, g, combine = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                lf, lg = level_arr[f], level_arr[g]
                result = self.mk(lf if lf < lg else lg, low, high)
                cache[(op, f, g)] = result
                results.append(result)
                continue
            # Operator-specific terminal cases (same rules as the classic
            # recursive formulation).
            if op == _OP_AND:
                if f == FALSE or g == FALSE:
                    results.append(FALSE)
                    continue
                if f == TRUE:
                    results.append(g)
                    continue
                if g == TRUE or f == g:
                    results.append(f)
                    continue
            elif op == _OP_OR:
                if f == TRUE or g == TRUE:
                    results.append(TRUE)
                    continue
                if f == FALSE:
                    results.append(g)
                    continue
                if g == FALSE or f == g:
                    results.append(f)
                    continue
            else:  # _OP_XOR
                if f == g:
                    results.append(FALSE)
                    continue
                if f == FALSE:
                    results.append(g)
                    continue
                if g == FALSE:
                    results.append(f)
                    continue
                if f == TRUE:
                    results.append(self.apply_not(g))
                    continue
                if g == TRUE:
                    results.append(self.apply_not(f))
                    continue
            if f > g:  # commutativity-normalised cache
                f, g = g, f
            cached = cache.get((op, f, g))
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            lf, lg = level_arr[f], level_arr[g]
            level = lf if lf < lg else lg
            if lf == level:
                f0, f1 = low_arr[f], high_arr[f]
            else:
                f0 = f1 = f
            if lg == level:
                g0, g1 = low_arr[g], high_arr[g]
            else:
                g0 = g1 = g
            tasks.append((f, g, True))
            tasks.append((f1, g1, False))
            tasks.append((f0, g0, False))
        self._bin_hits[op] += hits
        self._bin_misses[op] += misses
        return results[0]

    def apply_and(self, f: int, g: int) -> int:
        return self._apply_bin(_OP_AND, f, g)

    def apply_or(self, f: int, g: int) -> int:
        return self._apply_bin(_OP_OR, f, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self._apply_bin(_OP_XOR, f, g)

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------

    def _quant_profile(self, levels: Sequence[int]) -> int:
        """Intern a (sorted) level set to quantify as a small profile id.

        Image computations quantify the same variable sets over and over;
        interning keeps the quantification cache keys small and hashable.
        Profiles are expressed in levels and therefore invalidated
        (cleared) by reordering.
        """
        key = tuple(levels)
        profile = self._quant_profiles.get(key)
        if profile is None:
            profile = len(self._quant_profile_sets)
            self._quant_profiles[key] = profile
            self._quant_profile_sets.append(frozenset(key))
            self._quant_profile_max.append(max(key) if key else -1)
        return profile

    def _quantify_profile(self, f: int, profile: int, disjunctive: bool) -> int:
        """Iterative quantification core (``exists`` when ``disjunctive``)."""
        level_arr = self._level
        qset = self._quant_profile_sets[profile]
        qmax = self._quant_profile_max[profile]
        cache = self._quant_cache
        tag = 0 if disjunctive else 1
        hits = misses = 0
        tasks: List[Tuple[int, bool]] = [(f, False)]
        results: List[int] = []
        while tasks:
            f, combine = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                level = level_arr[f]
                if level in qset:
                    if disjunctive:
                        result = self.apply_or(low, high)
                    else:
                        result = self.apply_and(low, high)
                else:
                    result = self.mk(level, low, high)
                cache[(tag, f, profile)] = result
                results.append(result)
                continue
            if f <= TRUE or level_arr[f] > qmax:
                results.append(f)
                continue
            cached = cache.get((tag, f, profile))
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            tasks.append((f, True))
            tasks.append((self._high[f], False))
            tasks.append((self._low[f], False))
        self._quant_hits += hits
        self._quant_misses += misses
        return results[0]

    def _exists_profile(self, f: int, profile: int) -> int:
        return self._quantify_profile(f, profile, disjunctive=True)

    def exists_levels(self, f: int, levels: Sequence[int]) -> int:
        if not levels:
            return f
        return self._exists_profile(f, self._quant_profile(levels))

    def forall_levels(self, f: int, levels: Sequence[int]) -> int:
        if not levels:
            return f
        return self._quantify_profile(
            f, self._quant_profile(levels), disjunctive=False
        )

    def and_exists_levels(self, f: int, g: int, levels: Sequence[int]) -> int:
        if not levels:
            return self.apply_and(f, g)
        return self._and_exists_profile(f, g, self._quant_profile(levels))

    def _and_exists_profile(self, f: int, g: int, profile: int) -> int:
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high
        qset = self._quant_profile_sets[profile]
        qmax = self._quant_profile_max[profile]
        cache = self._relprod_cache
        # Frames: (phase, a, b, c, d).  EXPAND carries (f, g); AFTER_LOW
        # carries (f, g, f1, g1) — the pending high cofactors, expanded only
        # when the low branch did not already decide the disjunction;
        # AFTER_HIGH carries (f, g, low); AFTER_BOTH carries (f, g).
        hits = misses = 0
        tasks: List[Tuple[int, int, int, int, int]] = [
            (_AE_EXPAND, f, g, 0, 0)
        ]
        results: List[int] = []
        while tasks:
            phase, f, g, c, d = tasks.pop()
            if phase == _AE_EXPAND:
                if f == FALSE or g == FALSE:
                    results.append(FALSE)
                    continue
                if f == TRUE and g == TRUE:
                    results.append(TRUE)
                    continue
                if f == TRUE:
                    results.append(self._exists_profile(g, profile))
                    continue
                if g == TRUE or f == g:
                    results.append(self._exists_profile(f, profile))
                    continue
                if level_arr[f] > qmax and level_arr[g] > qmax:
                    results.append(self.apply_and(f, g))
                    continue
                if f > g:
                    f, g = g, f
                cached = cache.get((f, g, profile))
                if cached is not None:
                    hits += 1
                    results.append(cached)
                    continue
                misses += 1
                lf, lg = level_arr[f], level_arr[g]
                level = lf if lf < lg else lg
                if lf == level:
                    f0, f1 = low_arr[f], high_arr[f]
                else:
                    f0 = f1 = f
                if lg == level:
                    g0, g1 = low_arr[g], high_arr[g]
                else:
                    g0 = g1 = g
                if level in qset:
                    # Quantified level: compute the low branch first and
                    # short-circuit the high branch when it is already TRUE.
                    tasks.append((_AE_AFTER_LOW, f, g, f1, g1))
                    tasks.append((_AE_EXPAND, f0, g0, 0, 0))
                else:
                    tasks.append((_AE_AFTER_BOTH, f, g, 0, 0))
                    tasks.append((_AE_EXPAND, f1, g1, 0, 0))
                    tasks.append((_AE_EXPAND, f0, g0, 0, 0))
            elif phase == _AE_AFTER_LOW:
                low = results.pop()
                if low == TRUE:
                    cache[(f, g, profile)] = TRUE
                    results.append(TRUE)
                    continue
                tasks.append((_AE_AFTER_HIGH, f, g, low, 0))
                tasks.append((_AE_EXPAND, c, d, 0, 0))
            elif phase == _AE_AFTER_HIGH:
                high = results.pop()
                result = self.apply_or(c, high)
                cache[(f, g, profile)] = result
                results.append(result)
            else:  # _AE_AFTER_BOTH
                high = results.pop()
                low = results.pop()
                lf, lg = level_arr[f], level_arr[g]
                result = self.mk(lf if lf < lg else lg, low, high)
                cache[(f, g, profile)] = result
                results.append(result)
        self._relprod_hits += hits
        self._relprod_misses += misses
        return results[0]

    # ------------------------------------------------------------------
    # Cofactor / composition / renaming
    # ------------------------------------------------------------------

    def restrict_level(self, f: int, level: int, value: bool) -> int:
        level_arr = self._level
        cache = self._quant_cache
        tag = 2 if value else 3
        hits = misses = 0
        tasks: List[Tuple[int, bool]] = [(f, False)]
        results: List[int] = []
        while tasks:
            f, combine = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                result = self.mk(level_arr[f], low, high)
                cache[(tag, f, level)] = result
                results.append(result)
                continue
            if f <= TRUE or level_arr[f] > level:
                results.append(f)
                continue
            cached = cache.get((tag, f, level))
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            if level_arr[f] == level:
                # The restricted variable cannot reappear below its level,
                # so the chosen child is already fully restricted.
                result = self._high[f] if value else self._low[f]
                cache[(tag, f, level)] = result
                results.append(result)
                continue
            tasks.append((f, True))
            tasks.append((self._high[f], False))
            tasks.append((self._low[f], False))
        self._restrict_hits += hits
        self._restrict_misses += misses
        return results[0]

    def compose_levels(self, f: int, by_level: Dict[int, int]) -> int:
        if not by_level:
            return f
        # A fresh token keys this substitution in the (shared) compose
        # cache.  Entries of previous tokens can never be hit again; purge
        # them once enough generations have accumulated
        # (policy.compose_generations, installed by the manager).
        self._compose_token += 1
        if (
            self._compose_token - self._compose_purged_token
            >= self.compose_generations
        ):
            self._compose_cache.clear()
            self._compose_purged_token = self._compose_token
        self._compose_max_level = max(by_level)
        return self._compose_rec(f, by_level)

    def _compose_rec(self, f: int, by_level: Dict[int, int]) -> int:
        level_arr = self._level
        max_level = self._compose_max_level
        token = self._compose_token
        cache = self._compose_cache
        hits = misses = 0
        tasks: List[Tuple[int, bool]] = [(f, False)]
        results: List[int] = []
        while tasks:
            f, combine = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                level = level_arr[f]
                replacement = by_level.get(level)
                if replacement is None:
                    replacement = self.mk(level, FALSE, TRUE)
                result = self.ite(replacement, high, low)
                cache[(token, f)] = result
                results.append(result)
                continue
            if f <= TRUE or level_arr[f] > max_level:
                results.append(f)
                continue
            cached = cache.get((token, f))
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            misses += 1
            tasks.append((f, True))
            tasks.append((self._high[f], False))
            tasks.append((self._low[f], False))
        self._compose_hits += hits
        self._compose_misses += misses
        return results[0]

    def rename_monotone(self, f: int, level_map: Dict[int, int]) -> int:
        level_arr = self._level
        cache: Dict[int, int] = {}
        tasks: List[Tuple[int, bool]] = [(f, False)]
        results: List[int] = []
        while tasks:
            f, combine = tasks.pop()
            if combine:
                high = results.pop()
                low = results.pop()
                level = level_arr[f]
                result = self.mk(level_map.get(level, level), low, high)
                cache[f] = result
                results.append(result)
                continue
            if f <= TRUE:
                results.append(f)
                continue
            cached = cache.get(f)
            if cached is not None:
                results.append(cached)
                continue
            tasks.append((f, True))
            tasks.append((self._high[f], False))
            tasks.append((self._low[f], False))
        return results[0]

    # ------------------------------------------------------------------
    # Satisfying assignments
    # ------------------------------------------------------------------

    def satcount_levels(self, f: int, levels: Sequence[int]) -> int:
        rank = {lvl: i for i, lvl in enumerate(levels)}
        n = len(rank)
        if f == FALSE:
            return 0
        if f == TRUE:
            return 1 << n
        level_arr = self._level
        low_arr = self._low
        high_arr = self._high
        memo: Dict[int, int] = {FALSE: 0, TRUE: 1}
        # Counts are over the counting-levels at ranks >= rank(level(node));
        # a child skipping ranks contributes a factor of two per skipped rank.
        tasks: List[Tuple[int, bool]] = [(f, False)]
        while tasks:
            node, combine = tasks.pop()
            if combine:
                r = rank[level_arr[node]]
                low, high = low_arr[node], high_arr[node]
                low_rank = rank[level_arr[low]] if low > TRUE else n
                high_rank = rank[level_arr[high]] if high > TRUE else n
                memo[node] = (memo[low] << (low_rank - r - 1)) + (
                    memo[high] << (high_rank - r - 1)
                )
                continue
            if node in memo:
                continue
            tasks.append((node, True))
            tasks.append((high_arr[node], False))
            tasks.append((low_arr[node], False))
        return memo[f] << rank[self._level[f]]

    def support_levels(self, f: int) -> List[int]:
        seen = set()
        levels = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            levels.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return sorted(levels)

    def iter_cube_paths(self, f: int) -> Iterator[List[Tuple[int, bool]]]:
        if f == FALSE:
            return
        path: List[Tuple[int, bool]] = []
        # Each entry: (node, path length to truncate to, literal to append
        # first — or -1 for the root).  Low branches are pushed last so
        # they are explored first, matching the historical recursive
        # enumeration order (trace rendering depends on it).
        stack: List[Tuple[int, int, int, bool]] = [(f, 0, -1, False)]
        while stack:
            node, plen, level, value = stack.pop()
            del path[plen:]
            if level >= 0:
                path.append((level, value))
            if node == FALSE:
                continue
            if node == TRUE:
                yield list(path)
                continue
            lvl = self._level[node]
            depth = len(path)
            stack.append((self._high[node], depth, lvl, True))
            stack.append((self._low[node], depth, lvl, False))

    def cube_levels(self, assignment: Dict[int, bool]) -> int:
        result = TRUE
        for level in sorted(assignment, reverse=True):
            if assignment[level]:
                result = self.mk(level, FALSE, result)
            else:
                result = self.mk(level, result, FALSE)
        return result

    # ------------------------------------------------------------------
    # Caches, garbage, reordering support
    # ------------------------------------------------------------------

    def clear_caches(self) -> None:
        self._ite_cache.clear()
        self._bin_cache.clear()
        self._not_cache.clear()
        self._quant_cache.clear()
        self._relprod_cache.clear()
        self._compose_cache.clear()
        self._compose_purged_token = self._compose_token

    def cache_entry_count(self) -> int:
        return (
            len(self._ite_cache)
            + len(self._bin_cache)
            + len(self._not_cache)
            + len(self._quant_cache)
            + len(self._relprod_cache)
            + len(self._compose_cache)
        )

    def _mark(self, roots: Iterable[int]) -> set:
        marked = {FALSE, TRUE}
        stack = [r for r in roots if r > TRUE]
        while stack:
            node = stack.pop()
            if node in marked:
                continue
            marked.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return marked

    def collect(self, roots: Iterable[int]) -> int:
        marked = self._mark(roots)
        freed = 0
        dead_keys = [
            key for key, node in self._unique.items() if node not in marked
        ]
        for key in dead_keys:
            node = self._unique.pop(key)
            self._free.append(node)
            freed += 1
        if freed:
            # Cache entries may reference recycled slots — drop them.  When
            # the sweep freed nothing, every cached operand/result was just
            # proven live, so the caches stay valid and are kept: this is
            # what makes dense GC schedules (the stress suite collects at
            # every safe point) affordable — repeated no-op collections do
            # not forfeit memoisation.
            self.clear_caches()
        return freed

    def live_count(self, roots: Iterable[int]) -> int:
        return len(self._mark(roots))

    def level_occupancy(self) -> Dict[int, int]:
        occupancy: Dict[int, int] = {}
        for (lvl, _low, _high) in self._unique:
            occupancy[lvl] = occupancy.get(lvl, 0) + 1
        return occupancy

    def swap_adjacent_levels(self, upper: int) -> None:
        lower = upper + 1

        # Partition the two levels' nodes.  Everything is re-inserted below.
        upper_nodes: List[int] = []
        lower_nodes: List[int] = []
        for (lvl, _low, _high), node in list(self._unique.items()):
            if lvl == upper:
                upper_nodes.append(node)
                del self._unique[(lvl, _low, _high)]
            elif lvl == lower:
                lower_nodes.append(node)
                del self._unique[(lvl, _low, _high)]

        # Phase 1: old upper-level nodes that do NOT depend on the lower
        # variable simply sink one level (same children, same function).
        dependent: List[int] = []
        for node in upper_nodes:
            low, high = self._low[node], self._high[node]
            if self._level[low] == lower or self._level[high] == lower:
                dependent.append(node)
            else:
                self._level[node] = lower
                self._unique[(lower, low, high)] = node

        # Phase 2: old lower-level nodes float up (their children are
        # strictly below both levels, so they are well-formed at the upper
        # level).
        for node in lower_nodes:
            self._level[node] = upper
            self._unique[(upper, self._low[node], self._high[node])] = node

        # Phase 3: rewrite the dependent nodes.  With x the old upper
        # variable and y the old lower one, f = x?(y?f11:f10):(y?f01:f00)
        # becomes f = y?(x?f11:f01):(x?f10:f00) where x now lives at the
        # lower level.  After phase 2, a child at level `upper` is
        # necessarily an old lower-level node (original children of upper
        # nodes were at levels >= lower, and only old lower nodes were
        # floated up).
        for node in dependent:
            f0, f1 = self._low[node], self._high[node]
            if self._level[f0] == upper:
                f00, f01 = self._low[f0], self._high[f0]
            else:
                f00 = f01 = f0
            if self._level[f1] == upper:
                f10, f11 = self._low[f1], self._high[f1]
            else:
                f10 = f11 = f1
            new_low = self.mk(lower, f00, f10)
            new_high = self.mk(lower, f01, f11)
            self._level[node] = upper
            self._low[node] = new_low
            self._high[node] = new_high
            self._unique[(upper, new_low, new_high)] = node

    def invalidate_level_structures(self) -> None:
        self.clear_caches()
        self._quant_profiles.clear()
        self._quant_profile_sets.clear()
        self._quant_profile_max.clear()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {
            "nodes_created": self._created_nodes,
            "unique_probes": self._unique_probes,
            "unique_hits": self._unique_hits,
            "ite_hits": self._ite_hits,
            "ite_misses": self._ite_misses,
            "and_hits": self._bin_hits[_OP_AND],
            "and_misses": self._bin_misses[_OP_AND],
            "or_hits": self._bin_hits[_OP_OR],
            "or_misses": self._bin_misses[_OP_OR],
            "xor_hits": self._bin_hits[_OP_XOR],
            "xor_misses": self._bin_misses[_OP_XOR],
            "not_hits": self._not_hits,
            "not_misses": self._not_misses,
            "quant_hits": self._quant_hits,
            "quant_misses": self._quant_misses,
            "restrict_hits": self._restrict_hits,
            "restrict_misses": self._restrict_misses,
            "relprod_hits": self._relprod_hits,
            "relprod_misses": self._relprod_misses,
            "compose_hits": self._compose_hits,
            "compose_misses": self._compose_misses,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DictBackend nodes={self.node_count()} "
            f"created={self._created_nodes}>"
        )
