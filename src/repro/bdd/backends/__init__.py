"""Pluggable BDD backends: node storage + kernels behind one interface.

The manager (:class:`repro.bdd.manager.BDDManager`) is written once against
:class:`~repro.bdd.backends.base.BDDBackend`; which physical engine runs
underneath is an :class:`~repro.engine.EngineConfig` knob (``backend``).
See :mod:`repro.bdd.backends.base` for the contract.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from ...errors import BDDError
from .array_backend import ArrayBackend
from .base import FALSE, TERMINAL_LEVEL, TRUE, BDDBackend
from .dict_backend import DictBackend

#: Canonical registry names.
BACKEND_DICT = "dict"
BACKEND_ARRAY = "array"

_REGISTRY: Dict[str, Type[BDDBackend]] = {
    BACKEND_DICT: DictBackend,
    BACKEND_ARRAY: ArrayBackend,
}

#: All selectable backend names, sorted (the argparse choices list).
BACKEND_NAMES: Tuple[str, ...] = tuple(sorted(_REGISTRY))


def create_backend(name: str) -> BDDBackend:
    """Instantiate the backend registered under ``name``.

    >>> create_backend("dict").name
    'dict'
    >>> create_backend("array").name
    'array'
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise BDDError(
            f"unknown BDD backend {name!r}; "
            f"available: {', '.join(BACKEND_NAMES)}"
        ) from None
    return cls()


__all__ = [
    "BDDBackend",
    "DictBackend",
    "ArrayBackend",
    "BACKEND_DICT",
    "BACKEND_ARRAY",
    "BACKEND_NAMES",
    "create_backend",
    "FALSE",
    "TRUE",
    "TERMINAL_LEVEL",
]
