"""The BDD backend interface: node storage + kernels, nothing else.

A *backend* owns the physical side of the ROBDD engine — the node store,
the hash-consing (unique) table, the operation caches, and the iterative
kernel algorithms (``ite``, the binary appliers, quantification, the
relational product, composition, counting).  Everything a backend sees is
an integer: node ids, *levels* (order positions), cache tags.  Variable
names and ids, the variable<->level maps, external root tracking, pinning,
the :class:`~repro.bdd.policy.ResourcePolicy`, and safe-point scheduling
all live one layer up in :class:`~repro.bdd.manager.BDDManager`, which
translates its var-id API onto this level-based one.

The split is the classic separation of algorithm from storage that fast
DD packages get from a compiled kernel: the manager (and with it the
whole model-checking stack) is written once against this interface, and
node representation becomes a swappable engine choice
(:data:`~repro.engine.EngineConfig.backend`).  Two backends ship:

* ``dict`` — tuple-keyed hash consing on Python dicts (the historical
  engine, bit-for-bit).
* ``array`` — struct-of-arrays node store on flat ``array('q')`` buffers
  with open-addressed integer-probed tables (see
  :mod:`repro.bdd.backends.array_backend`).

**Contract.**  Backends must agree on *meaning*, not on node ids: for one
sequence of operations, every backend must produce structurally identical
ROBDDs (same levels, same cofactor graphs), identical satcounts, and
identical cube enumeration order — that is what makes coverage verdicts,
percentages, and trace renderings byte-identical across backends (enforced
by ``tests/bdd/test_backend_conformance.py`` and the ``backend`` axis of
the differential fuzz oracle).  The two shipped backends additionally use
identical memoisation semantics (every computed sub-result is cached until
an explicit cache clear), so even their *work counters* — nodes created,
unique probes, op-cache hits/misses — coincide; conformance pins that too,
because it is what lets one committed bench baseline describe a workload
regardless of storage.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Pseudo-level assigned to the two terminal nodes; orders after any variable.
TERMINAL_LEVEL = 1 << 30

#: Reserved node ids for the constant functions (shared by every backend).
FALSE = 0
TRUE = 1


class BDDBackend(ABC):
    """Abstract node store + kernel set the manager delegates to.

    All node arguments and results are integer node ids; all variable
    positions are integer *levels*.  Levels passed to quantification,
    counting, and support queries are always sorted ascending (the manager
    guarantees it).  ``compose_generations`` is a plain attribute the
    manager refreshes from its policy; it bounds how many substitution
    generations the compose cache may accumulate before a purge.
    """

    #: Registry name of this backend (``"dict"``, ``"array"``, ...).
    name: str = "?"

    #: Compose-cache purge period, installed by the manager from its
    #: :class:`~repro.bdd.policy.ResourcePolicy`.
    compose_generations: int = 8

    # ------------------------------------------------------------------
    # Node store
    # ------------------------------------------------------------------

    @abstractmethod
    def mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (the reduce rule)."""

    @abstractmethod
    def find(self, level: int, low: int, high: int) -> Optional[int]:
        """The existing node ``(level, low, high)``, or ``None`` — never
        creates (the manager uses this to root variable literals in GC)."""

    @abstractmethod
    def level_of(self, node: int) -> int:
        """Level of ``node`` (``TERMINAL_LEVEL`` for the terminals)."""

    @abstractmethod
    def low_of(self, node: int) -> int:
        """Low (else) child of ``node``."""

    @abstractmethod
    def high_of(self, node: int) -> int:
        """High (then) child of ``node``."""

    @abstractmethod
    def node_count(self) -> int:
        """Live (non-recycled) nodes, terminals included."""

    @abstractmethod
    def unique_size(self) -> int:
        """Entries in the unique table (live nodes excluding terminals)."""

    @abstractmethod
    def size(self, node: int) -> int:
        """DAG nodes reachable from ``node``, terminals included."""

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    @abstractmethod
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else ``(f & g) | (~f & h)``."""

    @abstractmethod
    def apply_not(self, f: int) -> int:
        """Negation (memoised, involution-seeded)."""

    @abstractmethod
    def apply_and(self, f: int, g: int) -> int:
        """Conjunction (commutativity-normalised cache)."""

    @abstractmethod
    def apply_or(self, f: int, g: int) -> int:
        """Disjunction (commutativity-normalised cache)."""

    @abstractmethod
    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or."""

    @abstractmethod
    def exists_levels(self, f: int, levels: Sequence[int]) -> int:
        """Existential quantification of the (sorted) ``levels`` out of ``f``."""

    @abstractmethod
    def forall_levels(self, f: int, levels: Sequence[int]) -> int:
        """Universal quantification of the (sorted) ``levels`` out of ``f``."""

    @abstractmethod
    def and_exists_levels(self, f: int, g: int, levels: Sequence[int]) -> int:
        """Relational product ``exists levels . (f & g)`` in one pass."""

    @abstractmethod
    def restrict_level(self, f: int, level: int, value: bool) -> int:
        """Cofactor of ``f`` with the variable at ``level`` fixed."""

    @abstractmethod
    def compose_levels(self, f: int, by_level: Dict[int, int]) -> int:
        """Simultaneous substitution ``{level -> replacement node}``."""

    @abstractmethod
    def rename_monotone(self, f: int, level_map: Dict[int, int]) -> int:
        """Direct rebuild under an (on ``f``'s support) strictly
        order-preserving level map; the manager checks monotonicity and
        falls back to :meth:`compose_levels` itself when it fails."""

    @abstractmethod
    def satcount_levels(self, f: int, levels: Sequence[int]) -> int:
        """Satisfying assignments of ``f`` over the (sorted) counting
        ``levels``, which must cover ``f``'s support (manager-checked)."""

    @abstractmethod
    def support_levels(self, f: int) -> List[int]:
        """Sorted levels ``f`` structurally depends on."""

    @abstractmethod
    def iter_cube_paths(self, f: int) -> Iterator[List[Tuple[int, bool]]]:
        """Yield one ``[(level, value), ...]`` literal path per cube of
        ``f``, in the canonical low-first DFS order (trace rendering
        depends on this order being backend-invariant)."""

    @abstractmethod
    def cube_levels(self, assignment: Dict[int, bool]) -> int:
        """The conjunction-of-literals node for ``{level: value}``."""

    # ------------------------------------------------------------------
    # Caches, garbage, reordering support
    # ------------------------------------------------------------------

    @abstractmethod
    def clear_caches(self) -> None:
        """Drop every operation cache."""

    @abstractmethod
    def cache_entry_count(self) -> int:
        """Combined entry count of all operation caches."""

    @abstractmethod
    def collect(self, roots: Iterable[int]) -> int:
        """Mark from ``roots``, sweep everything else, recycle the slots
        into the free list, and (iff anything was freed) drop the op
        caches.  Returns the number of slots freed."""

    @abstractmethod
    def live_count(self, roots: Iterable[int]) -> int:
        """Nodes reachable from ``roots`` (terminals included) — the mark
        phase of :meth:`collect` without the sweep."""

    @abstractmethod
    def level_occupancy(self) -> Dict[int, int]:
        """Live node count per level (reordering's placement signal)."""

    @abstractmethod
    def swap_adjacent_levels(self, upper: int) -> None:
        """Swap levels ``upper`` and ``upper + 1`` rewriting the affected
        nodes *in place*, so node ids keep denoting the same functions.
        The caller (:func:`repro.bdd.reorder.swap_adjacent`) owns the
        variable<->level bookkeeping and invalidates caches after."""

    @abstractmethod
    def invalidate_level_structures(self) -> None:
        """Drop every level-keyed structure (op caches, interned
        quantification profiles) after a reorder changed level meaning."""

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    @abstractmethod
    def counters(self) -> Dict[str, int]:
        """The kernel-side counter block of
        :meth:`~repro.bdd.manager.BDDManager.resource_stats`:
        ``nodes_created``, ``unique_probes``/``unique_hits``, and per-op
        cache ``*_hits``/``*_misses``.  Reading never mutates state."""
