"""Command-line interface: coverage estimation for circuits and suites.

Target mode (the original interface, now registry-backed)::

    repro-coverage --list
    repro-coverage queue-wrap --stage initial
    repro-coverage buffer-lo --buggy --traces 2
    repro-coverage pipeline --stage augmented

Model files (the ``.rml`` language of :mod:`repro.lang`)::

    repro-coverage run examples/counter.rml
    repro-coverage run examples/arbiter.rml --traces 2

Suites (every registered job — builtin targets at every stage plus
``.rml`` files discovered on disk — optionally in parallel)::

    repro-coverage suite --jobs 4
    repro-coverage suite examples --jobs 4 --json coverage.json

Exit codes: 0 success, 1 verification/coverage failure, 2 usage error
(unknown target, invalid stage, parse error).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from .bdd import ResourcePolicy
from .coverage import CoverageEstimator, format_uncovered_traces
from .errors import ParseError, ReproError
from .lang import elaborate, load_module
from .mc import ModelChecker
from .suite import (
    BUILTIN_TARGETS,
    build_builtin,
    default_jobs,
    format_results,
    run_jobs,
    write_report,
)

__all__ = ["main", "TARGETS"]


def _legacy_builder(name: str) -> Callable:
    def build(args):
        return build_builtin(
            name, stage=args.stage, buggy=args.buggy,
            trans=getattr(args, "trans", "partitioned"),
            policy=_policy_from_args(args),
        )

    return build


#: target name -> (builder, valid stages, description) — kept in the shape
#: the original CLI exposed, now derived from the suite registry.
TARGETS: Dict[str, Tuple[Callable, List[str], str]] = {
    target.name: (
        _legacy_builder(target.name),
        list(target.stages),
        target.description,
    )
    for target in BUILTIN_TARGETS.values()
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coverage",
        description=(
            "Coverage estimation for symbolic model checking "
            "(DAC'99 reproduction)"
        ),
    )
    parser.add_argument("target", nargs="?", help="circuit/signal to analyse")
    parser.add_argument("--list", action="store_true", help="list targets")
    parser.add_argument("--stage", help="property-suite stage (target-specific)")
    parser.add_argument(
        "--buggy", action="store_true",
        help="use the buggy priority-buffer variant (Circuit 1 narrative)",
    )
    parser.add_argument(
        "--traces", type=int, default=0, metavar="N",
        help="print traces to up to N uncovered states",
    )
    _add_trans_flag(parser)
    _add_resource_flags(parser)
    return parser


def _add_trans_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trans", choices=["mono", "partitioned"], default="partitioned",
        help=(
            "transition-relation mode: 'partitioned' (per-latch conjuncts "
            "with early quantification, the default) or 'mono' (one "
            "monolithic relation BDD); coverage results are identical, "
            "only image-computation cost differs"
        ),
    )


def _add_resource_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--gc-threshold", type=int, default=None, metavar="NODES",
        help=(
            "live-BDD-node threshold for automatic garbage collection "
            "(0 disables auto-GC; default: the engine's built-in threshold); "
            "a cost/memory knob — coverage results are identical at any "
            "setting"
        ),
    )
    parser.add_argument(
        "--auto-reorder", action="store_true",
        help=(
            "enable automatic variable reordering (Rudell sifting) when the "
            "live BDD outgrows its threshold; off by default because "
            "reordering may change the rendering order of --traces output"
        ),
    )


def _policy_from_args(args) -> Optional[ResourcePolicy]:
    """The resource policy the CLI flags describe (None: engine default)."""
    gc_threshold = getattr(args, "gc_threshold", None)
    auto_reorder = bool(getattr(args, "auto_reorder", False))
    if gc_threshold is None and not auto_reorder:
        return None
    kwargs = {"auto_reorder": auto_reorder}
    if gc_threshold is not None:
        if gc_threshold < 0:
            # Usage error: same exit code as any other bad flag value.
            print("error: --gc-threshold must be >= 0", file=sys.stderr)
            raise SystemExit(2)
        kwargs["gc_node_threshold"] = gc_threshold
    return ResourcePolicy(**kwargs)


def _build_run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coverage run",
        description="estimate coverage for one .rml model file",
    )
    parser.add_argument("file", help="path to a .rml model file")
    parser.add_argument(
        "--traces", type=int, default=0, metavar="N",
        help="print traces to up to N uncovered states",
    )
    _add_trans_flag(parser)
    _add_resource_flags(parser)
    return parser


def _build_suite_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coverage suite",
        description=(
            "run every registered coverage job: builtin targets at every "
            "stage, plus .rml files discovered on disk"
        ),
    )
    parser.add_argument(
        "directory", nargs="?",
        help=".rml directory (default: ./examples when present)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1: run serially in-process)",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="write the JSON report to FILE"
    )
    parser.add_argument(
        "--no-builtins", action="store_true",
        help="run only discovered .rml jobs",
    )
    _add_trans_flag(parser)
    _add_resource_flags(parser)
    return parser


# ----------------------------------------------------------------------
# Shared verification + estimation flow
# ----------------------------------------------------------------------


def _verify_and_report(fsm, props, observed, dont_care, traces: int) -> int:
    checker = ModelChecker(fsm)
    failing = [p for p in props if not checker.holds(p)]
    if failing:
        print(f"{len(failing)} propert(ies) FAIL on {fsm.name!r}:")
        for prop in failing:
            print(f"  {prop}")
            result = checker.check(prop)
            if result.counterexample:
                for k, state in enumerate(result.counterexample):
                    print(f"    cycle {k}: {fsm.format_state(state)}")
        print("coverage is only defined for verified properties; aborting.")
        return 1
    estimator = CoverageEstimator(fsm, checker=checker)
    report = estimator.estimate(props, observed=observed, dont_care=dont_care)
    print(report.summary())
    if traces > 0:
        print(format_uncovered_traces(report, count=traces))
    return 0


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def _parse_error_message(exc: ParseError) -> str:
    # Module errors already carry a file:line:column prefix.
    return str(exc)


def _main_run(argv: List[str]) -> int:
    args = _build_run_parser().parse_args(argv)
    try:
        model = elaborate(
            load_module(args.file), trans=args.trans,
            policy=_policy_from_args(args),
        )
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    except ParseError as exc:
        print(f"error: {_parse_error_message(exc)}", file=sys.stderr)
        return 2
    if not model.observed:
        print(
            f"error: {args.file}: module {model.module.name!r} declares no "
            f"OBSERVED signals (add e.g. 'OBSERVED <signal>;')",
            file=sys.stderr,
        )
        return 2
    if not model.specs:
        print(
            f"error: {args.file}: module {model.module.name!r} declares no "
            f"SPEC properties",
            file=sys.stderr,
        )
        return 2
    try:
        return _verify_and_report(
            model.fsm, model.specs, model.observed, model.dont_care,
            args.traces,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _main_suite(argv: List[str]) -> int:
    args = _build_suite_parser().parse_args(argv)
    # Validate the resource flags up front: one usage error beats every
    # worker failing with the same message after fan-out.
    _policy_from_args(args)
    directory = args.directory
    if directory is None and Path("examples").is_dir():
        directory = "examples"
    if directory is not None and not Path(directory).is_dir():
        print(f"error: no such directory: {directory}", file=sys.stderr)
        return 2
    jobs = default_jobs(
        rml_dir=directory, include_builtins=not args.no_builtins,
        trans=args.trans, gc_threshold=args.gc_threshold,
        auto_reorder=args.auto_reorder,
    )
    if not jobs:
        print("error: no jobs registered", file=sys.stderr)
        return 2
    started = time.perf_counter()
    results = run_jobs(jobs, max_workers=max(1, args.jobs))
    elapsed = time.perf_counter() - started
    print(format_results(results, seconds=elapsed))
    if args.json:
        write_report(results, args.json, seconds=elapsed)
        print(f"wrote JSON report to {args.json}")
    return 0 if all(r.status == "ok" for r in results) else 1


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "run":
        return _main_run(argv[1:])
    if argv and argv[0] == "suite":
        return _main_suite(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list or not args.target:
        print("available targets:")
        for name, (_, stages, description) in TARGETS.items():
            stage_note = f" (stages: {', '.join(stages)})" if stages else ""
            print(f"  {name:12s} {description}{stage_note}")
        print("subcommands:")
        print("  run <file.rml>     estimate coverage for a model file")
        print("  suite [dir]        run every registered job (see --help)")
        return 0
    entry = TARGETS.get(args.target)
    if entry is None:
        print(f"unknown target {args.target!r}; try --list", file=sys.stderr)
        return 2
    _builder, stages, _desc = entry
    if args.stage is not None and args.stage not in stages:
        valid = ", ".join(stages) if stages else "none (target takes no --stage)"
        print(
            f"invalid stage {args.stage!r} for target {args.target!r}; "
            f"valid stages: {valid}",
            file=sys.stderr,
        )
        return 2
    try:
        fsm, props, observed, dont_care = build_builtin(
            args.target, stage=args.stage, buggy=args.buggy, trans=args.trans,
            policy=_policy_from_args(args),
        )
        return _verify_and_report(fsm, props, observed, dont_care, args.traces)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
