"""Command-line interface: run coverage estimation on the built-in circuits.

Examples::

    repro-coverage --list
    repro-coverage queue-wrap --stage initial
    repro-coverage buffer-lo --buggy --traces 2
    repro-coverage pipeline --stage augmented
    repro-coverage counter --stage partial
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from .circuits import (
    build_circular_queue,
    build_counter,
    build_pipeline,
    build_priority_buffer,
    circular_queue_empty_properties,
    circular_queue_full_properties,
    circular_queue_wrap_properties,
    circular_queue_wrap_stall_property,
    counter_partial_properties,
    counter_properties,
    pipeline_augmented_properties,
    pipeline_output_properties,
    priority_buffer_hi_properties,
    priority_buffer_lo_augmented_properties,
    priority_buffer_lo_properties,
)
from .coverage import CoverageEstimator, format_uncovered_traces
from .errors import ReproError
from .mc import ModelChecker

__all__ = ["main", "TARGETS"]


def _counter(args) -> Tuple:
    fsm = build_counter()
    if args.stage == "partial":
        props = counter_partial_properties()
    else:
        props = counter_properties()
    return fsm, props, "count", None


def _buffer_hi(args) -> Tuple:
    fsm = build_priority_buffer(buggy=args.buggy)
    return fsm, priority_buffer_hi_properties(), "hi", None


def _buffer_lo(args) -> Tuple:
    fsm = build_priority_buffer(buggy=args.buggy)
    if args.stage == "augmented":
        props = priority_buffer_lo_augmented_properties()
    else:
        props = priority_buffer_lo_properties()
    return fsm, props, "lo", None


def _queue_wrap(args) -> Tuple:
    fsm = build_circular_queue()
    stage = args.stage or "initial"
    if stage == "final":
        props = circular_queue_wrap_properties(stage="extended")
        props.append(circular_queue_wrap_stall_property())
    else:
        props = circular_queue_wrap_properties(stage=stage)
    return fsm, props, "wrap", None


def _queue_full(args) -> Tuple:
    return build_circular_queue(), circular_queue_full_properties(), "full", None


def _queue_empty(args) -> Tuple:
    return build_circular_queue(), circular_queue_empty_properties(), "empty", None


def _pipeline(args) -> Tuple:
    fsm = build_pipeline()
    if args.stage == "augmented":
        props = pipeline_augmented_properties()
    else:
        props = pipeline_output_properties()
    return fsm, props, "output", "!out_valid"


#: target name -> (builder, valid stages, description)
TARGETS: Dict[str, Tuple[Callable, List[str], str]] = {
    "counter": (_counter, ["full", "partial"], "mod-5 counter (paper Section 1)"),
    "buffer-hi": (_buffer_hi, [], "priority buffer, hi-pri count (Circuit 1)"),
    "buffer-lo": (_buffer_lo, ["initial", "augmented"],
                  "priority buffer, lo-pri count (Circuit 1)"),
    "queue-wrap": (_queue_wrap, ["initial", "extended", "final"],
                   "circular queue, wrap bit (Circuit 2)"),
    "queue-full": (_queue_full, [], "circular queue, full signal (Circuit 2)"),
    "queue-empty": (_queue_empty, [], "circular queue, empty signal (Circuit 2)"),
    "pipeline": (_pipeline, ["initial", "augmented"],
                 "decode pipeline, output (Circuit 3)"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coverage",
        description=(
            "Coverage estimation for symbolic model checking "
            "(DAC'99 reproduction)"
        ),
    )
    parser.add_argument("target", nargs="?", help="circuit/signal to analyse")
    parser.add_argument("--list", action="store_true", help="list targets")
    parser.add_argument("--stage", help="property-suite stage (target-specific)")
    parser.add_argument(
        "--buggy", action="store_true",
        help="use the buggy priority-buffer variant (Circuit 1 narrative)",
    )
    parser.add_argument(
        "--traces", type=int, default=0, metavar="N",
        help="print traces to up to N uncovered states",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list or not args.target:
        print("available targets:")
        for name, (_, stages, description) in TARGETS.items():
            stage_note = f" (stages: {', '.join(stages)})" if stages else ""
            print(f"  {name:12s} {description}{stage_note}")
        return 0
    entry = TARGETS.get(args.target)
    if entry is None:
        print(f"unknown target {args.target!r}; try --list", file=sys.stderr)
        return 2
    builder, _stages, _desc = entry
    try:
        fsm, props, observed, dont_care = builder(args)
        checker = ModelChecker(fsm)
        failing = [p for p in props if not checker.holds(p)]
        if failing:
            print(f"{len(failing)} propert(ies) FAIL on {fsm.name!r}:")
            for prop in failing:
                print(f"  {prop}")
                result = checker.check(prop)
                if result.counterexample:
                    for k, state in enumerate(result.counterexample):
                        print(f"    cycle {k}: {fsm.format_state(state)}")
            print("coverage is only defined for verified properties; aborting.")
            return 1
        estimator = CoverageEstimator(fsm, checker=checker)
        report = estimator.estimate(props, observed=observed, dont_care=dont_care)
        print(report.summary())
        if args.traces > 0:
            print(format_uncovered_traces(report, count=args.traces))
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
