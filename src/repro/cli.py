"""Command-line interface: coverage estimation for circuits and suites.

Target mode (the original interface, now registry-backed)::

    repro-coverage --list
    repro-coverage queue-wrap --stage initial
    repro-coverage buffer-lo --buggy --traces 2
    repro-coverage pipeline --stage augmented

Model files (the ``.rml`` language of :mod:`repro.lang`)::

    repro-coverage run examples/counter.rml
    repro-coverage run examples/arbiter.rml --traces 2

Suites (every registered job — builtin targets at every stage plus
``.rml`` files discovered on disk — optionally in parallel)::

    repro-coverage suite --jobs 4
    repro-coverage suite examples --jobs 4 --json coverage.json

All three subcommands are thin argument adapters over one shared code
path: they construct an :class:`~repro.analysis.Analysis` (the library's
front door) from an :class:`~repro.engine.EngineConfig` parsed by one
shared parent parser, and render its results.  ``python -m repro`` is an
alias for this entry point.

Exit codes: 0 success, 1 verification/coverage failure, 2 usage error
(unknown target, invalid stage, parse error, invalid engine config).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ._version import __version__
from .analysis import Analysis
from .engine import EngineConfig
from .errors import ConfigError, ModelError, ParseError, ReproError
from .suite import (
    BUILTIN_TARGETS,
    build_builtin,
    default_jobs,
    format_results,
    run_jobs,
    write_report,
)

__all__ = ["main", "TARGETS"]


def _legacy_builder(name: str) -> Callable:
    def build(args):
        return build_builtin(
            name, stage=args.stage, buggy=args.buggy,
            config=EngineConfig.from_args(args),
        )

    return build


#: target name -> (builder, valid stages, description) — kept in the shape
#: the original CLI exposed, now derived from the suite registry.
TARGETS: Dict[str, Tuple[Callable, List[str], str]] = {
    target.name: (
        _legacy_builder(target.name),
        list(target.stages),
        target.description,
    )
    for target in BUILTIN_TARGETS.values()
}


# ----------------------------------------------------------------------
# Parsers — one shared parent carries the engine flags for every
# subcommand; each subcommand adds only its own arguments.
# ----------------------------------------------------------------------


def _engine_parent() -> argparse.ArgumentParser:
    """The shared parent parser: every engine knob, defined once, from the
    config object itself."""
    parent = argparse.ArgumentParser(add_help=False)
    EngineConfig.add_cli_arguments(parent)
    return parent


def _add_traces_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--traces", type=int, default=0, metavar="N",
        help="print traces to up to N uncovered states",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coverage",
        description=(
            "Coverage estimation for symbolic model checking "
            "(DAC'99 reproduction)"
        ),
        parents=[_engine_parent()],
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}",
    )
    parser.add_argument("target", nargs="?", help="circuit/signal to analyse")
    parser.add_argument("--list", action="store_true", help="list targets")
    parser.add_argument("--stage", help="property-suite stage (target-specific)")
    parser.add_argument(
        "--buggy", action="store_true",
        help="use the buggy priority-buffer variant (Circuit 1 narrative)",
    )
    _add_traces_flag(parser)
    return parser


def _build_run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coverage run",
        description="estimate coverage for one .rml model file",
        parents=[_engine_parent()],
    )
    parser.add_argument("file", help="path to a .rml model file")
    _add_traces_flag(parser)
    return parser


def _build_suite_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coverage suite",
        description=(
            "run every registered coverage job: builtin targets at every "
            "stage, plus .rml files discovered on disk"
        ),
        parents=[_engine_parent()],
    )
    parser.add_argument(
        "directory", nargs="?",
        help=".rml directory (default: ./examples when present)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1: run serially in-process)",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="write the JSON report to FILE"
    )
    parser.add_argument(
        "--no-builtins", action="store_true",
        help="run only discovered .rml jobs",
    )
    return parser


# ----------------------------------------------------------------------
# Shared reporting flow — every subcommand renders an Analysis this way.
# ----------------------------------------------------------------------


def _report_analysis(analysis: Analysis, traces: int) -> int:
    """Verify, estimate, and print — the one rendering of the pipeline."""
    failing = analysis.failing()
    if failing:
        print(f"{len(failing)} propert(ies) FAIL on {analysis.fsm.name!r}:")
        for result in failing:
            print(f"  {result.formula}")
            if result.counterexample:
                for k, state in enumerate(result.counterexample):
                    print(f"    cycle {k}: {analysis.fsm.format_state(state)}")
        print("coverage is only defined for verified properties; aborting.")
        return 1
    print(analysis.coverage().summary())
    if traces > 0:
        print(analysis.uncovered_traces(traces))
    return 0


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def _main_target(argv: List[str]) -> int:
    args = build_parser().parse_args(argv)
    if args.list or not args.target:
        print("available targets:")
        for name, (_, stages, description) in TARGETS.items():
            stage_note = f" (stages: {', '.join(stages)})" if stages else ""
            print(f"  {name:12s} {description}{stage_note}")
        print("subcommands:")
        print("  run <file.rml>     estimate coverage for a model file")
        print("  suite [dir]        run every registered job (see --help)")
        return 0
    target = BUILTIN_TARGETS.get(args.target)
    if target is None:
        print(f"unknown target {args.target!r}; try --list", file=sys.stderr)
        return 2
    if args.stage is not None and args.stage not in target.stages:
        valid = (
            ", ".join(target.stages)
            if target.stages
            else "none (target takes no --stage)"
        )
        print(
            f"invalid stage {args.stage!r} for target {args.target!r}; "
            f"valid stages: {valid}",
            file=sys.stderr,
        )
        return 2
    config = EngineConfig.from_args(args)
    try:
        analysis = Analysis.builtin(
            args.target, stage=args.stage, buggy=args.buggy, config=config
        )
        return _report_analysis(analysis, args.traces)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _main_run(argv: List[str]) -> int:
    args = _build_run_parser().parse_args(argv)
    config = EngineConfig.from_args(args)
    try:
        analysis = Analysis.from_rml(Path(args.file), config=config)
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    except (ParseError, ModelError) as exc:
        # Parse errors carry file:line:column; model errors (no OBSERVED /
        # SPEC declarations) carry the file name.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        return _report_analysis(analysis, args.traces)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _main_suite(argv: List[str]) -> int:
    args = _build_suite_parser().parse_args(argv)
    # Validate the engine flags up front: one usage error beats every
    # worker failing with the same message after fan-out.
    config = EngineConfig.from_args(args)
    directory = args.directory
    if directory is None and Path("examples").is_dir():
        directory = "examples"
    if directory is not None and not Path(directory).is_dir():
        print(f"error: no such directory: {directory}", file=sys.stderr)
        return 2
    jobs = default_jobs(
        rml_dir=directory, include_builtins=not args.no_builtins,
        config=config,
    )
    if not jobs:
        print("error: no jobs registered", file=sys.stderr)
        return 2
    started = time.perf_counter()
    results = run_jobs(jobs, max_workers=max(1, args.jobs))
    elapsed = time.perf_counter() - started
    print(format_results(results, seconds=elapsed))
    if args.json:
        write_report(results, args.json, seconds=elapsed)
        print(f"wrote JSON report to {args.json}")
    return 0 if all(r.status == "ok" for r in results) else 1


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    try:
        if argv and argv[0] == "run":
            return _main_run(argv[1:])
        if argv and argv[0] == "suite":
            return _main_suite(argv[1:])
        return _main_target(argv)
    except ConfigError as exc:
        # The one place invalid engine configuration becomes an exit code.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
