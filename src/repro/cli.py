"""Command-line interface: coverage estimation for circuits and suites.

Target mode (the original interface, now registry-backed)::

    repro-coverage --list
    repro-coverage queue-wrap --stage initial
    repro-coverage buffer-lo --buggy --traces 2
    repro-coverage pipeline --stage augmented

Model files (the ``.rml`` language of :mod:`repro.lang`)::

    repro-coverage run examples/counter.rml
    repro-coverage run examples/arbiter.rml --traces 2

Suites (every registered job — builtin targets at every stage plus
``.rml`` files discovered on disk — optionally in parallel)::

    repro-coverage suite --jobs 4
    repro-coverage suite examples --jobs 4 --json coverage.json

Differential fuzzing (random models cross-checked against every engine
configuration and the explicit-state oracle; see ``docs/testing.md``)::

    repro-coverage fuzz --budget 200 --seed 0
    repro-coverage fuzz --budget 300 --seed 7 --jobs 4 --json fuzz.json

Static analysis (engine-free lint over ``.rml`` models and properties;
see ``docs/linting.md``)::

    repro-coverage lint examples/
    repro-coverage lint model.rml --json --fail-on error

Benchmarks (the committed perf trajectory; see ``docs/observability.md``)::

    repro-coverage bench --list
    repro-coverage bench --out benchmarks/baselines
    repro-coverage bench --compare benchmarks/baselines

Serving (a persistent analysis server with a content-addressed result
cache; ``run``/``suite`` become thin clients via ``--server``; see
``docs/serving.md``)::

    repro-coverage serve --port 8737 --workers 4
    repro-coverage run examples/counter.rml --server http://localhost:8737
    repro-coverage suite examples --server http://localhost:8737

Telemetry (purely observational — results never change)::

    repro-coverage counter --profile
    repro-coverage run examples/counter.rml --trace out.jsonl

The coverage subcommands are thin argument adapters over one shared code
path: they construct an :class:`~repro.analysis.Analysis` (the library's
front door) from an :class:`~repro.engine.EngineConfig` parsed by one
shared parent parser, and render its results.  ``python -m repro`` is an
alias for this entry point.

Exit codes: 0 success, 1 verification/coverage failure (or a fuzz
disagreement), 2 usage error (unknown target, invalid stage, parse
error, invalid engine config, unknown fuzz axis).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ._version import __version__
from .analysis import Analysis
from .engine import EngineConfig
from .errors import ConfigError, ModelError, ParseError, ReproError
from .suite import (
    BUILTIN_TARGETS,
    DEFAULT_MAX_SHARD_RETRIES,
    build_builtin,
    default_jobs,
    format_results,
    run_jobs_sharded,
    write_report,
)

__all__ = ["main", "TARGETS"]


def _legacy_builder(name: str) -> Callable:
    def build(args):
        return build_builtin(
            name, stage=args.stage, buggy=args.buggy,
            config=EngineConfig.from_args(args),
        )

    return build


#: target name -> (builder, valid stages, description) — kept in the shape
#: the original CLI exposed, now derived from the suite registry.
TARGETS: Dict[str, Tuple[Callable, List[str], str]] = {
    target.name: (
        _legacy_builder(target.name),
        list(target.stages),
        target.description,
    )
    for target in BUILTIN_TARGETS.values()
}


# ----------------------------------------------------------------------
# Parsers — one shared parent carries the engine flags for every
# subcommand; each subcommand adds only its own arguments.
# ----------------------------------------------------------------------


def _engine_parent() -> argparse.ArgumentParser:
    """The shared parent parser: every engine knob, defined once, from the
    config object itself."""
    parent = argparse.ArgumentParser(add_help=False)
    EngineConfig.add_cli_arguments(parent)
    return parent


def _add_traces_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--traces", type=int, default=0, metavar="N",
        help="print traces to up to N uncovered states",
    )


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    """The telemetry emission flags shared by target and run mode.

    Either flag implies telemetry level "spans" (the recording is free to
    turn on — it never changes results), so users don't have to pair them
    with ``--telemetry spans`` by hand.
    """
    parser.add_argument(
        "--profile", action="store_true",
        help=(
            "print a per-phase cost table (the paper's 'nodes - time' "
            "style) after the coverage report; implies --telemetry spans"
        ),
    )
    parser.add_argument(
        "--trace-out", "--trace", dest="trace_out", metavar="FILE",
        help=(
            "write the run's phase spans and frontier samples to FILE as "
            "Chrome trace events (open in https://ui.perfetto.dev); "
            "implies --telemetry spans"
        ),
    )


def _telemetry_config(config: EngineConfig, args) -> EngineConfig:
    """Upgrade the config to level "spans" when an emission flag asks."""
    wants_spans = getattr(args, "profile", False) or getattr(
        args, "trace_out", None
    )
    if wants_spans and config.telemetry == "off":
        return config.with_(telemetry="spans")
    return config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coverage",
        description=(
            "Coverage estimation for symbolic model checking "
            "(DAC'99 reproduction)"
        ),
        parents=[_engine_parent()],
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}",
    )
    parser.add_argument("target", nargs="?", help="circuit/signal to analyse")
    parser.add_argument("--list", action="store_true", help="list targets")
    parser.add_argument("--stage", help="property-suite stage (target-specific)")
    parser.add_argument(
        "--buggy", action="store_true",
        help="use the buggy priority-buffer variant (Circuit 1 narrative)",
    )
    _add_traces_flag(parser)
    _add_telemetry_flags(parser)
    return parser


def _build_run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coverage run",
        description="estimate coverage for one .rml model file",
        parents=[_engine_parent()],
    )
    parser.add_argument("file", help="path to a .rml model file")
    _add_traces_flag(parser)
    _add_telemetry_flags(parser)
    _add_server_flag(parser)
    return parser


def _add_server_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--server", metavar="URL",
        help=(
            "send the analysis to a running 'repro-coverage serve' "
            "instance (e.g. http://localhost:8737) instead of computing "
            "locally; identical requests are answered from its "
            "content-addressed cache"
        ),
    )


def _build_fuzz_parser() -> argparse.ArgumentParser:
    from .gen.oracle import DEFAULT_AXES

    parser = argparse.ArgumentParser(
        prog="repro-coverage fuzz",
        description=(
            "differential fuzzing: run random generated models through "
            "every engine configuration (mono/partitioned, default/"
            "aggressive GC), the explicit-state oracle, and the language "
            "round trip, asserting byte-identical results; disagreements "
            "are shrunk to small .rml reproducers"
        ),
    )
    parser.add_argument(
        "--budget", type=int, default=100, metavar="N",
        help="number of generated cases to check (default 100)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="base seed; case i is generated from key 'S:i' (default 0)",
    )
    parser.add_argument(
        "--offset", type=int, default=0, metavar="I",
        help=(
            "first case index (default 0); '--budget 1 --offset I' "
            "re-runs exactly case I of a previous campaign"
        ),
    )
    parser.add_argument(
        "--axes", default=",".join(DEFAULT_AXES), metavar="A,B,...",
        help=(
            "comma-separated oracle axes to check "
            f"(default: {','.join(DEFAULT_AXES)})"
        ),
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1: run serially in-process)",
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="write the repro-fuzz/v1 JSON report to FILE",
    )
    parser.add_argument(
        "--corpus", metavar="DIR",
        help=(
            "directory for shrunken .rml reproducers (default: "
            "tests/corpus when it exists, else ./fuzz-corpus; only "
            "written on disagreement)"
        ),
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="record disagreements without minimising them",
    )
    parser.add_argument(
        "--max-latches", type=int, default=None, metavar="N",
        help="maximum boolean latches per generated model",
    )
    parser.add_argument(
        "--max-inputs", type=int, default=None, metavar="N",
        help="maximum free inputs per generated model",
    )
    parser.add_argument(
        "--max-word-width", type=int, default=None, metavar="BITS",
        help="maximum word-register width per generated model",
    )
    return parser


def _build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coverage lint",
        description=(
            "static analysis of .rml models and their CTL properties: "
            "name/width/case errors the elaborator would reject, plus "
            "cone-of-influence coverage smells (observed signals no "
            "property can see, latches outside every property's cone, "
            "constant latches, vacuous antecedents) found before any "
            "BDD is built; see docs/linting.md for the code catalogue"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help=".rml files, or directories searched recursively for *.rml",
    )
    parser.add_argument(
        "--target", metavar="NAME",
        help=(
            "lint a discovered suite job's .rml source by name "
            "(e.g. 'rml:counter') instead of listing paths"
        ),
    )
    parser.add_argument(
        "--json", nargs="?", const="-", metavar="FILE",
        help=(
            "emit the repro-lint/v1 JSON report (to FILE, or stdout "
            "when the flag is bare)"
        ),
    )
    parser.add_argument(
        "--fail-on", choices=["error", "warning"], default="warning",
        help=(
            "lowest severity that makes the exit code 1 "
            "(default: warning; info findings never fail the run)"
        ),
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="append each code's registered name to text findings",
    )
    return parser


def _build_bench_parser() -> argparse.ArgumentParser:
    from .obs.bench import DEFAULT_BACKEND, DEFAULT_TOLERANCE

    parser = argparse.ArgumentParser(
        prog="repro-coverage bench",
        description=(
            "run the registered benchmark workloads and record/compare "
            "BENCH_<name>.json baselines; engine counters are the gated "
            "regression signal, wall-clock is informational only"
        ),
    )
    parser.add_argument(
        "workloads", nargs="*", metavar="WORKLOAD",
        help="workload names to run (default: all; see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered workloads"
    )
    parser.add_argument(
        "--backend", default=DEFAULT_BACKEND, metavar="NAMES",
        help=(
            "comma-separated BDD backends to run each workload on "
            f"(default: {DEFAULT_BACKEND}); non-default backends use "
            "BENCH_<name>@<backend>.json baselines"
        ),
    )
    parser.add_argument(
        "--out", metavar="DIR",
        help="write/refresh BENCH_<name>.json baselines under DIR",
    )
    parser.add_argument(
        "--compare", metavar="DIR",
        help=(
            "compare fresh runs against the baselines under DIR; exit "
            "non-zero when a gated counter regresses beyond tolerance or "
            "the analysis outcome drifts"
        ),
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE, metavar="T",
        help=(
            "relative headroom a gated counter may grow before failing "
            f"(default {DEFAULT_TOLERANCE})"
        ),
    )
    return parser


def _build_suite_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coverage suite",
        description=(
            "run every registered coverage job: builtin targets at every "
            "stage, plus .rml files discovered on disk"
        ),
        parents=[_engine_parent()],
    )
    parser.add_argument(
        "directory", nargs="?",
        help=".rml directory (default: ./examples when present)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1: run serially in-process)",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help=(
            "work shards to split the jobs into (default: several per "
            "worker); idle workers steal pending shards, and a crashed "
            "worker costs only its shard's jobs"
        ),
    )
    parser.add_argument(
        "--max-shard-retries", type=int,
        default=DEFAULT_MAX_SHARD_RETRIES, metavar="N",
        help=(
            "isolated re-runs a shard gets after a worker-pool crash "
            f"before its jobs are marked status=error (default "
            f"{DEFAULT_MAX_SHARD_RETRIES}; 0 disables retries)"
        ),
    )
    parser.add_argument(
        "--json", metavar="FILE", help="write the JSON report to FILE"
    )
    parser.add_argument(
        "--no-builtins", action="store_true",
        help="run only discovered .rml jobs",
    )
    _add_server_flag(parser)
    return parser


def _build_serve_parser() -> argparse.ArgumentParser:
    from .serve.cache import DEFAULT_MAX_ENTRIES, default_cache_dir
    from .serve.server import DEFAULT_PORT
    from .serve.workers import DEFAULT_RECYCLE_AFTER

    parser = argparse.ArgumentParser(
        prog="repro-coverage serve",
        description=(
            "run the persistent analysis server: POST /v1/analyze "
            "computes coverage for .rml text or builtin targets, with a "
            "content-addressed result cache (identical model + config => "
            "one computation), in-flight request deduplication, and a "
            "warm worker pool; see docs/serving.md"
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", metavar="HOST",
        help="interface to bind (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, metavar="PORT",
        help=f"TCP port (default: {DEFAULT_PORT}; 0 picks a free port)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help=(
            "analysis worker processes (default: 2; 0 runs analyses "
            "inline in the server process — single-threaded, but reuses "
            "parsed models)"
        ),
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help=(
            f"disk tier of the result cache (default: "
            f"{default_cache_dir()}); pass 'none' to keep results in "
            f"memory only"
        ),
    )
    parser.add_argument(
        "--max-cache-entries", type=int, default=DEFAULT_MAX_ENTRIES,
        metavar="N",
        help=(
            f"bound on the in-memory cache tier "
            f"(default: {DEFAULT_MAX_ENTRIES})"
        ),
    )
    parser.add_argument(
        "--recycle-after", type=int, default=DEFAULT_RECYCLE_AFTER,
        metavar="N",
        help=(
            f"jobs per worker before the pool recycles itself "
            f"(default: {DEFAULT_RECYCLE_AFTER})"
        ),
    )
    # Test-only: honour crash-injection payloads (CI's serve-smoke job
    # and the failure-path tests drive the respawn logic through this).
    parser.add_argument(
        "--test-hooks", action="store_true", help=argparse.SUPPRESS
    )
    return parser


# ----------------------------------------------------------------------
# Shared reporting flow — every subcommand renders an Analysis this way.
# ----------------------------------------------------------------------


def _report_analysis(
    analysis: Analysis,
    traces: int,
    profile: bool = False,
    trace_out: Optional[str] = None,
) -> int:
    """Verify, estimate, and print — the one rendering of the pipeline."""
    failing = analysis.failing()
    if failing:
        print(f"{len(failing)} propert(ies) FAIL on {analysis.fsm.name!r}:")
        for result in failing:
            print(f"  {result.formula}")
            if result.counterexample:
                for k, state in enumerate(result.counterexample):
                    print(f"    cycle {k}: {analysis.fsm.format_state(state)}")
        print("coverage is only defined for verified properties; aborting.")
        _emit_telemetry(analysis, profile, trace_out)
        return 1
    print(analysis.coverage().summary())
    if traces > 0:
        print(analysis.uncovered_traces(traces))
    _emit_telemetry(analysis, profile, trace_out)
    return 0


def _emit_telemetry(
    analysis: Analysis, profile: bool, trace_out: Optional[str]
) -> None:
    """Render --profile / --trace output for whatever phases ran (the
    telemetry is emitted even when verification failed — a failing run's
    cost profile is exactly what one wants to look at)."""
    if profile:
        from .obs import format_profile

        print()
        print(format_profile(analysis.telemetry))
    if trace_out:
        from .obs import write_chrome_trace

        count = write_chrome_trace(analysis.telemetry, trace_out)
        print(f"wrote {count} trace event(s) to {trace_out}")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def _main_target(argv: List[str]) -> int:
    args = build_parser().parse_args(argv)
    if args.list or not args.target:
        print("available targets:")
        for name, (_, stages, description) in TARGETS.items():
            stage_note = f" (stages: {', '.join(stages)})" if stages else ""
            print(f"  {name:12s} {description}{stage_note}")
        print("subcommands:")
        print("  run <file.rml>     estimate coverage for a model file")
        print("  suite [dir]        run every registered job (see --help)")
        print("  fuzz               differential fuzzing (see fuzz --help)")
        print("  lint               static .rml/property analysis (see lint --help)")
        print("  bench              perf baselines + regression gate (see bench --help)")
        print("  serve              persistent analysis server (see serve --help)")
        return 0
    target = BUILTIN_TARGETS.get(args.target)
    if target is None:
        print(f"unknown target {args.target!r}; try --list", file=sys.stderr)
        return 2
    if args.stage is not None and args.stage not in target.stages:
        valid = (
            ", ".join(target.stages)
            if target.stages
            else "none (target takes no --stage)"
        )
        print(
            f"invalid stage {args.stage!r} for target {args.target!r}; "
            f"valid stages: {valid}",
            file=sys.stderr,
        )
        return 2
    config = _telemetry_config(EngineConfig.from_args(args), args)
    try:
        analysis = Analysis.builtin(
            args.target, stage=args.stage, buggy=args.buggy, config=config
        )
        return _report_analysis(
            analysis, args.traces,
            profile=args.profile, trace_out=args.trace_out,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run_via_server(args, config: EngineConfig) -> int:
    """``run --server``: ship the model text to a serve instance and
    render the revived result.  Trace/profile output needs the local
    BDD engine, so those flags are a usage error here."""
    from .analysis import AnalysisResult
    from .errors import ServeError
    from .serve.client import ServeClient

    if args.traces or args.profile or args.trace_out:
        print(
            "error: --server cannot render --traces/--profile/--trace-out "
            "(those need the in-process engine); drop them or run locally",
            file=sys.stderr,
        )
        return 2
    try:
        text = Path(args.file).read_text()
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    try:
        envelope = ServeClient(args.server).analyze_rml(
            text, config=config, path=str(args.file)
        )
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = AnalysisResult.from_json(envelope["result"])
    cached = "  [cached]" if envelope.get("cached") else ""
    print(result.format_line() + cached)
    if result.status == "ok":
        return 0
    return 1 if result.status == "fail" else 2


def _main_run(argv: List[str]) -> int:
    args = _build_run_parser().parse_args(argv)
    config = _telemetry_config(EngineConfig.from_args(args), args)
    if args.server:
        return _run_via_server(args, config)
    try:
        analysis = Analysis.from_rml(Path(args.file), config=config)
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    except (ParseError, ModelError) as exc:
        # Parse errors carry file:line:column; model errors (no OBSERVED /
        # SPEC declarations) carry the file name.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        return _report_analysis(
            analysis, args.traces,
            profile=args.profile, trace_out=args.trace_out,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _main_suite(argv: List[str]) -> int:
    args = _build_suite_parser().parse_args(argv)
    # Validate the engine flags up front: one usage error beats every
    # worker failing with the same message after fan-out.
    config = EngineConfig.from_args(args)
    if args.shards is not None and args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.max_shard_retries < 0:
        print("error: --max-shard-retries must be >= 0", file=sys.stderr)
        return 2
    directory = args.directory
    if directory is None and Path("examples").is_dir():
        directory = "examples"
    if directory is not None and not Path(directory).is_dir():
        print(f"error: no such directory: {directory}", file=sys.stderr)
        return 2
    jobs = default_jobs(
        rml_dir=directory, include_builtins=not args.no_builtins,
        config=config,
    )
    if not jobs:
        print("error: no jobs registered", file=sys.stderr)
        return 2
    started = time.perf_counter()
    if args.server:
        from .errors import ServeError
        from .serve.client import ServeClient
        from .suite import run_jobs_via_server

        client = ServeClient(args.server)
        try:
            client.health()  # fail fast: one clear error beats N job errors
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        results = run_jobs_via_server(
            jobs, client, max_workers=max(1, args.jobs)
        )
        shard_stats = None
    else:
        results, shard_stats = run_jobs_sharded(
            jobs,
            max_workers=max(1, args.jobs),
            shards=args.shards,
            max_shard_retries=args.max_shard_retries,
        )
    elapsed = time.perf_counter() - started
    print(format_results(results, seconds=elapsed))
    if shard_stats is not None and shard_stats.shards:
        print(shard_stats.summary())
    if args.json:
        write_report(results, args.json, seconds=elapsed)
        print(f"wrote JSON report to {args.json}")
    return 0 if all(r.status == "ok" for r in results) else 1


def _main_lint(argv: List[str]) -> int:
    args = _build_lint_parser().parse_args(argv)
    from .lint import (
        LintReport,
        Severity,
        lint_path,
        lint_source,
        render_json,
        render_text,
    )

    if args.target and args.paths:
        print(
            "error: pass either paths or --target, not both",
            file=sys.stderr,
        )
        return 2

    report = LintReport(files=[])
    if args.target:
        from .suite import default_jobs

        rml_dir = "examples" if Path("examples").is_dir() else None
        jobs = {job.name: job for job in default_jobs(rml_dir=rml_dir)}
        job = jobs.get(args.target) or jobs.get(f"rml:{args.target}")
        if job is None:
            print(
                f"error: unknown target {args.target!r}; known: "
                f"{', '.join(sorted(jobs))}",
                file=sys.stderr,
            )
            return 2
        if job.source is None:
            print(
                f"error: target {args.target!r} is a builtin circuit "
                f"built in Python — it has no .rml source to lint",
                file=sys.stderr,
            )
            return 2
        report = lint_source(job.source, filename=job.path or job.name)
    else:
        files: List[Path] = []
        for raw in args.paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.rml")))
            elif path.exists():
                files.append(path)
            else:
                print(f"error: no such file: {raw}", file=sys.stderr)
                return 2
        if not files:
            print(
                "error: nothing to lint (pass .rml files, a directory "
                "containing them, or --target NAME)",
                file=sys.stderr,
            )
            return 2
        for path in files:
            report = report.merge(lint_path(path))

    if args.json is not None:
        rendered = render_json(report)
        if args.json == "-":
            sys.stdout.write(rendered)
        else:
            Path(args.json).write_text(rendered)
            print(f"wrote JSON report to {args.json}")
    else:
        sys.stdout.write(render_text(report, verbose=args.verbose))
    threshold = Severity.from_name(args.fail_on)
    return 1 if report.at_or_above(threshold) else 0


def _main_bench(argv: List[str]) -> int:
    from .bdd.backends import BACKEND_NAMES
    from .obs.bench import (
        BENCH_WORKLOADS,
        baseline_path,
        compare_result,
        load_baseline,
        run_workload,
        write_baseline,
    )

    args = _build_bench_parser().parse_args(argv)
    if args.list:
        print("registered bench workloads:")
        for workload in BENCH_WORKLOADS.values():
            print(f"  {workload.name:22s} {workload.description}")
        return 0
    if args.tolerance < 0:
        print("error: --tolerance must be >= 0", file=sys.stderr)
        return 2
    names = args.workloads or list(BENCH_WORKLOADS)
    unknown = sorted(set(names) - set(BENCH_WORKLOADS))
    if unknown:
        print(
            f"error: unknown bench workload(s): {', '.join(unknown)} "
            f"(known: {', '.join(BENCH_WORKLOADS)})",
            file=sys.stderr,
        )
        return 2
    backends = [b for b in args.backend.split(",") if b]
    unknown = sorted(set(backends) - set(BACKEND_NAMES))
    if unknown or not backends:
        print(
            f"error: unknown BDD backend(s): {', '.join(unknown) or '<none>'} "
            f"(known: {', '.join(BACKEND_NAMES)})",
            file=sys.stderr,
        )
        return 2
    regressions: List[str] = []
    runs = 0
    for name in names:
        for backend in backends:
            result = run_workload(BENCH_WORKLOADS[name], backend)
            runs += 1
            counters = result.counters
            print(
                f"{result.label:28s} nodes={counters['nodes_created']:>9,} "
                f"peak={counters['peak_live_nodes']:>8,} "
                f"op_misses={counters['op_misses']:>9,} "
                f"gc={counters['gc_runs']:>3} "
                f"wall={result.wall_seconds:.2f}s"
            )
            if args.out:
                write_baseline(result, args.out)
            if args.compare:
                path = baseline_path(args.compare, name, backend)
                if not path.is_file():
                    missing = (
                        f"{result.label}: no committed baseline at {path} "
                        f"(run: repro bench {name} --backend {backend} "
                        f"--out {args.compare})"
                    )
                    print(f"  REGRESSION: {missing}", file=sys.stderr)
                    regressions.append(missing)
                    continue
                found, notes = compare_result(
                    result, load_baseline(path), tolerance=args.tolerance
                )
                for note in notes:
                    print(f"  note: {note}")
                for regression in found:
                    print(f"  REGRESSION: {regression}", file=sys.stderr)
                regressions.extend(found)
    if args.out:
        print(f"wrote {runs} baseline(s) under {args.out}")
    if args.compare:
        if regressions:
            print(
                f"bench compare: {len(regressions)} regression(s) against "
                f"{args.compare}",
                file=sys.stderr,
            )
            return 1
        print(
            f"bench compare: OK ({runs} workload run(s) within "
            f"{args.tolerance:.0%} counter tolerance of {args.compare})"
        )
    return 0


def _main_serve(argv: List[str]) -> int:
    args = _build_serve_parser().parse_args(argv)
    from .serve.server import ServeOptions, run_server

    if args.max_cache_entries < 1:
        print("error: --max-cache-entries must be >= 1", file=sys.stderr)
        return 2
    memory_only = args.cache_dir == "none"
    options = ServeOptions(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=None if memory_only else args.cache_dir,
        memory_cache_only=memory_only,
        max_cache_entries=args.max_cache_entries,
        recycle_after=args.recycle_after,
        test_hooks=args.test_hooks,
    )
    try:
        return run_server(options)
    except OSError as exc:
        print(
            f"error: cannot serve on {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 2


def _main_fuzz(argv: List[str]) -> int:
    from .gen import GenParams, run_fuzz, validate_axes, write_fuzz_report

    args = _build_fuzz_parser().parse_args(argv)
    if args.budget < 1:
        print("error: --budget must be >= 1", file=sys.stderr)
        return 2
    axes = validate_axes(
        tuple(a for a in args.axes.split(",") if a)
    )
    overrides = {
        key: value
        for key, value in (
            ("max_bool_latches", args.max_latches),
            ("max_inputs", args.max_inputs),
            ("max_word_width", args.max_word_width),
        )
        if value is not None
    }
    if args.max_word_width is not None:
        # Keep the width range well-formed without a --min-word-width
        # flag: a 1-bit cap means 1-bit words, not a ConfigError about an
        # internal field the user never set.
        overrides["min_word_width"] = min(
            GenParams().min_word_width, args.max_word_width
        )
    params = GenParams(**overrides)  # validates (ConfigError -> exit 2)
    corpus = args.corpus
    if corpus is None:
        corpus = (
            "tests/corpus"
            if Path("tests/corpus").is_dir()
            else "fuzz-corpus"
        )
    result = run_fuzz(
        budget=args.budget,
        seed=args.seed,
        offset=args.offset,
        axes=axes,
        params=params,
        jobs=max(1, args.jobs),
        shrink=not args.no_shrink,
        corpus_dir=corpus,
    )
    print(result.format_summary())
    if args.json:
        write_fuzz_report(result, args.json)
        print(f"wrote JSON report to {args.json}")
    return 0 if result.ok else 1


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    try:
        if argv and argv[0] == "run":
            return _main_run(argv[1:])
        if argv and argv[0] == "suite":
            return _main_suite(argv[1:])
        if argv and argv[0] == "fuzz":
            return _main_fuzz(argv[1:])
        if argv and argv[0] == "lint":
            return _main_lint(argv[1:])
        if argv and argv[0] == "bench":
            return _main_bench(argv[1:])
        if argv and argv[0] == "serve":
            return _main_serve(argv[1:])
        return _main_target(argv)
    except ConfigError as exc:
        # The one place invalid configuration becomes an exit code.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
