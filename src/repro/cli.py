"""Command-line interface: coverage estimation for circuits and suites.

Target mode (the original interface, now registry-backed)::

    repro-coverage --list
    repro-coverage queue-wrap --stage initial
    repro-coverage buffer-lo --buggy --traces 2
    repro-coverage pipeline --stage augmented

Model files (the ``.rml`` language of :mod:`repro.lang`)::

    repro-coverage run examples/counter.rml
    repro-coverage run examples/arbiter.rml --traces 2

Suites (every registered job — builtin targets at every stage plus
``.rml`` files discovered on disk — optionally in parallel)::

    repro-coverage suite --jobs 4
    repro-coverage suite examples --jobs 4 --json coverage.json

Differential fuzzing (random models cross-checked against every engine
configuration and the explicit-state oracle; see ``docs/testing.md``)::

    repro-coverage fuzz --budget 200 --seed 0
    repro-coverage fuzz --budget 300 --seed 7 --jobs 4 --json fuzz.json

The coverage subcommands are thin argument adapters over one shared code
path: they construct an :class:`~repro.analysis.Analysis` (the library's
front door) from an :class:`~repro.engine.EngineConfig` parsed by one
shared parent parser, and render its results.  ``python -m repro`` is an
alias for this entry point.

Exit codes: 0 success, 1 verification/coverage failure (or a fuzz
disagreement), 2 usage error (unknown target, invalid stage, parse
error, invalid engine config, unknown fuzz axis).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ._version import __version__
from .analysis import Analysis
from .engine import EngineConfig
from .errors import ConfigError, ModelError, ParseError, ReproError
from .suite import (
    BUILTIN_TARGETS,
    build_builtin,
    default_jobs,
    format_results,
    run_jobs,
    write_report,
)

__all__ = ["main", "TARGETS"]


def _legacy_builder(name: str) -> Callable:
    def build(args):
        return build_builtin(
            name, stage=args.stage, buggy=args.buggy,
            config=EngineConfig.from_args(args),
        )

    return build


#: target name -> (builder, valid stages, description) — kept in the shape
#: the original CLI exposed, now derived from the suite registry.
TARGETS: Dict[str, Tuple[Callable, List[str], str]] = {
    target.name: (
        _legacy_builder(target.name),
        list(target.stages),
        target.description,
    )
    for target in BUILTIN_TARGETS.values()
}


# ----------------------------------------------------------------------
# Parsers — one shared parent carries the engine flags for every
# subcommand; each subcommand adds only its own arguments.
# ----------------------------------------------------------------------


def _engine_parent() -> argparse.ArgumentParser:
    """The shared parent parser: every engine knob, defined once, from the
    config object itself."""
    parent = argparse.ArgumentParser(add_help=False)
    EngineConfig.add_cli_arguments(parent)
    return parent


def _add_traces_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--traces", type=int, default=0, metavar="N",
        help="print traces to up to N uncovered states",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coverage",
        description=(
            "Coverage estimation for symbolic model checking "
            "(DAC'99 reproduction)"
        ),
        parents=[_engine_parent()],
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}",
    )
    parser.add_argument("target", nargs="?", help="circuit/signal to analyse")
    parser.add_argument("--list", action="store_true", help="list targets")
    parser.add_argument("--stage", help="property-suite stage (target-specific)")
    parser.add_argument(
        "--buggy", action="store_true",
        help="use the buggy priority-buffer variant (Circuit 1 narrative)",
    )
    _add_traces_flag(parser)
    return parser


def _build_run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coverage run",
        description="estimate coverage for one .rml model file",
        parents=[_engine_parent()],
    )
    parser.add_argument("file", help="path to a .rml model file")
    _add_traces_flag(parser)
    return parser


def _build_fuzz_parser() -> argparse.ArgumentParser:
    from .gen.oracle import DEFAULT_AXES

    parser = argparse.ArgumentParser(
        prog="repro-coverage fuzz",
        description=(
            "differential fuzzing: run random generated models through "
            "every engine configuration (mono/partitioned, default/"
            "aggressive GC), the explicit-state oracle, and the language "
            "round trip, asserting byte-identical results; disagreements "
            "are shrunk to small .rml reproducers"
        ),
    )
    parser.add_argument(
        "--budget", type=int, default=100, metavar="N",
        help="number of generated cases to check (default 100)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="base seed; case i is generated from key 'S:i' (default 0)",
    )
    parser.add_argument(
        "--offset", type=int, default=0, metavar="I",
        help=(
            "first case index (default 0); '--budget 1 --offset I' "
            "re-runs exactly case I of a previous campaign"
        ),
    )
    parser.add_argument(
        "--axes", default=",".join(DEFAULT_AXES), metavar="A,B,...",
        help=(
            "comma-separated oracle axes to check "
            f"(default: {','.join(DEFAULT_AXES)})"
        ),
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1: run serially in-process)",
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="write the repro-fuzz/v1 JSON report to FILE",
    )
    parser.add_argument(
        "--corpus", metavar="DIR",
        help=(
            "directory for shrunken .rml reproducers (default: "
            "tests/corpus when it exists, else ./fuzz-corpus; only "
            "written on disagreement)"
        ),
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="record disagreements without minimising them",
    )
    parser.add_argument(
        "--max-latches", type=int, default=None, metavar="N",
        help="maximum boolean latches per generated model",
    )
    parser.add_argument(
        "--max-inputs", type=int, default=None, metavar="N",
        help="maximum free inputs per generated model",
    )
    parser.add_argument(
        "--max-word-width", type=int, default=None, metavar="BITS",
        help="maximum word-register width per generated model",
    )
    return parser


def _build_suite_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coverage suite",
        description=(
            "run every registered coverage job: builtin targets at every "
            "stage, plus .rml files discovered on disk"
        ),
        parents=[_engine_parent()],
    )
    parser.add_argument(
        "directory", nargs="?",
        help=".rml directory (default: ./examples when present)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1: run serially in-process)",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="write the JSON report to FILE"
    )
    parser.add_argument(
        "--no-builtins", action="store_true",
        help="run only discovered .rml jobs",
    )
    return parser


# ----------------------------------------------------------------------
# Shared reporting flow — every subcommand renders an Analysis this way.
# ----------------------------------------------------------------------


def _report_analysis(analysis: Analysis, traces: int) -> int:
    """Verify, estimate, and print — the one rendering of the pipeline."""
    failing = analysis.failing()
    if failing:
        print(f"{len(failing)} propert(ies) FAIL on {analysis.fsm.name!r}:")
        for result in failing:
            print(f"  {result.formula}")
            if result.counterexample:
                for k, state in enumerate(result.counterexample):
                    print(f"    cycle {k}: {analysis.fsm.format_state(state)}")
        print("coverage is only defined for verified properties; aborting.")
        return 1
    print(analysis.coverage().summary())
    if traces > 0:
        print(analysis.uncovered_traces(traces))
    return 0


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def _main_target(argv: List[str]) -> int:
    args = build_parser().parse_args(argv)
    if args.list or not args.target:
        print("available targets:")
        for name, (_, stages, description) in TARGETS.items():
            stage_note = f" (stages: {', '.join(stages)})" if stages else ""
            print(f"  {name:12s} {description}{stage_note}")
        print("subcommands:")
        print("  run <file.rml>     estimate coverage for a model file")
        print("  suite [dir]        run every registered job (see --help)")
        print("  fuzz               differential fuzzing (see fuzz --help)")
        return 0
    target = BUILTIN_TARGETS.get(args.target)
    if target is None:
        print(f"unknown target {args.target!r}; try --list", file=sys.stderr)
        return 2
    if args.stage is not None and args.stage not in target.stages:
        valid = (
            ", ".join(target.stages)
            if target.stages
            else "none (target takes no --stage)"
        )
        print(
            f"invalid stage {args.stage!r} for target {args.target!r}; "
            f"valid stages: {valid}",
            file=sys.stderr,
        )
        return 2
    config = EngineConfig.from_args(args)
    try:
        analysis = Analysis.builtin(
            args.target, stage=args.stage, buggy=args.buggy, config=config
        )
        return _report_analysis(analysis, args.traces)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _main_run(argv: List[str]) -> int:
    args = _build_run_parser().parse_args(argv)
    config = EngineConfig.from_args(args)
    try:
        analysis = Analysis.from_rml(Path(args.file), config=config)
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    except (ParseError, ModelError) as exc:
        # Parse errors carry file:line:column; model errors (no OBSERVED /
        # SPEC declarations) carry the file name.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        return _report_analysis(analysis, args.traces)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _main_suite(argv: List[str]) -> int:
    args = _build_suite_parser().parse_args(argv)
    # Validate the engine flags up front: one usage error beats every
    # worker failing with the same message after fan-out.
    config = EngineConfig.from_args(args)
    directory = args.directory
    if directory is None and Path("examples").is_dir():
        directory = "examples"
    if directory is not None and not Path(directory).is_dir():
        print(f"error: no such directory: {directory}", file=sys.stderr)
        return 2
    jobs = default_jobs(
        rml_dir=directory, include_builtins=not args.no_builtins,
        config=config,
    )
    if not jobs:
        print("error: no jobs registered", file=sys.stderr)
        return 2
    started = time.perf_counter()
    results = run_jobs(jobs, max_workers=max(1, args.jobs))
    elapsed = time.perf_counter() - started
    print(format_results(results, seconds=elapsed))
    if args.json:
        write_report(results, args.json, seconds=elapsed)
        print(f"wrote JSON report to {args.json}")
    return 0 if all(r.status == "ok" for r in results) else 1


def _main_fuzz(argv: List[str]) -> int:
    from .gen import GenParams, run_fuzz, validate_axes, write_fuzz_report

    args = _build_fuzz_parser().parse_args(argv)
    if args.budget < 1:
        print("error: --budget must be >= 1", file=sys.stderr)
        return 2
    axes = validate_axes(
        tuple(a for a in args.axes.split(",") if a)
    )
    overrides = {
        key: value
        for key, value in (
            ("max_bool_latches", args.max_latches),
            ("max_inputs", args.max_inputs),
            ("max_word_width", args.max_word_width),
        )
        if value is not None
    }
    if args.max_word_width is not None:
        # Keep the width range well-formed without a --min-word-width
        # flag: a 1-bit cap means 1-bit words, not a ConfigError about an
        # internal field the user never set.
        overrides["min_word_width"] = min(
            GenParams().min_word_width, args.max_word_width
        )
    params = GenParams(**overrides)  # validates (ConfigError -> exit 2)
    corpus = args.corpus
    if corpus is None:
        corpus = (
            "tests/corpus"
            if Path("tests/corpus").is_dir()
            else "fuzz-corpus"
        )
    result = run_fuzz(
        budget=args.budget,
        seed=args.seed,
        offset=args.offset,
        axes=axes,
        params=params,
        jobs=max(1, args.jobs),
        shrink=not args.no_shrink,
        corpus_dir=corpus,
    )
    print(result.format_summary())
    if args.json:
        write_fuzz_report(result, args.json)
        print(f"wrote JSON report to {args.json}")
    return 0 if result.ok else 1


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    try:
        if argv and argv[0] == "run":
            return _main_run(argv[1:])
        if argv and argv[0] == "suite":
            return _main_suite(argv[1:])
        if argv and argv[0] == "fuzz":
            return _main_fuzz(argv[1:])
        return _main_target(argv)
    except ConfigError as exc:
        # The one place invalid configuration becomes an exit code.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
