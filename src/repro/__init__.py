"""repro — Coverage estimation for symbolic model checking.

A from-scratch reproduction of Hoskote, Kam, Ho & Zhao, *"Coverage Estimation
for Symbolic Model Checking"* (DAC 1999): a BDD engine, a symbolic CTL model
checker, and the paper's state-based coverage metric for ACTL properties with
respect to an observed signal, together with the paper's three evaluation
circuits.

Quickstart::

    from repro import Analysis

    analysis = Analysis.builtin("counter")
    assert analysis.holds()
    print(analysis.coverage().summary())
"""

from ._version import __version__  # noqa: F401  (re-export; __all__ is computed lazily)


def _public_names():
    from importlib import import_module

    return list(import_module("repro._api").__all__)


def __getattr__(name):
    """Lazily re-export the public API to keep import time low."""
    if name == "__all__":
        # Computed lazily for the same reason the re-exports are: building
        # the list imports the full API aggregate.
        value = ["__version__"] + _public_names()
        globals()["__all__"] = value
        return value
    if name.startswith("_"):
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    from importlib import import_module

    api = import_module("repro._api")
    try:
        attr = getattr(api, name)
    except AttributeError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    globals()[name] = attr
    return attr


def __dir__():
    return sorted(set(globals()) | set(_public_names()) | {"__all__"})
