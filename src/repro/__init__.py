"""repro — Coverage estimation for symbolic model checking.

A from-scratch reproduction of Hoskote, Kam, Ho & Zhao, *"Coverage Estimation
for Symbolic Model Checking"* (DAC 1999): a BDD engine, a symbolic CTL model
checker, and the paper's state-based coverage metric for ACTL properties with
respect to an observed signal, together with the paper's three evaluation
circuits.

Quickstart::

    from repro import build_counter, counter_properties, CoverageEstimator

    design = build_counter()
    estimator = CoverageEstimator(design.fsm)
    report = estimator.estimate(counter_properties(design), observed="count0")
    print(report.summary())
"""

from ._version import __version__

__all__ = ["__version__"]


def __getattr__(name):
    """Lazily re-export the public API to keep import time low."""
    if name.startswith("_"):
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    from importlib import import_module

    api = import_module("repro._api")
    try:
        attr = getattr(api, name)
    except AttributeError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    globals()[name] = attr
    return attr


def __dir__():
    from importlib import import_module

    api = import_module("repro._api")
    return sorted(set(globals()) | set(api.__all__))
