"""The paper's introductory example: a modulo-5 counter with stall and reset.

Section 1 of the paper motivates the coverage metric with::

    AG (!stall & !reset & count = C & C < 5  ->  AX count = C + 1)

"the model checker ... ascertains the correctness of the condition on count
only in those states that are immediate successors of states satisfying the
antecedent" — i.e. even a verified suite covers only part of the state
space.  This circuit (parametric in the modulus) is the quickstart example
and the smallest end-to-end demonstration of hole finding.

Reset clears the counter, stall holds it, otherwise it counts modulo N.
Reset takes priority over stall.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..bdd import ResourcePolicy
from ..ctl.ast import CtlFormula
from ..ctl.parser import parse_ctl
from ..engine import EngineConfig, _coalesce_trans
from ..expr.arith import increment_mod_bits, mux
from ..expr.ast import FALSE_EXPR, Var
from ..fsm.builder import CircuitBuilder
from ..fsm.fsm import FSM

__all__ = [
    "build_counter",
    "counter_properties",
    "counter_partial_properties",
]


def build_counter(
    modulus: int = 5,
    trans: Optional[str] = None,
    policy: Optional[ResourcePolicy] = None,
    config: Optional[EngineConfig] = None,
) -> FSM:
    """The modulo-``modulus`` counter of the paper's introduction.

    State variables: ``count`` (a ``ceil(log2(modulus))``-bit word) plus the
    free inputs ``stall`` and ``reset``.  Values ``>= modulus`` are
    unreachable (and therefore outside the coverage space).  ``config``
    carries the engine knobs (transition mode, resource thresholds) and
    ``policy`` optionally overrides its resource knobs; ``trans=`` directly
    is deprecated (see :meth:`~repro.fsm.builder.CircuitBuilder.build`).
    """
    config = _coalesce_trans("build_counter", config, trans)
    width = max(1, math.ceil(math.log2(modulus)))
    builder = CircuitBuilder(f"counter_mod{modulus}")
    stall = builder.input("stall")
    reset = builder.input("reset")
    bits = [f"count{i}" for i in range(width)]
    counted = increment_mod_bits(bits, modulus)
    for i, bit in enumerate(bits):
        advance = mux(stall, Var(bit), counted[i])
        # Reset dominates: the bit clears regardless of stall.
        builder.latch(bit, init=False, next_=mux(reset, FALSE_EXPR, advance))
    builder.word("count", bits)
    return builder.build(config=config, policy=policy)


def counter_properties(modulus: int = 5) -> List[CtlFormula]:
    """The complete suite: increment, stall-hold, and reset behaviour.

    Together these cover 100% of the reachable states for observed signal
    ``count``.
    """
    props: List[CtlFormula] = []
    for value in range(modulus):
        succ = (value + 1) % modulus
        props.append(
            parse_ctl(
                f"AG (!stall & !reset & count = {value} -> AX count = {succ})"
            )
        )
        props.append(
            parse_ctl(f"AG (stall & !reset & count = {value} -> AX count = {value})")
        )
    props.append(parse_ctl("AG (reset -> AX count = 0)"))
    return props


def counter_partial_properties(modulus: int = 5) -> List[CtlFormula]:
    """The paper's intro suite: only the increment properties.

    Verifying these alone leaves every state whose ``count`` value is not
    entered by a plain increment unchecked — the quickstart example uses
    this to demonstrate a coverage hole and its closure.
    """
    props: List[CtlFormula] = []
    for value in range(modulus - 1):
        props.append(
            parse_ctl(
                f"AG (!stall & !reset & count = {value} -> AX count = {value + 1})"
            )
        )
    return props
