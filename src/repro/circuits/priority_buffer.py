"""Circuit 1 of the paper: the priority buffer.

"Circuit 1 is a priority buffer which schedules and stores incoming entries
according to their priorities (high or low). ... Given the number of entries
already in the buffer and the number of incoming entries, the properties
specify the correct number of entries in the buffer at the next clock. ...
we uncovered a missing case: when the buffer is empty and low priority
entries are incoming, the entries should be stored. A simple additional
property was written to cover this case. Verification of this property
failed and actually revealed a bug in the design of the buffer!"

This module reproduces every element of that narrative:

* a parametric buffer holding high- and low-priority entry counts, with
  arrival inputs, a dequeue port and a synchronous clear;
* a **planted bug** (``buggy=True``): incoming low-priority entries are
  dropped when the buffer is completely empty — exactly the paper's escaped
  bug, passing the initial property suite;
* staged property suites: the *initial* low-priority suite (passes on the
  buggy design, leaves the empty-buffer states uncovered), the
  *hole-closing* property (fails on the buggy design, revealing the bug)
  and the *augmented* suite (100% on the fixed design).

Semantics (correct design):

* ``clear`` empties the buffer;
* an incoming high-priority entry is accepted while there is room
  (``hi + lo < capacity``); high priority wins the last slot;
* an incoming low-priority entry is accepted while there is room left
  after the high-priority arrival;
* ``deq`` removes one entry, highest priority first.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..bdd import ResourcePolicy
from ..ctl.ast import CtlAnd, CtlFormula
from ..ctl.parser import parse_ctl
from ..engine import EngineConfig, _coalesce_trans
from ..expr.arith import add_words_bits, conditional_delta_bits, mux
from ..expr.ast import FALSE_EXPR, And, Expr, Not
from ..expr.parser import parse_expr
from ..fsm.builder import CircuitBuilder
from ..fsm.fsm import FSM

__all__ = [
    "build_priority_buffer",
    "priority_buffer_hi_properties",
    "priority_buffer_lo_properties",
    "priority_buffer_lo_hole_property",
    "priority_buffer_lo_augmented_properties",
    "DEFAULT_CAPACITY",
]

DEFAULT_CAPACITY = 4


def _width_for(count: int) -> int:
    return max(1, math.ceil(math.log2(count + 1)))


def build_priority_buffer(
    capacity: int = DEFAULT_CAPACITY, buggy: bool = False,
    trans: Optional[str] = None,
    policy: Optional[ResourcePolicy] = None,
    config: Optional[EngineConfig] = None,
) -> FSM:
    """Build the priority buffer.

    Parameters
    ----------
    capacity:
        Maximum total number of stored entries.
    buggy:
        Plant the paper's escaped bug: a low-priority arrival is dropped
        whenever the buffer is completely empty (the designer's acceptance
        logic short-circuits on the empty condition).
    config:
        Engine knobs (transition mode, resource thresholds); ``trans=``
        directly is deprecated (see
        :meth:`~repro.fsm.builder.CircuitBuilder.build`).
    """
    config = _coalesce_trans("build_priority_buffer", config, trans)
    width = _width_for(capacity)
    b = CircuitBuilder(
        f"priority_buffer{capacity}{'_buggy' if buggy else ''}"
    )
    in_hi = b.input("in_hi")
    in_lo = b.input("in_lo")
    clear = b.input("clear")
    deq = b.input("deq")

    hi_bits = [f"hi{i}" for i in range(width)]
    lo_bits = [f"lo{i}" for i in range(width)]

    room = parse_expr(f"total < {capacity}")
    # High priority takes the last slot: low is accepted only if there is
    # room after the (possibly simultaneous) high arrival.
    hi_accept = And((in_hi, room))
    last_slot = parse_expr(f"total = {capacity - 1}")
    lo_room = And((room, Not(And((in_hi, last_slot)))))
    lo_accept_correct = And((in_lo, lo_room))
    empty = parse_expr("hi = 0 & lo = 0")
    if buggy:
        # The planted bug: acceptance is gated on the buffer being
        # non-empty, silently dropping low-priority arrivals into an empty
        # buffer.
        lo_accept: Expr = And((in_lo, lo_room, Not(empty)))
    else:
        lo_accept = lo_accept_correct

    hi_deq = And((deq, parse_expr("hi > 0")))
    lo_deq = And((deq, parse_expr("hi = 0 & lo > 0")))

    hi_next = conditional_delta_bits(hi_bits, hi_accept, hi_deq)
    lo_next = conditional_delta_bits(lo_bits, lo_accept, lo_deq)
    for i, bit in enumerate(hi_bits):
        b.latch(bit, init=False, next_=mux(clear, FALSE_EXPR, hi_next[i]))
    for i, bit in enumerate(lo_bits):
        b.latch(bit, init=False, next_=mux(clear, FALSE_EXPR, lo_next[i]))
    b.word("hi", hi_bits)
    b.word("lo", lo_bits)

    total_bits = add_words_bits(hi_bits, lo_bits)
    total_names = []
    for i, expr in enumerate(total_bits):
        b.define(f"total{i}", expr)
        total_names.append(f"total{i}")
    b.word("total", total_names)
    return b.build(config=config, policy=policy)


def _bundle(parts: List[CtlFormula]) -> CtlFormula:
    """Conjoin per-value cases into one property (``f & g`` is in the
    acceptable subset), matching the paper's per-behaviour property counts."""
    if len(parts) == 1:
        return parts[0]
    return CtlAnd(tuple(parts))


def priority_buffer_hi_properties(
    capacity: int = DEFAULT_CAPACITY,
) -> List[CtlFormula]:
    """The complete high-priority suite (5 properties, 100% coverage).

    One bundled property per behaviour: clear, hold, arrival, dequeue, and
    simultaneous arrival+dequeue.
    """
    props: List[CtlFormula] = []
    props.append(parse_ctl("AG (clear -> AX hi = 0)"))
    props.append(_bundle([
        parse_ctl(
            f"AG (!clear & !in_hi & !deq & hi = {v} -> AX hi = {v})"
        )
        for v in range(capacity + 1)
    ]))
    props.append(_bundle([
        parse_ctl(
            f"AG (!clear & in_hi & !deq & total < {capacity} & hi = {v} "
            f"-> AX hi = {v + 1})"
        )
        for v in range(capacity)
    ] + [
        parse_ctl(
            f"AG (!clear & in_hi & !deq & total = {capacity} & hi = {v} "
            f"-> AX hi = {v})"
        )
        for v in range(capacity + 1)
    ]))
    props.append(_bundle([
        parse_ctl(
            f"AG (!clear & !in_hi & deq & hi = {v} -> AX hi = {v - 1})"
        )
        for v in range(1, capacity + 1)
    ] + [
        parse_ctl("AG (!clear & !in_hi & deq & hi = 0 -> AX hi = 0)"),
    ]))
    props.append(_bundle([
        # Simultaneous arrival + dequeue cancel out while there is room ...
        parse_ctl(
            f"AG (!clear & in_hi & deq & hi = {v} & total < {capacity} "
            f"-> AX hi = {v})"
        )
        for v in range(1, capacity + 1)
    ] + [
        # ... but a full buffer rejects the arrival and only dequeues.
        parse_ctl(
            f"AG (!clear & in_hi & deq & hi = {v} & total = {capacity} "
            f"-> AX hi = {v - 1})"
        )
        for v in range(1, capacity + 1)
    ] + [
        parse_ctl(
            f"AG (!clear & in_hi & deq & hi = 0 & total < {capacity} "
            f"-> AX hi = 1)"
        ),
        parse_ctl(
            f"AG (!clear & in_hi & deq & hi = 0 & total = {capacity} "
            f"-> AX hi = 0)"
        ),
    ]))
    return props


def priority_buffer_lo_properties(
    capacity: int = DEFAULT_CAPACITY,
) -> List[CtlFormula]:
    """The *initial* low-priority suite — the one with the coverage hole.

    Five bundled properties mirroring the high-priority suite, except that
    every antecedent assumes the buffer already holds an entry (``lo >= 1``
    for holds/dequeues, arrival cases starting from ``lo >= 1``), and the
    clear/empty behaviour of ``lo`` is never checked.  The suite **passes on
    the buggy design** — no property constrains what an empty buffer does
    with an incoming low-priority entry — and leaves the ``lo = 0`` region
    of the state space uncovered, which is exactly the hole the estimator
    reports.
    """
    props: List[CtlFormula] = []
    lo_ok = "!(in_hi & total = {last})".format(last=capacity - 1)
    props.append(_bundle([
        parse_ctl(
            f"AG (!clear & !in_lo & !deq & lo = {v} -> AX lo = {v})"
        )
        for v in range(1, capacity + 1)
    ]))
    props.append(_bundle([
        parse_ctl(
            f"AG (!clear & in_lo & !deq & total < {capacity} & {lo_ok} "
            f"& lo = {v} -> AX lo = {v + 1})"
        )
        for v in range(1, capacity)
    ]))
    props.append(_bundle([
        parse_ctl(
            f"AG (!clear & in_lo & !deq & total = {capacity} & lo = {v} "
            f"-> AX lo = {v})"
        )
        for v in range(1, capacity + 1)
    ]))
    props.append(_bundle([
        parse_ctl(
            f"AG (!clear & !in_lo & deq & hi = 0 & lo = {v} -> AX lo = {v - 1})"
        )
        for v in range(1, capacity + 1)
    ]))
    props.append(_bundle([
        parse_ctl(
            f"AG (!clear & !in_lo & deq & hi > 0 & lo = {v} -> AX lo = {v})"
        )
        for v in range(1, capacity + 1)
    ]))
    return props


def priority_buffer_lo_hole_property(capacity: int = DEFAULT_CAPACITY) -> CtlFormula:
    """The paper's hole-closing property: an empty buffer stores an incoming
    low-priority entry.  **Fails on the buggy design**, revealing the bug."""
    return parse_ctl(
        "AG (!clear & hi = 0 & lo = 0 & in_lo & !in_hi & !deq -> AX lo = 1)"
    )


def priority_buffer_lo_augmented_properties(
    capacity: int = DEFAULT_CAPACITY,
) -> List[CtlFormula]:
    """The augmented low-priority suite: 100% coverage on the fixed design.

    Adds the hole-closing property plus the empty-buffer behaviours the
    initial suite ignored (hold at empty, clear, arrival into empty with a
    simultaneous high-priority entry).
    """
    props = priority_buffer_lo_properties(capacity)
    props.append(priority_buffer_lo_hole_property(capacity))
    props.append(_bundle([
        parse_ctl("AG (!clear & !in_lo & lo = 0 -> AX lo = 0)"),
        parse_ctl("AG (clear -> AX lo = 0)"),
        parse_ctl(
            "AG (!clear & hi = 0 & lo = 0 & in_lo & in_hi & !deq -> AX lo = 1)"
        ),
        parse_ctl(
            "AG (!clear & hi > 0 & lo = 0 & in_lo & !in_hi "
            f"& total < {capacity} -> AX lo = 1)"
        ),
        parse_ctl(
            "AG (!clear & hi = 0 & lo = 0 & in_lo & deq -> AX lo = 1)"
        ),
        parse_ctl(
            f"AG (!clear & lo = 0 & in_lo & total = {capacity} -> AX lo = 0)"
        ),
        parse_ctl(
            f"AG (!clear & lo = 0 & in_lo & in_hi & total = {capacity - 1} "
            "& !deq & hi > 0 -> AX lo = 0)"
        ),
    ]))
    return props
